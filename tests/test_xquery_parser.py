"""Tests for the XQuery subset parser and normalization (Sections 2.1, 2.3)."""

import pytest

from repro.xquery import ast, normalize, parse_query
from repro.xquery.parser import XQueryParseError


class TestPaths:
    def test_doc_path(self):
        expr = parse_query('doc("bib.xml")/bib/book')
        assert isinstance(expr, ast.PathExpr)
        assert expr.source == "bib.xml"
        assert expr.path == "/bib/book"

    def test_document_alias(self):
        expr = parse_query('document("bib.xml")/bib')
        assert expr.source == "bib.xml"

    def test_descendant_axis(self):
        expr = parse_query('doc("s.xml")/site//city')
        assert "//city" in expr.path

    def test_attribute_step(self):
        expr = parse_query('doc("b.xml")/bib/book/@year')
        assert expr.path.endswith("@year")

    def test_text_step(self):
        expr = parse_query('doc("b.xml")/bib/book/title/text()')
        assert expr.path.endswith("text()")

    def test_value_predicate(self):
        expr = parse_query('doc("b.xml")/bib/book[title = "X"]/author')
        assert 1 in expr.predicates
        pred = expr.predicates[1][0]
        assert (pred.path, pred.op, pred.literal) == ("title", "=", "X")

    def test_positional_predicate(self):
        expr = parse_query('doc("b.xml")/bib/book[2]')
        pred = expr.predicates[1][0]
        assert pred.path == "position()" and pred.literal == "2"


class TestFlwor:
    def test_minimal(self):
        expr = parse_query('for $b in doc("b.xml")/bib/book return $b')
        assert isinstance(expr, ast.FLWOR)
        assert expr.fors[0].var == "b"
        assert isinstance(expr.ret, ast.VarRef)

    def test_multi_variable_for(self):
        expr = parse_query(
            'for $a in doc("x.xml")/a, $b in doc("y.xml")/b return $a')
        assert [f.var for f in expr.fors] == ["a", "b"]

    def test_where_conjunction(self):
        expr = parse_query(
            'for $b in doc("b.xml")/bib/book '
            'where $b/@year = "1994" and $b/title != "X" return $b')
        assert isinstance(expr.where, ast.BoolAnd)
        assert len(expr.where.conjuncts) == 2

    def test_order_by(self):
        expr = parse_query(
            'for $b in doc("b.xml")/bib/book order by $b/title return $b')
        assert len(expr.order_by) == 1

    def test_uppercase_keywords(self):
        expr = parse_query(
            'FOR $b IN doc("b.xml")/bib/book WHERE $b/@y = "1" RETURN $b')
        assert isinstance(expr, ast.FLWOR)

    def test_let_clause_parsed(self):
        expr = parse_query(
            'let $t := doc("b.xml")/bib/book for $x in $t/title return $x')
        assert expr.lets and expr.lets[0].var == "t"

    def test_distinct_values(self):
        expr = parse_query(
            'for $y in distinct-values(doc("b.xml")/bib/book/@year) '
            'return $y')
        binding = expr.fors[0].binding
        assert isinstance(binding, ast.FunctionCall)
        assert binding.name == "distinct-values"

    def test_aggregate_function(self):
        expr = parse_query('count(doc("b.xml")/bib/book)')
        assert isinstance(expr, ast.FunctionCall) and expr.name == "count"


class TestConstructors:
    def test_simple(self):
        expr = parse_query("<r>{$x}</r>")
        assert isinstance(expr, ast.ElementConstructor)
        assert isinstance(expr.content[0], ast.VarRef)

    def test_attributes(self):
        expr = parse_query('<r a="lit" b="{$v}">x</r>')
        names = [n for n, _ in expr.attributes]
        assert names == ["a", "b"]
        assert isinstance(expr.attributes[1][1], ast.VarRef)

    def test_nested_constructor_and_text(self):
        expr = parse_query("<a>hello <b>{$x}</b></a>")
        kinds = [type(c).__name__ for c in expr.content]
        assert kinds == ["TextContent", "ElementConstructor"]

    def test_empty_element(self):
        expr = parse_query("<a/>")
        assert expr.tag == "a" and not expr.content

    def test_flwor_inside_braces(self):
        expr = parse_query(
            '<r>{for $b in doc("b.xml")/bib/book return $b}</r>')
        assert isinstance(expr.content[0], ast.FLWOR)

    def test_bare_flwor_in_content(self):
        expr = parse_query(
            '<r> FOR $b in doc("b.xml")/bib/book RETURN $b </r>')
        assert isinstance(expr.content[0], ast.FLWOR)

    def test_multiple_braced_groups(self):
        expr = parse_query("<r>{$a} {$b}</r>")
        assert len(expr.content) == 2

    def test_comment_skipped(self):
        expr = parse_query("(: comment :) <a/>")
        assert expr.tag == "a"


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "for $x return $x", "<a>{$x}</b>", "for $x in doc('d')/a",
        "<a x=1/>", "for $x in doc(\"d\")/a order $x return $x",
        "$x ==", "doc('d.xml')/a[title >< 'x']",
    ])
    def test_rejected(self, bad):
        with pytest.raises(XQueryParseError):
            parse_query(bad)

    def test_trailing_garbage(self):
        with pytest.raises(XQueryParseError):
            parse_query("<a/> junk")


class TestNormalization:
    def test_let_inlining(self):
        expr = parse_query(
            'let $t := doc("b.xml")/bib/book '
            'for $x in $t/title return $x')
        norm = normalize(expr)
        assert not norm.lets
        binding = norm.fors[0].binding
        assert isinstance(binding, ast.PathExpr)
        assert binding.from_document
        assert "title" in binding.path

    def test_let_var_direct_use(self):
        expr = parse_query(
            'let $d := doc("b.xml")/bib for $x in $d/book return $x')
        norm = normalize(expr)
        assert norm.fors[0].binding.path.endswith("book")

    def test_for_var_shadows_let(self):
        expr = parse_query(
            'let $x := doc("b.xml")/bib '
            'for $x in doc("c.xml")/c return $x')
        norm = normalize(expr)
        assert isinstance(norm.ret, ast.VarRef)

    def test_normalize_idempotent_on_plain_query(self):
        expr = parse_query('for $b in doc("b.xml")/bib/book return $b')
        assert normalize(expr).fors[0].var == "b"
