"""Tests for location paths."""

import pytest

from repro.xat.paths import CHILD, DESCENDANT, Path, PathError, Step


class TestPathParse:
    def test_child_steps(self):
        path = Path.parse("bib/book/title")
        assert [s.axis for s in path.steps] == [CHILD] * 3
        assert [s.test for s in path.steps] == ["bib", "book", "title"]

    def test_leading_slash_optional(self):
        assert Path.parse("/a/b").steps == Path.parse("a/b").steps

    def test_descendant(self):
        path = Path.parse("site//city")
        assert path.steps[1].axis == DESCENDANT

    def test_attribute_and_text(self):
        path = Path.parse("book/@year")
        assert path.steps[-1].is_attribute
        assert path.steps[-1].attribute_name == "year"
        path = Path.parse("price/text()")
        assert path.steps[-1].is_text

    def test_attribute_then_text_allowed(self):
        path = Path.parse("book/@year/text()")
        assert path.ends_in_value

    def test_value_must_be_last(self):
        with pytest.raises(PathError):
            Path.parse("a/@x/b")

    def test_empty_step_rejected(self):
        with pytest.raises(PathError):
            Path.parse("a//")

    def test_empty_path(self):
        path = Path.parse("")
        assert path.is_empty
        assert str(path) == "."

    def test_str_roundtrip(self):
        text = "/bib/book//title"
        assert str(Path.parse(text)) == text

    def test_element_and_value_split(self):
        path = Path.parse("a/b/@x")
        assert [s.test for s in path.element_steps()] == ["a", "b"]
        assert [s.test for s in path.value_steps()] == ["@x"]

    def test_concat(self):
        combined = Path.parse("a/b").concat(Path.parse("c"))
        assert str(combined) == "/a/b/c"

    def test_as_pairs(self):
        assert Path.parse("a//b").as_pairs() == [("child", "a"),
                                                 ("descendant", "b")]

    def test_step_str(self):
        assert str(Step(CHILD, "a")) == "/a"
        assert str(Step(DESCENDANT, "a")) == "//a"
