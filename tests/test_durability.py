"""Durability subsystem: WAL codec, checkpoints, recovery, edge cases.

The fault-injection suite (torn writes, fsync failures, kill-at-LSN and
the subprocess kill -9 differential) lives in
``test_durability_faults.py``; this module covers the deterministic
surface: record round-trips, checkpoint atomicity/fallback, the
recovery edge-case matrix of ISSUE 7, replay idempotence, durability
metrics/tracing, and the close-idempotence regressions.
"""

from __future__ import annotations

import glob
import os
import random

import pytest

from .helpers import ALL_MUTATORS, random_batch
from repro import (CostModel, MaterializedXQueryView, StorageManager,
                   ViewRegistry)
from repro.api import Database
from repro.durability import (CheckpointError, CheckpointStore,
                              DurabilityManager, RealFileSystem,
                              WriteAheadLog, read_segment)
from repro.durability.wal import encode_record, segment_name
from repro.obs import render_prometheus
from repro.workloads import xmark

SITE = xmark.generate_site(12, seed=7)


def durable_db(path, **kwargs):
    db = Database(durable_path=path, **kwargs)
    return db


def seed_db(path, **kwargs) -> Database:
    db = durable_db(path, fsync="always", **kwargs)
    db.load("site.xml", SITE)
    db.create_view("join", xmark.JOIN_QUERY)
    db.create_view("bycity", xmark.PERSONS_BY_CITY_QUERY,
                   policy="deferred")
    return db


def drive(db: Database, steps: int, seed: int = 3) -> None:
    rng = random.Random(seed)
    for step in range(steps):
        batch = random_batch(rng, db.storage, step, ALL_MUTATORS)
        if batch:
            db.registry.apply_updates(batch)


def assert_all_views_consistent(db: Database) -> None:
    for name in db.views():
        assert db.read(name) == db.registry.recompute_xml(name), (
            f"view {name!r} diverged from the recompute oracle")


# -- WAL codec and segments ---------------------------------------------------------------

def test_wal_record_roundtrip(tmp_path):
    fs = RealFileSystem()
    wal = WriteAheadLog(fs, str(tmp_path), fsync="always")
    payloads = [{"t": "batch", "u": [i]} for i in range(5)]
    lsns = [wal.append(p) for p in payloads]
    assert lsns == [1, 2, 3, 4, 5]
    wal.close()
    [(start, path)] = wal.segments()
    assert start == 1
    records, valid, total = read_segment(fs, path)
    assert valid == total
    assert [p for _lsn, p in records] == payloads
    assert [lsn for lsn, _p in records] == lsns


def test_wal_detects_corrupt_payload(tmp_path):
    fs = RealFileSystem()
    wal = WriteAheadLog(fs, str(tmp_path), fsync="always")
    for i in range(3):
        wal.append({"i": i})
    wal.close()
    [(_start, path)] = wal.segments()
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:     # flip a byte in the last payload
        fh.seek(size - 2)
        byte = fh.read(1)
        fh.seek(size - 2)
        fh.write(bytes([byte[0] ^ 0xFF]))
    records, valid, total = read_segment(fs, path)
    assert [p["i"] for _lsn, p in records] == [0, 1]
    assert valid < total


def test_wal_fsync_policies_count_fsyncs(tmp_path):
    fs = RealFileSystem()
    always = WriteAheadLog(fs, str(tmp_path / "a"), fsync="always")
    fs.makedirs(str(tmp_path / "a"))
    for i in range(4):
        always.append({"i": i})
    assert always.stats.fsyncs == 4
    always.close()

    fs.makedirs(str(tmp_path / "b"))
    batched = WriteAheadLog(fs, str(tmp_path / "b"), fsync="batch",
                            sync_every=3)
    for i in range(4):
        batched.append({"i": i})
    assert batched.stats.fsyncs == 1   # one at the 3rd append
    batched.close()                    # + one on close
    assert batched.stats.fsyncs == 2

    fs.makedirs(str(tmp_path / "c"))
    off = WriteAheadLog(fs, str(tmp_path / "c"), fsync="off")
    for i in range(4):
        off.append({"i": i})
    off.close()
    assert off.stats.fsyncs == 0


def test_wal_rejects_unknown_policy(tmp_path):
    with pytest.raises(ValueError, match="fsync policy"):
        WriteAheadLog(RealFileSystem(), str(tmp_path), fsync="sometimes")
    with pytest.raises(ValueError, match="fsync policy"):
        DurabilityManager(tmp_path, fsync="sometimes")


def test_wal_segment_roll_and_retention(tmp_path):
    fs = RealFileSystem()
    wal = WriteAheadLog(fs, str(tmp_path), fsync="always")
    wal.append({"i": 1})
    wal.append({"i": 2})
    wal.start_segment(3)              # checkpoint at lsn 2
    wal.append({"i": 3})
    wal.start_segment(4)              # checkpoint at lsn 3
    names = sorted(os.path.basename(p) for _s, p in wal.segments())
    assert names == [segment_name(1), segment_name(3), segment_name(4)]
    # keep everything a checkpoint at lsn 2 still needs: records > 2
    dropped = wal.drop_segments_before(3)
    assert dropped == 1
    names = sorted(os.path.basename(p) for _s, p in wal.segments())
    assert names == [segment_name(3), segment_name(4)]
    wal.close()


# -- checkpoint store ---------------------------------------------------------------------

def test_checkpoint_roundtrip_and_atomic_name(tmp_path):
    store = CheckpointStore(RealFileSystem(), str(tmp_path))
    store.write(7, {"hello": [1, 2, 3]})
    assert not glob.glob(str(tmp_path / "*.tmp"))
    lsn, state, generation = store.load_latest()
    assert (lsn, generation) == (7, 0)
    assert state == {"hello": [1, 2, 3]}


def test_checkpoint_crc_failure_falls_back_a_generation(tmp_path):
    store = CheckpointStore(RealFileSystem(), str(tmp_path))
    store.write(5, {"gen": "old"})
    store.write(9, {"gen": "new"})
    (_lsn, newest_path) = store.list()[0]
    with open(newest_path, "r+b") as fh:
        fh.seek(40)
        fh.write(b"\xde\xad")
    with pytest.raises(CheckpointError):
        store.load_one(newest_path)
    lsn, state, generation = store.load_latest()
    assert (lsn, state["gen"], generation) == (5, "old", 1)


def test_checkpoint_prune_keeps_two_generations(tmp_path):
    store = CheckpointStore(RealFileSystem(), str(tmp_path), keep=2)
    for lsn in (3, 6, 9):
        store.write(lsn, {"lsn": lsn})
    oldest_retained = store.prune()
    assert oldest_retained == 6
    assert [lsn for lsn, _p in store.list()] == [9, 6]


# -- recovery: the happy path -------------------------------------------------------------

def test_crash_then_recover_matches_oracle_and_precrash(tmp_path):
    db = seed_db(tmp_path)
    drive(db, steps=10)
    pre = {name: db.read(name) for name in db.views()}
    del db                                     # simulated kill: no close

    recovered = durable_db(tmp_path)
    assert recovered.recovery.wal_records_replayed > 0
    assert sorted(recovered.views()) == ["bycity", "join"]
    assert_all_views_consistent(recovered)
    for name, xml in pre.items():
        assert recovered.read(name) == xml
    recovered.close()


def test_clean_close_restores_without_replay(tmp_path):
    db = seed_db(tmp_path)
    drive(db, steps=6)
    expected = {name: db.read(name) for name in db.views()}
    db.close()

    reopened = durable_db(tmp_path)
    assert reopened.recovery.wal_records_replayed == 0
    assert reopened.recovery.checkpoint_lsn > 0
    for name, xml in expected.items():
        assert reopened.read(name) == xml
    assert_all_views_consistent(reopened)
    reopened.close()


def test_recovered_registry_keeps_maintaining(tmp_path):
    db = seed_db(tmp_path)
    drive(db, steps=4)
    del db
    recovered = durable_db(tmp_path)
    drive(recovered, steps=4, seed=11)         # keep updating post-recovery
    assert_all_views_consistent(recovered)
    recovered.close()


def test_recovery_restores_operator_state_warm(tmp_path, monkeypatch):
    # Pin the cost model to incremental maintenance: recompute choices
    # depend on wall-clock calibration, and whether an entry is clean
    # (checkpointable) at close varies with which path each flush took.
    monkeypatch.setattr(CostModel, "should_recompute",
                        lambda self, trees: False)
    db = seed_db(tmp_path)
    drive(db, steps=5)
    db.close()
    recovered = durable_db(tmp_path)
    store = recovered.registry.state_store
    assert store.entry_count() > 0
    assert all(entry.valid for entry in store.entries())
    drive(recovered, steps=2, seed=23)
    assert store.stats.hits > 0, (
        "restored operator state should serve hits, not recompute all")
    recovered.close()


def test_view_ddl_replays_from_wal(tmp_path):
    db = seed_db(tmp_path)
    db.create_view("selection", xmark.SELECTION_QUERY)
    db.drop_view("bycity")
    del db                                     # DDL lives only in the WAL
    recovered = durable_db(tmp_path)
    assert sorted(recovered.views()) == ["join", "selection"]
    assert recovered.view("selection").query_text == xmark.SELECTION_QUERY
    assert_all_views_consistent(recovered)
    recovered.close()


# -- recovery edge cases (the ISSUE 7 matrix) ---------------------------------------------

def test_recover_empty_directory(tmp_path):
    db = durable_db(tmp_path)
    report = db.recovery
    assert (report.checkpoint_lsn, report.wal_records_replayed) == (0, 0)
    assert db.views() == [] and db.documents() == []
    db.load("site.xml", SITE)                  # and it is usable
    db.create_view("join", xmark.JOIN_QUERY)
    assert_all_views_consistent(db)
    db.close()


def test_recover_checkpoint_only_no_tail(tmp_path):
    db = seed_db(tmp_path)
    drive(db, steps=3)
    db.checkpoint()                            # tail is empty after this
    expected = {name: db.read(name) for name in db.views()}
    del db
    recovered = durable_db(tmp_path)
    assert recovered.recovery.wal_records_replayed == 0
    assert recovered.recovery.checkpoint_lsn > 0
    for name, xml in expected.items():
        assert recovered.read(name) == xml
    recovered.close()


def test_recover_torn_final_record(tmp_path):
    db = seed_db(tmp_path)
    drive(db, steps=5)
    del db
    segments = sorted(glob.glob(str(tmp_path / "wal-*.log")))
    last = segments[-1]
    size = os.path.getsize(last)
    with open(last, "r+b") as fh:              # tear the final record
        fh.truncate(size - 9)
    recovered = durable_db(tmp_path)
    assert recovered.recovery.torn_records_discarded == 1
    assert_all_views_consistent(recovered)
    # the torn suffix was truncated away: recovering again is clean
    recovered.close()
    again = durable_db(tmp_path)
    assert again.recovery.torn_records_discarded == 0
    assert_all_views_consistent(again)
    again.close()


def test_recover_corrupt_checkpoint_falls_back_with_tail(tmp_path):
    db = seed_db(tmp_path, checkpoint_every=4)
    drive(db, steps=10)                        # several checkpoints cut
    expected = {name: db.read(name) for name in db.views()}
    del db
    checkpoints = sorted(glob.glob(str(tmp_path / "checkpoint-*.ckpt")))
    assert len(checkpoints) == 2               # two generations retained
    with open(checkpoints[-1], "r+b") as fh:   # corrupt the newest
        fh.seek(64)
        fh.write(b"\x00" * 8)
    recovered = durable_db(tmp_path)
    assert recovered.recovery.checkpoint_generation == 1
    assert recovered.recovery.wal_records_replayed > 0, (
        "fallback generation must replay the longer WAL tail")
    for name, xml in expected.items():
        assert recovered.read(name) == xml
    assert_all_views_consistent(recovered)
    recovered.close()


def test_replay_idempotence_recover_twice(tmp_path):
    db = seed_db(tmp_path)
    drive(db, steps=8)
    del db
    first = durable_db(tmp_path)
    assert_all_views_consistent(first)
    state_one = {name: first.read(name) for name in first.views()}
    replayed_one = first.recovery.wal_records_replayed
    del first                                  # crash again without close
    second = durable_db(tmp_path)
    assert second.recovery.wal_records_replayed == replayed_one
    assert_all_views_consistent(second)
    state_two = {name: second.read(name) for name in second.views()}
    assert state_one == state_two
    second.close()


def test_prepopulated_storage_gets_bootstrap_checkpoint(tmp_path):
    storage = StorageManager()
    xmark.register_site(storage, 8, seed=7)
    db = Database(storage=storage, durable_path=tmp_path)
    db.create_view("join", xmark.JOIN_QUERY)
    del db                                     # crash before any checkpoint
    recovered = durable_db(tmp_path)
    assert recovered.documents() == ["site.xml"]
    assert recovered.views() == ["join"]
    assert_all_views_consistent(recovered)
    recovered.close()


def test_existing_state_rejects_wrapped_storage(tmp_path):
    seed_db(tmp_path).close()
    with pytest.raises(ValueError, match="already holds state"):
        Database(storage=StorageManager(), durable_path=tmp_path)


def test_durable_registry_rejects_raw_plan_views(tmp_path):
    from repro.translate import translate_query

    db = durable_db(tmp_path)
    db.load("site.xml", SITE)
    with pytest.raises(ValueError, match="query strings"):
        db.registry.register("raw", translate_query(xmark.JOIN_QUERY))
    db.close()


def test_failed_batch_replays_to_same_partial_state(tmp_path):
    db = seed_db(tmp_path)
    persons = db.storage.find_by_path(
        "site.xml", [("child", "site"), ("child", "people"),
                     ("child", "person")])
    from repro import UpdateRequest
    doomed = persons[0]
    # delete a subtree, then address a node inside it: the second
    # statement fails mid-batch, leaving a partial application.
    bad = [UpdateRequest.delete("site.xml", doomed),
           UpdateRequest.modify("site.xml", doomed.child("b"), "x")]
    with pytest.raises(Exception):
        db.registry.apply_updates(bad)
    partial = {name: db.read(name) for name in db.views()}
    del db
    recovered = durable_db(tmp_path)
    assert recovered.recovery.replay_errors == 1
    for name, xml in partial.items():
        assert recovered.read(name) == xml
    assert_all_views_consistent(recovered)
    recovered.close()


# -- checkpoint cadence -------------------------------------------------------------------

def test_auto_checkpoint_truncates_wal(tmp_path):
    db = seed_db(tmp_path, checkpoint_every=5)
    drive(db, steps=12)
    manager = db.durability
    assert manager._checkpoints_total >= 2
    # retention: at most 2 checkpoint generations on disk
    assert len(glob.glob(str(tmp_path / "checkpoint-*.ckpt"))) <= 2
    # truncation: the WAL does not accumulate one segment per record
    assert len(glob.glob(str(tmp_path / "wal-*.log"))) <= 3
    del db
    recovered = durable_db(tmp_path)
    assert_all_views_consistent(recovered)
    recovered.close()


# -- observability ------------------------------------------------------------------------

def test_durability_metrics_exposed(tmp_path):
    db = seed_db(tmp_path)
    drive(db, steps=4)
    del db                                     # crash: leave a WAL tail
    recovered = durable_db(tmp_path)
    assert recovered.recovery.wal_records_replayed > 0
    snapshot = recovered.metrics()
    for name in ("wal_records_replayed", "wal_bytes", "recovery_seconds",
                 "checkpoint_seconds", "wal_records_total",
                 "checkpoints_total"):
        assert name in snapshot, f"missing durability metric {name}"
    assert snapshot["wal_bytes"]["values"][""] > 0
    assert snapshot["recovery_seconds"]["values"][""] > 0
    rendered = render_prometheus(recovered.registry.metrics)
    assert "wal_records_replayed" in rendered
    assert "recovery_seconds" in rendered
    recovered.close()


def test_recovery_span_emitted(tmp_path):
    seed_db(tmp_path).close()

    class Sink:
        def __init__(self):
            self.spans = []

        def on_span(self, span):
            self.spans.append(span)

    sink = Sink()
    storage = StorageManager()
    registry = ViewRegistry(storage)
    registry.add_trace_sink(sink)
    manager = DurabilityManager(tmp_path)
    report = manager.recover(registry)
    manager.bind(registry)
    names = [span.name for span in sink.spans]
    assert "recovery" in names
    span = next(s for s in sink.spans if s.name == "recovery")
    assert span.attrs["views"] == report.views == 2
    manager.close(registry)
    registry.close()


# -- close idempotence (satellite regression) ---------------------------------------------

def test_database_close_is_idempotent(tmp_path):
    db = seed_db(tmp_path)
    drive(db, steps=2)
    db.close()
    db.close()                                 # second close: no-op
    with durable_db(tmp_path) as reopened:
        assert_all_views_consistent(reopened)
    reopened.close()                           # after __exit__: no-op


def test_database_exit_flushes_durable_state(tmp_path):
    with seed_db(tmp_path) as db:
        drive(db, steps=3)
        expected = {name: db.read(name) for name in db.views()}
    reopened = durable_db(tmp_path)
    assert reopened.recovery.wal_records_replayed == 0, (
        "__exit__ must have checkpointed the open durable state")
    for name, xml in expected.items():
        assert reopened.read(name) == xml
    reopened.close()


def test_view_close_is_idempotent():
    storage = StorageManager()
    xmark.register_site(storage, 8, seed=7)
    view = MaterializedXQueryView(storage, xmark.SELECTION_QUERY)
    view.materialize()
    assert storage._mutation_listeners      # the store's listener
    view.close()
    assert not storage._mutation_listeners
    view.close()                            # double-close: no-op
    with MaterializedXQueryView(storage, xmark.SELECTION_QUERY) as twin:
        twin.materialize()
        twin.close()                        # explicit close inside with


def test_registry_close_is_idempotent():
    storage = StorageManager()
    registry = ViewRegistry(storage)
    listeners = len(storage._listeners)
    assert listeners == 1
    registry.close()
    registry.close()
    assert not storage._listeners
    # closing one registry must not detach another's listeners
    first, second = ViewRegistry(storage), ViewRegistry(storage)
    first.close()
    first.close()
    assert len(storage._listeners) == 1
    second.close()
    assert not storage._listeners
