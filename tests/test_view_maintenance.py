"""Integration tests: V-P-A maintenance across view classes (Chapters 7-9).

Every test uses the paper's correctness criterion: after maintenance the
extent must serialize identically (content and order) to recomputation.
"""

import pytest

from repro import MaterializedXQueryView, StorageManager, UpdateRequest
from repro.workloads import xmark

from .helpers import (assert_consistent, closed_auctions_of, persons_of,
                      site_view)

ALL_QUERIES = [
    ("doc-order", xmark.ORDER_QUERY_1),
    ("order-by", xmark.ORDER_QUERY_2),
    ("join", xmark.ORDER_QUERY_3),
    ("construction", xmark.ORDER_QUERY_4),
    ("group-by-city", xmark.PERSONS_BY_CITY_QUERY),
    ("selection", xmark.SELECTION_QUERY),
    ("join-names", xmark.JOIN_QUERY),
]


@pytest.mark.parametrize("label,query", ALL_QUERIES)
class TestInsertAcrossViewClasses:
    def test_insert_person(self, label, query):
        storage, view = site_view(query, num_persons=20)
        persons = persons_of(storage)
        view.apply_updates([UpdateRequest.insert(
            "site.xml", persons[-1], xmark.new_person_xml(1, city="Cairo"),
            "after")])
        assert_consistent(view)

    def test_insert_auction(self, label, query):
        storage, view = site_view(query, num_persons=20)
        auctions = closed_auctions_of(storage)
        view.apply_updates([UpdateRequest.insert(
            "site.xml", auctions[0],
            xmark.new_closed_auction_xml(2, "person3"), "before")])
        assert_consistent(view)


@pytest.mark.parametrize("label,query", ALL_QUERIES)
class TestDeleteAcrossViewClasses:
    def test_delete_person(self, label, query):
        storage, view = site_view(query, num_persons=20)
        persons = persons_of(storage)
        view.apply_updates([UpdateRequest.delete("site.xml", persons[3])])
        assert_consistent(view)

    def test_delete_several_persons_one_batch(self, label, query):
        storage, view = site_view(query, num_persons=20)
        persons = persons_of(storage)
        view.apply_updates([UpdateRequest.delete("site.xml", p)
                            for p in persons[2:7]])
        assert_consistent(view)

    def test_delete_auction(self, label, query):
        storage, view = site_view(query, num_persons=20)
        auctions = closed_auctions_of(storage)
        view.apply_updates([UpdateRequest.delete("site.xml", auctions[1])])
        assert_consistent(view)


@pytest.mark.parametrize("label,query", ALL_QUERIES)
class TestMixedSequences:
    def test_heterogeneous_sequence(self, label, query):
        storage, view = site_view(query, num_persons=20)
        persons = persons_of(storage)
        auctions = closed_auctions_of(storage)
        updates = [
            UpdateRequest.insert("site.xml", persons[-1],
                                 xmark.new_person_xml(9, city="Oslo"),
                                 "after"),
            UpdateRequest.delete("site.xml", persons[0]),
            UpdateRequest.insert("site.xml", auctions[-1],
                                 xmark.new_closed_auction_xml(9, "person7"),
                                 "after"),
            UpdateRequest.delete("site.xml", auctions[2]),
        ]
        view.apply_updates(updates)
        assert_consistent(view)


class TestGroupMaintenance:
    """Grouped view specifics (Chapter 7.3): group shells appear/vanish."""

    def test_new_city_creates_group(self):
        storage, view = site_view(xmark.PERSONS_BY_CITY_QUERY,
                                  num_persons=12, seed=5)
        persons = persons_of(storage)
        assert "Zanzibar" not in view.to_xml()
        view.apply_updates([UpdateRequest.insert(
            "site.xml", persons[-1],
            xmark.new_person_xml(5, city="Zanzibar"), "after")])
        assert 'name="Zanzibar"' in view.to_xml()
        assert_consistent(view)

    def test_last_member_delete_removes_group(self):
        storage, view = site_view(xmark.PERSONS_BY_CITY_QUERY,
                                  num_persons=12, seed=5)
        persons = persons_of(storage)
        view.apply_updates([UpdateRequest.insert(
            "site.xml", persons[-1],
            xmark.new_person_xml(6, city="Zanzibar"), "after")])
        new_person = persons_of(storage)[-1]
        report = view.apply_updates(
            [UpdateRequest.delete("site.xml", new_person)])
        assert 'name="Zanzibar"' not in view.to_xml()
        assert report.fusion.removed_roots >= 1
        assert_consistent(view)

    def test_group_grows_in_place(self):
        storage, view = site_view(xmark.PERSONS_BY_CITY_QUERY,
                                  num_persons=12, seed=5)
        persons = persons_of(storage)
        before = view.to_xml().count("<entry>")
        view.apply_updates([UpdateRequest.insert(
            "site.xml", persons[-1],
            xmark.new_person_xml(7, city="Worcester"), "after")])
        assert view.to_xml().count("<entry>") == before + 1
        assert_consistent(view)


class TestLojDanglingFlips:
    """Chapter 7.4: dangling status flips under right-side updates."""

    QUERY = """<result>{
    for $y in distinct-values(doc("site.xml")/site/people/person/address/city)
    order by $y
    return <g C="{$y}">{
      for $c in doc("site.xml")/site/closed_auctions/closed_auction,
          $p in doc("site.xml")/site/people/person
      where $p/@id = $c/seller/@person and $y = $p/address/city
      return $c/date
    }</g>
    }</result>"""

    def test_insert_fills_dangling_group(self):
        storage, view = site_view(self.QUERY, num_persons=6, seed=9)
        # add a person in a fresh city, then an auction sold by them:
        persons = persons_of(storage)
        view.apply_updates([UpdateRequest.insert(
            "site.xml", persons[-1],
            xmark.new_person_xml(11, city="Atlantis"), "after")])
        assert_consistent(view)
        auctions = closed_auctions_of(storage)
        view.apply_updates([UpdateRequest.insert(
            "site.xml", auctions[-1],
            xmark.new_closed_auction_xml(11, "newperson11"), "after")])
        assert_consistent(view)

    def test_delete_restores_dangling_group(self):
        storage, view = site_view(self.QUERY, num_persons=6, seed=9)
        auctions = closed_auctions_of(storage)
        # delete every auction: all groups must become empty shells
        view.apply_updates([UpdateRequest.delete("site.xml", a)
                            for a in auctions])
        assert_consistent(view)
        assert "<date>" not in view.to_xml()
        assert "<g " in view.to_xml()  # shells survive


class TestModifySemantics:
    def test_modify_exposed_value(self):
        storage, view = site_view(xmark.JOIN_QUERY, num_persons=10)
        persons = persons_of(storage)
        name = storage.children(persons[2], "name")[0]
        report = view.apply_updates(
            [UpdateRequest.modify("site.xml", name, "Renamed Person")])
        assert_consistent(view)
        if "Renamed Person" in view.to_xml():
            assert report.accepted == 1

    def test_modify_join_key_first_class(self):
        """A join-key modify propagates as one retract/assert pair — the
        group moves, nothing is decomposed into delete+reinsert."""
        storage, view = site_view(xmark.PERSONS_BY_CITY_QUERY,
                                  num_persons=10)
        persons = persons_of(storage)
        address = storage.children(persons[0], "address")[0]
        city = storage.children(address, "city")[0]
        report = view.apply_updates(
            [UpdateRequest.modify("site.xml", city, "Montevideo")])
        assert report.accepted == 1
        assert report.batches == 1
        assert 'name="Montevideo"' in view.to_xml()
        assert_consistent(view)

    def test_legacy_decomposition_flag_removed(self):
        """The Section 5.2.2 delete+reinsert escape hatch is gone; the
        old keyword fails loudly instead of silently changing paths."""
        storage = StorageManager()
        xmark.register_site(storage, 10, seed=42)
        with pytest.raises(TypeError, match="modify_decomposition"):
            MaterializedXQueryView(storage,
                                   xmark.PERSONS_BY_CITY_QUERY,
                                   modify_decomposition=True)

    def test_modify_deep_inside_exposed_fragment(self):
        storage, view = site_view(xmark.ORDER_QUERY_1, num_persons=10)
        persons = persons_of(storage)
        profile = storage.children(persons[4], "profile")[0]
        education = storage.children(profile, "education")[0]
        view.apply_updates([UpdateRequest.modify(
            "site.xml", education, "Doctorate")])
        assert "Doctorate" in view.to_xml()
        assert_consistent(view)


class TestInsertIntoExposedFragment:
    def test_new_child_appears_in_extent(self):
        storage, view = site_view(xmark.ORDER_QUERY_1, num_persons=8)
        persons = persons_of(storage)
        profile = storage.children(persons[1], "profile")[0]
        view.apply_updates([UpdateRequest.insert(
            "site.xml", profile, '<interest category="categoryX"/>',
            position="into")])
        assert "categoryX" in view.to_xml()
        assert_consistent(view)

    def test_delete_child_of_exposed_fragment(self):
        storage, view = site_view(xmark.ORDER_QUERY_1, num_persons=8)
        persons = persons_of(storage)
        profile = storage.children(persons[0], "profile")[0]
        education = storage.children(profile, "education")[0]
        view.apply_updates([UpdateRequest.delete("site.xml", education)])
        assert_consistent(view)


class TestValidatePhaseEffects:
    def test_irrelevant_updates_skip_propagation(self):
        storage, view = site_view(xmark.ORDER_QUERY_2, num_persons=10)
        persons = persons_of(storage)
        # ORDER_QUERY_2 reads only cities; deleting a profile is irrelevant
        profile = storage.children(persons[0], "profile")[0]
        report = view.apply_updates(
            [UpdateRequest.delete("site.xml", profile)])
        assert report.irrelevant == 1 and report.batches == 0
        assert_consistent(view)

    def test_validation_can_be_disabled(self):
        storage, _ = site_view(xmark.ORDER_QUERY_2, num_persons=10)
        from repro import MaterializedXQueryView

        view = MaterializedXQueryView(storage, xmark.ORDER_QUERY_2,
                                      validate_updates=False)
        view.materialize()
        persons = persons_of(storage)
        profile = storage.children(persons[0], "profile")[0]
        report = view.apply_updates(
            [UpdateRequest.delete("site.xml", profile)])
        assert report.irrelevant == 0
        assert_consistent(view)

    def test_update_before_materialize_rejected(self):
        from repro import MaterializedXQueryView, StorageManager

        storage = StorageManager()
        xmark.register_site(storage, 5)
        view = MaterializedXQueryView(storage, xmark.ORDER_QUERY_2)
        with pytest.raises(RuntimeError):
            view.apply_updates([])
