"""Integration tests on the paper's running example (Figs 1.1-1.4).

These tests verify the headline behaviour: the three source updates of
Fig 1.3 — insert a book, delete a book, replace a price — refresh the
materialized view of Fig 1.2 to exactly the Fig 1.4 state, matching full
recomputation in content *and order* at every step.
"""

import pytest

from repro import MaterializedXQueryView, UpdateRequest, apply_xquery_update
from repro.workloads.bib import NEW_BOOK_FRAGMENT

from .helpers import assert_consistent, books_of, running_example

EXPECTED_INITIAL = (
    '<result>'
    '<yGroup Y="1994"><books><entry><title>TCP/IP Illustrated</title>'
    '<price>65.95</price></entry></books></yGroup>'
    '<yGroup Y="2000"><books><entry><title>Data on the Web</title>'
    '<price>39.95</price></entry></books></yGroup>'
    '</result>')

EXPECTED_FINAL = (
    '<result>'
    '<yGroup Y="1994"><books>'
    '<entry><title>TCP/IP Illustrated</title><price>70</price></entry>'
    '<entry><title>Advanced Programming in the Unix environment</title>'
    '<price>69.99</price></entry>'
    '</books></yGroup>'
    '</result>')


def _fig13_updates(storage):
    books = books_of(storage)
    data_on_web = [k for k in books
                   if storage.text(storage.children(k, "title")[0])
                   == "Data on the Web"][0]
    prices_root = storage.root_key("prices.xml")
    entry = [k for k in storage.children(prices_root, "entry")
             if storage.text(storage.children(k, "b-title")[0])
             == "TCP/IP Illustrated"][0]
    price = storage.children(entry, "price")[0]
    return [
        UpdateRequest.insert("bib.xml", books[-1], NEW_BOOK_FRAGMENT,
                             position="after"),
        UpdateRequest.delete("bib.xml", data_on_web),
        UpdateRequest.modify("prices.xml", price, "70"),
    ]


class TestFig12Materialization:
    def test_initial_extent_matches_fig_1_2b(self):
        _storage, view = running_example()
        assert view.to_xml() == EXPECTED_INITIAL

    def test_initial_matches_recompute(self):
        _storage, view = running_example()
        assert_consistent(view)


class TestFig13Updates:
    def test_all_three_updates_reach_fig_1_4(self):
        storage, view = running_example()
        report = view.apply_updates(_fig13_updates(storage))
        assert view.to_xml() == EXPECTED_FINAL
        assert_consistent(view)
        assert report.accepted == 3
        assert report.batches == 3  # insert / delete / modify runs

    def test_update_order_insert_only(self):
        storage, view = running_example()
        books = books_of(storage)
        view.apply_updates([UpdateRequest.insert(
            "bib.xml", books[-1], NEW_BOOK_FRAGMENT, position="after")])
        assert_consistent(view)
        # the new entry lands *after* the existing 1994 entry
        xml = view.to_xml()
        assert xml.index("TCP/IP") < xml.index("Advanced Programming")

    def test_insert_before_reorders(self):
        storage, view = running_example()
        books = books_of(storage)
        view.apply_updates([UpdateRequest.insert(
            "bib.xml", books[0], NEW_BOOK_FRAGMENT, position="before")])
        assert_consistent(view)
        xml = view.to_xml()
        assert xml.index("Advanced Programming") < xml.index("TCP/IP")

    def test_delete_last_book_of_year_removes_group(self):
        storage, view = running_example()
        books = books_of(storage)
        data_on_web = [k for k in books
                       if storage.text(storage.children(k, "title")[0])
                       == "Data on the Web"][0]
        report = view.apply_updates(
            [UpdateRequest.delete("bib.xml", data_on_web)])
        assert 'Y="2000"' not in view.to_xml()
        assert_consistent(view)
        # the whole yGroup fragment was disconnected at its root
        assert report.fusion.removed_roots >= 1

    def test_delete_one_of_two_books_keeps_group(self):
        storage, view = running_example()
        books = books_of(storage)
        view.apply_updates([UpdateRequest.insert(
            "bib.xml", books[-1], NEW_BOOK_FRAGMENT, position="after")])
        # now 1994 has two entries; delete the original one
        view.apply_updates([UpdateRequest.delete("bib.xml", books[0])])
        xml = view.to_xml()
        assert 'Y="1994"' in xml and "Advanced Programming" in xml
        assert "TCP/IP" not in xml
        assert_consistent(view)

    def test_modify_refreshes_in_place(self):
        storage, view = running_example()
        prices_root = storage.root_key("prices.xml")
        entry = storage.children(prices_root, "entry")[1]
        price = storage.children(entry, "price")[0]
        view.apply_updates([UpdateRequest.modify("prices.xml", price, "99")])
        assert "<price>99</price>" in view.to_xml()
        assert_consistent(view)


class TestXQueryUpdateLanguage:
    """The exact Fig 1.3 statements through the update-language parser."""

    def test_fig_1_3_statements(self):
        storage, view = running_example()
        statements = [
            '''for $book in document("bib.xml")/bib/book[2]
               update $book
               insert ''' + NEW_BOOK_FRAGMENT + ''' after $book''',
            '''for $book in document("bib.xml")/bib/book
               where $book/title = "Data on the Web"
               update $book
               delete $book''',
            '''for $entry in document("prices.xml")/prices/entry
               where $entry/b-title = "TCP/IP Illustrated"
               update $entry
               replace $entry/price/text() with "70"''',
        ]
        for statement in statements:
            requests = apply_xquery_update(statement, storage)
            assert requests, statement
            view.apply_updates(requests)
            assert_consistent(view)
        assert view.to_xml() == EXPECTED_FINAL


class TestMaintenanceSequences:
    """Longer mixed sequences keep the extent equal to recomputation."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_sequences(self, seed):
        import random

        from repro.workloads.bib import new_book_xml

        rng = random.Random(seed)
        storage, view = running_example()
        for step in range(12):
            books = books_of(storage)
            action = rng.choice(["insert", "insert", "delete", "modify"])
            if action == "insert" or not books:
                anchor = rng.choice(books) if books \
                    else storage.root_key("bib.xml")
                position = "after" if books else "into"
                year = rng.choice([1994, 2000, 2005])
                update = UpdateRequest.insert(
                    "bib.xml", anchor, new_book_xml(step, year), position)
            elif action == "delete":
                update = UpdateRequest.delete("bib.xml", rng.choice(books))
            else:
                book = rng.choice(books)
                title = storage.children(book, "title")[0]
                update = UpdateRequest.modify(
                    "bib.xml", title, f"Retitled {step}")
            view.apply_updates([update])
            assert_consistent(view)

    def test_batch_of_many_inserts_single_pass(self):
        from repro.workloads.bib import new_book_xml

        storage, view = running_example()
        books = books_of(storage)
        updates = [UpdateRequest.insert("bib.xml", books[-1],
                                        new_book_xml(i, 1994), "after")
                   for i in range(8)]
        report = view.apply_updates(updates)
        assert report.batches == 1  # one batch update tree, one delta pass
        assert_consistent(view)
