"""Compiled execution: the delta-plan IR, the batch primitives, and the
compiled-vs-interpreted differential.

The tree interpreter stays the semantic oracle; every test here pins the
compiled path against it — structurally (linear plans, dependency
order, cross-view prefix sharing), on the batch/accessor primitives
(composite column mapping, count-signed merge, empty-delta
short-circuit), and behaviourally (randomized mixed update streams over
the full xmark/bib view set, byte-identical extents in both modes).
"""

from __future__ import annotations

import pytest

from repro import (Database, MaterializedXQueryView, StorageManager,
                   UpdateRequest, ViewRegistry)
from repro.plan import (CompositeAccessor, TupleBatch, lower,
                        merge_signed_counts)
from repro.workloads import bib as bibload
from repro.workloads import xmark
from repro.xat.base import DELTA, FULL, MODIFY
from repro.xat.table import TableSchema, XatTable, XatTuple

from .helpers import (ALL_MUTATORS, assert_consistent, books_of,
                      run_differential)

CITY_PATH = [("child", "site"), ("child", "people"), ("child", "person"),
             ("child", "address"), ("child", "city")]

#: the full maintained view set the fuzz sweep drives (mirrors
#: benchmarks/fuzz_differential.py)
XMARK_VIEWS = [
    ("order-query-2", xmark.ORDER_QUERY_2),
    ("persons-by-city", xmark.PERSONS_BY_CITY_QUERY),
    ("join", xmark.JOIN_QUERY),
    ("selection", xmark.SELECTION_QUERY),
    ("city-headcount", xmark.CITY_HEADCOUNT_QUERY),
]


def site_view(query: str, compiled: bool = True, n: int = 20):
    storage = StorageManager()
    xmark.register_site(storage, n, seed=1)
    view = MaterializedXQueryView(storage, query, compiled=compiled)
    view.materialize()
    return storage, view


# -- batch / accessor primitives ---------------------------------------------------------


class TestTupleBatch:

    def _table(self) -> XatTable:
        table = XatTable(TableSchema(("a", "b")))
        table.append(XatTuple({"a": 1, "b": 2}))
        table.append(XatTuple({"a": 3}, count=-2, refresh=True))
        table.append(XatTuple({"b": 4}, count=5, touched=True, era="old"))
        return table

    def test_roundtrip_preserves_rows(self):
        table = self._table()
        batch = TupleBatch.from_table(table)
        assert len(batch) == 3
        back = batch.to_table()
        for want, got in zip(table.tuples, back.tuples):
            assert got.cells == want.cells
            assert got.count == want.count
            assert got.refresh == want.refresh
            assert got.touched == want.touched
            assert got.era == want.era

    def test_columns_are_parallel_arrays(self):
        batch = TupleBatch.from_table(self._table())
        assert batch.columns["a"] == [1, 3, None]
        assert batch.columns["b"] == [2, None, 4]
        assert batch.counts == [1, -2, 5]

    def test_row_materializes_one_boundary_tuple(self):
        batch = TupleBatch.from_table(self._table())
        row = batch.row(1)
        assert row.cells == {"a": 3}
        assert row.count == -2 and row.refresh


class TestCompositeAccessor:
    """The zero-copy join-output mapping must match ``XatTuple.merged``
    (the interpreter's dict-merge semantics) exactly."""

    def _accessor(self):
        left = TableSchema(("a", "b"))
        right = TableSchema(("b", "c"))
        out = TableSchema(("a", "b", "c"))
        return CompositeAccessor(left, right, out)

    def test_overlapping_column_resolves_right(self):
        acc = self._accessor()
        assert acc.side_of == {"a": 0, "b": 1, "c": 1}
        lt = XatTuple({"a": 1, "b": 2})
        rt = XatTuple({"b": 20, "c": 30})
        assert acc.cell("b", lt, rt) == 20
        assert acc.cell("a", lt, rt) == 1
        assert acc.cell("missing", lt, rt) is None

    def test_emit_matches_merged(self):
        acc = self._accessor()
        lt = XatTuple({"a": 1, "b": 2}, count=2, era="old")
        rt = XatTuple({"b": 20, "c": 30}, count=-3, refresh=True)
        want = lt.merged(rt)
        got = acc.emit(lt, rt)
        assert got.cells == want.cells
        assert got.count == want.count == -6
        assert got.refresh == want.refresh
        assert got.era == want.era == "old"


class TestMergeSignedCounts:

    def test_retract_assert_nets_order_free(self):
        entries = [("x", -1), ("y", 2), ("x", 1), ("y", -1)]
        assert merge_signed_counts(entries) == {"y": 1}
        assert merge_signed_counts(reversed(entries)) == {"y": 1}

    def test_zero_nets_drop_out(self):
        assert merge_signed_counts([("x", 3), ("x", -3)]) == {}
        assert merge_signed_counts([]) == {}

    def test_signed_multiplicities_accumulate(self):
        got = merge_signed_counts([("x", 2), ("x", 3), ("z", -4)])
        assert got == {"x": 5, "z": -4}


# -- lowering / plan cache ---------------------------------------------------------------


class TestLowering:

    def test_plans_are_linear_and_dependency_ordered(self):
        _storage, view = site_view(xmark.PERSONS_BY_CITY_QUERY)
        view.apply_updates([UpdateRequest.modify(
            "site.xml",
            _storage.find_by_path("site.xml", CITY_PATH)[0], "Tampere")])
        cache = view._pipeline.vm.cache
        plans = cache.plans_for(view._pipeline.plan)
        assert [p.mode for p in plans] == [FULL, DELTA]
        for plan in plans:
            assert plan.nregs == len(plan.instructions)
            for index, instr in enumerate(plan.instructions):
                assert instr.dest == index
                assert all(src < instr.dest for src in instr.srcs)
        view.close()

    def test_map_rhs_is_not_scheduled_standalone(self):
        """A Map's correlated RHS evaluates per binding inside the
        operator; the lowered plan must not list its subtree."""
        from repro.xat.construction import Map
        from repro.xat.navigation import Source

        left, right = Source("bib.xml", "d"), Source("prices.xml", "p")
        correlated = Map(left, right).prepare()
        compiled = lower(correlated, FULL)
        scheduled = {id(instr.xop) for instr in compiled.instructions}
        assert scheduled == {id(left), id(correlated)}
        assert id(right) not in scheduled

    def test_shared_prefix_across_views(self):
        """Structurally-equal subplans of different views compile against
        the same prepared metadata (signature-keyed hits)."""
        storage = StorageManager()
        xmark.register_site(storage, 10, seed=1)
        registry = ViewRegistry(storage)
        registry.register("one", xmark.SELECTION_QUERY)
        misses_after_one = registry.plan_cache.misses
        registry.register("two", xmark.SELECTION_QUERY)
        stats = registry.plan_cache.stats()
        assert stats["hits"] > 0
        # The twin's whole structure was already prepared.
        assert stats["misses"] == misses_after_one
        two = registry.view("two").pipeline.plan
        shared = [p.shared_prefix_instructions
                  for p in registry.plan_cache.plans_for(two)]
        assert shared and all(n > 0 for n in shared)
        registry.close()

    def test_invalidate_drops_plans_keeps_prepared(self):
        _storage, view = site_view(xmark.SELECTION_QUERY)
        cache = view._pipeline.vm.cache
        root = view._pipeline.plan
        assert cache.plans_for(root)
        prepared = dict(cache._prepared)
        cache.invalidate(root)
        assert not cache.plans_for(root)
        assert cache._prepared == prepared
        view.close()


# -- VM behaviour ------------------------------------------------------------------------


class TestVmExecution:

    def test_compiled_matches_interpreter_after_updates(self):
        storage_c, compiled = site_view(xmark.JOIN_QUERY, compiled=True)
        storage_i, interp = site_view(xmark.JOIN_QUERY, compiled=False)
        assert compiled.compiled and not interp.compiled
        assert compiled.to_xml() == interp.to_xml()
        for storage, view in ((storage_c, compiled), (storage_i, interp)):
            city = storage.find_by_path("site.xml", CITY_PATH)[2]
            view.apply_updates(
                [UpdateRequest.modify("site.xml", city, "Tampere")])
            assert_consistent(view)
        assert compiled.to_xml() == interp.to_xml()
        compiled.close()
        interp.close()

    def test_foreign_document_delta_short_circuits(self):
        """A subplan sourcing only prices.xml contributes an empty delta
        to a bib.xml batch without executing — the compile-time
        source-document check."""
        storage = StorageManager()
        bibload.register_running_example(storage)
        view = MaterializedXQueryView(storage, bibload.YEAR_GROUP_QUERY)
        view.materialize()
        view.apply_updates([UpdateRequest.insert(
            "bib.xml", books_of(storage)[-1],
            bibload.NEW_BOOK_FRAGMENT, "after")])
        assert_consistent(view)
        cache = view._pipeline.vm.cache
        (delta_plan,) = [p for p in cache.plans_for(view._pipeline.plan)
                         if p.mode == DELTA]
        skipped = [i for i in delta_plan.instructions
                   if i.shortcircuits > 0]
        assert skipped, "no instruction short-circuited"
        assert any(i.prepared.source_documents == frozenset({"prices.xml"})
                   for i in skipped)
        view.close()

    def test_vm_counters_feed_metrics(self):
        with Database() as db:
            db.load("site.xml", xmark.generate_site(10, seed=1))
            db.create_view("by-city", xmark.PERSONS_BY_CITY_QUERY)
            db.execute('for $p in document("site.xml")'
                       '/site/people/person[1] update $p '
                       'replace $p/address/city with "Tampere"')
            text = db.render_prometheus()
            for family in ("repro_plan_compile_seconds",
                           "repro_plan_cache_hits",
                           "repro_plan_cache_misses",
                           "repro_vm_instructions_executed",
                           "repro_vm_kernel_runs"):
                assert family in text, f"{family} missing"
            stats = db.registry.plan_cache.stats()
            assert stats["compiles"] >= 2      # FULL + DELTA
            assert stats["instructions_executed"] > 0
            assert stats["kernel_runs"] > 0

    def test_explain_lists_compiled_plans(self):
        with Database() as db:
            db.load("site.xml", xmark.generate_site(10, seed=1))
            db.create_view("by-city", xmark.PERSONS_BY_CITY_QUERY)
            db.execute('for $p in document("site.xml")'
                       '/site/people/person[1] update $p '
                       'replace $p/address/city with "Tampere"')
            text = db.explain("by-city")
            assert "compiled plan [full]" in text
            assert "compiled plan [delta]" in text
            assert "kernel=" in text


# -- operator-state stale-window regression ----------------------------------------------


class TestStaleWindowGuard:
    """A second mutation on an already-stale subtree is ambiguous (one
    batch or two?) — the entry must invalidate, not stack a stale record
    a later patch would silently half-apply."""

    def _warm_entry(self):
        storage, view = site_view(xmark.PERSONS_BY_CITY_QUERY)
        cities = storage.find_by_path("site.xml", CITY_PATH)
        view.apply_updates([UpdateRequest.modify(
            "site.xml", cities[0], "Tampere")])
        tags = storage.tag_path(cities[0])
        entries = [e for e in view.state_store.entries()
                   if e.valid and e.sapt.relevant_for_tags("site.xml",
                                                           tags)]
        assert entries, "no warm entry over the city subtree"
        return storage, view, entries[0], cities

    def test_distinct_subtrees_stack_same_subtree_invalidates(self):
        storage, view, entry, cities = self._warm_entry()
        tags = storage.tag_path(cities[0])
        entry.on_mutation(MODIFY, cities[0], tags, "site.xml")
        assert entry.valid and len(entry.stale) == 1
        entry.on_mutation(MODIFY, cities[1],
                          storage.tag_path(cities[1]), "site.xml")
        assert entry.valid and len(entry.stale) == 2
        entry.on_mutation(MODIFY, cities[0], tags, "site.xml")
        assert not entry.valid
        view.close()

    def test_ancestor_of_stale_key_invalidates(self):
        storage, view, entry, cities = self._warm_entry()
        address = storage.find_by_path(
            "site.xml", CITY_PATH[:-1])[0]
        assert address.is_ancestor_of(cities[0])
        entry.on_mutation(MODIFY, cities[0],
                          storage.tag_path(cities[0]), "site.xml")
        assert entry.valid
        entry.on_mutation(MODIFY, address,
                          storage.tag_path(address), "site.xml")
        assert not entry.valid
        view.close()


# -- the compiled-vs-interpreted differential --------------------------------------------


class TestDifferential:
    """Randomized mixed streams, every mutator kind, both execution
    modes over identical storages: byte-identical extents throughout
    (plus the recompute oracle after every batch)."""

    @pytest.mark.parametrize("name,query", XMARK_VIEWS)
    def test_xmark_views(self, name, query):
        run_differential(7, 8, ALL_MUTATORS, query,
                         num_persons=20, site_seed=1,
                         twin={"compiled": False})

    def test_bib_running_example(self):
        def build(compiled: bool):
            storage = StorageManager()
            bibload.register_running_example(storage)
            view = MaterializedXQueryView(
                storage, bibload.YEAR_GROUP_QUERY, compiled=compiled)
            view.materialize()
            return storage, view

        def scripted(storage):
            books = books_of(storage)
            titles = storage.find_by_path(
                "bib.xml", [("child", "bib"), ("child", "book"),
                            ("child", "title")])
            entries = storage.find_by_path(
                "prices.xml", [("child", "prices"), ("child", "entry")])
            return [
                [UpdateRequest.insert("bib.xml", books[-1],
                                      bibload.NEW_BOOK_FRAGMENT, "after")],
                [UpdateRequest.modify("bib.xml", titles[0],
                                      "Data on the Web")],
                [UpdateRequest.insert(
                    "prices.xml", entries[-1],
                    "<entry><price>9.99</price>"
                    "<b-title>Data on the Web</b-title></entry>",
                    "after")],
                [UpdateRequest.delete("bib.xml", books[0])],
            ]

        pair = [build(True), build(False)]
        for batches in zip(*(scripted(storage) for storage, _v in pair)):
            for (_storage, view), batch in zip(pair, batches):
                view.apply_updates(batch)
                assert_consistent(view)
            assert pair[0][1].to_xml() == pair[1][1].to_xml()
        for _storage, view in pair:
            view.close()
