"""Engine-level behaviour, workload generators, profiler, misc coverage."""

import pytest

from repro import (Engine, MaterializedXQueryView, Profiler, StorageManager,
                   XmlDocument, translate_query)
from repro.workloads import bib as bibload
from repro.workloads import xmark
from repro.xquery.updates import apply_xquery_update, parse_update


class TestEngine:
    def _storage(self):
        sm = StorageManager()
        sm.register(XmlDocument.from_string("bib.xml", bibload.BIB_XML))
        sm.register(XmlDocument.from_string("prices.xml",
                                            bibload.PRICES_XML))
        return sm

    def test_unprepared_plan_rejected(self):
        from repro.xat import Source

        with pytest.raises(RuntimeError):
            Engine(self._storage()).run(Source("bib.xml", "$S"))

    def test_query_tree(self):
        sm = self._storage()
        tree = Engine(sm).query_tree(translate_query(
            '<r>{for $b in doc("bib.xml")/bib/book return $b/title}</r>'))
        assert tree.tag == "r" and len(tree.children) == 2

    def test_empty_query_result_serializes_empty(self):
        sm = self._storage()
        out = Engine(sm).query(translate_query(
            '<r>{for $b in doc("bib.xml")/bib/nothing return $b}</r>'))
        assert out == "<r/>"

    def test_profiler_collects_labels(self):
        sm = self._storage()
        profiler = Profiler(enabled=True)
        Engine(sm).query(translate_query(bibload.YEAR_GROUP_QUERY),
                         profiler=profiler)
        assert "semantic_id" in profiler.totals
        assert "final_sort" in profiler.totals

    def test_disabled_profiler_stays_empty(self):
        sm = self._storage()
        profiler = Profiler(enabled=False)
        Engine(sm).query(translate_query(bibload.YEAR_GROUP_QUERY),
                         profiler=profiler)
        assert profiler.totals == {}


class TestWorkloadGenerators:
    def test_generate_bib_deterministic(self):
        assert bibload.generate_bib(20) == bibload.generate_bib(20)

    def test_generate_bib_scales(self):
        small = bibload.generate_bib(5)
        large = bibload.generate_bib(50)
        assert large.count("<book") == 50 > small.count("<book")

    def test_generate_prices_fraction(self):
        none = bibload.generate_prices(30, priced_fraction=0.0)
        full = bibload.generate_prices(30, priced_fraction=1.0)
        assert none.count("<entry>") == 0
        assert full.count("<entry>") == 30

    def test_site_structure(self):
        sm = StorageManager()
        xmark.register_site(sm, 15)
        root = sm.root_key("site.xml")
        people = sm.children(root, "people")
        assert len(people) == 1
        assert len(sm.children(people[0], "person")) == 15
        assert sm.children(root, "closed_auctions")
        assert sm.children(root, "open_auctions")

    def test_site_deterministic(self):
        assert xmark.generate_site(10) == xmark.generate_site(10)
        assert xmark.generate_site(10, seed=1) != xmark.generate_site(
            10, seed=2)

    def test_site_parses_and_queries(self):
        sm = StorageManager()
        xmark.register_site(sm, 10)
        out = Engine(sm).query(translate_query(xmark.ORDER_QUERY_2))
        assert out.startswith("<result>")


class TestUpdateLanguageEdges:
    def _storage(self):
        sm = StorageManager()
        sm.register(XmlDocument.from_string("bib.xml", bibload.BIB_XML))
        return sm

    def test_where_filters_to_nothing(self):
        sm = self._storage()
        requests = apply_xquery_update(
            'for $b in document("bib.xml")/bib/book '
            'where $b/title = "No Such Book" update $b delete $b', sm)
        assert requests == []

    def test_positional_out_of_range(self):
        sm = self._storage()
        requests = apply_xquery_update(
            'for $b in document("bib.xml")/bib/book[9] '
            'update $b delete $b', sm)
        assert requests == []

    def test_insert_into(self):
        sm = self._storage()
        requests = apply_xquery_update(
            'for $b in document("bib.xml")/bib/book[1] update $b '
            'insert <note>hi</note> into $b', sm)
        assert requests[0].position == "into"

    def test_numeric_where(self):
        sm = self._storage()
        requests = apply_xquery_update(
            'for $b in document("bib.xml")/bib/book '
            'where $b/@year > 1995 update $b delete $b', sm)
        assert len(requests) == 1

    def test_replace_whole_element_text(self):
        sm = self._storage()
        requests = apply_xquery_update(
            'for $b in document("bib.xml")/bib/book[1] update $b '
            'replace $b/title with "Renamed"', sm)
        assert requests[0].kind == "modify"

    def test_mismatched_update_variable(self):
        from repro.xquery.parser import XQueryParseError

        with pytest.raises(XQueryParseError):
            parse_update('for $a in document("d")/x update $b delete $b')

    def test_delete_by_relative_path(self):
        sm = self._storage()
        requests = apply_xquery_update(
            'for $b in document("bib.xml")/bib/book[1] update $b '
            'delete $b/author', sm)
        assert len(requests) == 1
        assert sm.node(requests[0].target).tag == "author"


class TestViewMisc:
    def test_view_accepts_prepared_plan(self):
        sm = StorageManager()
        sm.register(XmlDocument.from_string("bib.xml", bibload.BIB_XML))
        sm.register(XmlDocument.from_string("prices.xml",
                                            bibload.PRICES_XML))
        plan = translate_query(bibload.YEAR_GROUP_QUERY)
        view = MaterializedXQueryView(sm, plan)
        assert view.materialize() == view.recompute_xml()

    def test_extent_size(self):
        sm = StorageManager()
        sm.register(XmlDocument.from_string("bib.xml", bibload.BIB_XML))
        sm.register(XmlDocument.from_string("prices.xml",
                                            bibload.PRICES_XML))
        view = MaterializedXQueryView(sm, bibload.YEAR_GROUP_QUERY)
        assert view.extent_size() == 0
        view.materialize()
        assert view.extent_size() > 10

    def test_empty_update_list(self):
        sm = StorageManager()
        sm.register(XmlDocument.from_string("bib.xml", bibload.BIB_XML))
        sm.register(XmlDocument.from_string("prices.xml",
                                            bibload.PRICES_XML))
        view = MaterializedXQueryView(sm, bibload.YEAR_GROUP_QUERY)
        view.materialize()
        report = view.apply_updates([])
        assert report.batches == 0 and report.accepted == 0
