"""Tests for Context Schema rules (Table 4.1) and semantic identifiers
(Chapter 4) — checked against the Fig 4.2 annotations."""

from repro import StorageManager, XmlDocument
from repro.engine import Engine
from repro.xat import (ColumnRef, Combine, Comparison, Distinct, GroupBy,
                       LeftOuterJoin, NavigateCollection, NavigateUnnest,
                       OrderBy, Path, Pattern, Source, Tagger, XmlUnion,
                       items_of, single_item)
from repro.xat.base import ExecutionContext
from repro.xat.semantic_ids import (constructed_id, lineage_tokens,
                                    order_tokens)

BIB = ("<bib><book year='1994'><title>T1</title></book>"
       "<book year='2000'><title>T2</title></book></bib>")
PRICES = ("<prices><entry><price>39</price><b-title>T2</b-title></entry>"
          "<entry><price>65</price><b-title>T1</b-title></entry></prices>")


def storage():
    sm = StorageManager()
    sm.register(XmlDocument.from_string("bib.xml", BIB))
    sm.register(XmlDocument.from_string("prices.xml", PRICES))
    return sm


def fig42_plan():
    """The running example plan, built by hand like Fig 4.2."""
    s1 = Source("bib.xml", "$S1")
    y = NavigateUnnest(s1, "$S1", Path.parse("bib/book/@year"), "$y")
    dy = Distinct(y, "$y")
    s2 = Source("bib.xml", "$S2")
    b = NavigateUnnest(s2, "$S2", Path.parse("bib/book"), "$b")
    col1 = NavigateUnnest(b, "$b", Path.parse("@year"), "$col1")
    loj = LeftOuterJoin(dy, col1, Comparison(ColumnRef("$y"), "=",
                                             ColumnRef("$col1")))
    col2 = NavigateCollection(loj, "$b", Path.parse("title"), "$col2")
    return col2


class TestTable41Rules:
    def test_source_self_context(self):
        op = Source("bib.xml", "$S").prepare()
        spec = op.schema.spec("$S")
        assert spec.order == () and spec.lineage == ()

    def test_unnest_self_lineage(self):
        plan = fig42_plan().prepare()
        # $b: self lineage, order from itself
        b_spec = plan.schema.spec("$b")
        assert b_spec.lineage == ()

    def test_value_unnest_lineage_follows_entry(self):
        plan = fig42_plan().prepare()
        col1 = plan.schema.spec("$col1")
        assert col1.lineage == (("$b", None),)

    def test_collection_lineage_follows_entry(self):
        plan = fig42_plan().prepare()
        col2 = plan.schema.spec("$col2")
        assert col2.lineage == (("$b", None),)

    def test_distinct_destroys_order(self):
        y = NavigateUnnest(Source("bib.xml", "$S1"), "$S1",
                           Path.parse("bib/book/@year"), "$y")
        op = Distinct(y, "$y").prepare()
        spec = op.schema.spec("$y")
        assert spec.order is None and spec.lineage == ()

    def test_combine_all_lineage(self):
        b = NavigateUnnest(Source("bib.xml", "$S"), "$S",
                           Path.parse("bib/book"), "$b")
        op = Combine(b, "$b").prepare()
        assert op.schema.spec("$b").is_all_lineage

    def test_union_lineage_with_column_ids(self):
        b = NavigateUnnest(Source("bib.xml", "$S"), "$S",
                           Path.parse("bib/book"), "$b")
        t = NavigateCollection(b, "$b", Path.parse("title"), "$t")
        t2 = NavigateCollection(t, "$b", Path.parse("title"), "$t2")
        op = XmlUnion(t2, "$t", "$t2", "$u").prepare()
        assert op.schema.spec("$u").lineage == (("$t", "a"), ("$t2", "b"))

    def test_groupby_lineage_composition(self):
        y = NavigateUnnest(
            NavigateUnnest(Source("bib.xml", "$S"), "$S",
                           Path.parse("bib/book"), "$b"),
            "$b", Path.parse("@year"), "$y")
        op = GroupBy(y, ("$y",), combine_col="$b").prepare()
        assert op.schema.spec("$b").lineage == (("$y", None),)
        assert op.schema.spec("$y").lineage == ()

    def test_ecc_columns(self):
        plan = fig42_plan().prepare()
        # self-lineage columns identify tuples (Theorem 4.3.1)
        assert "$b" in plan.schema.ecc
        assert "$col1" not in plan.schema.ecc


class TestSemanticIds:
    def test_constructed_id_suffix(self):
        assert constructed_id(["1994"]).value == "1994c"
        assert constructed_id(["b.b", "e.f"]).value == "b.b..e.fc"
        assert constructed_id([]).value == "*c"

    def test_value_based_ids_reproducible(self):
        """Fig 4.2: yGroup gets id <year>c regardless of which run built it."""
        sm = storage()
        y = NavigateUnnest(Source("bib.xml", "$S1"), "$S1",
                           Path.parse("bib/book/@year"), "$y")
        dy = Distinct(y, "$y")
        tag = Tagger(dy, Pattern("yGroup", (("Y", ColumnRef("$y")),),
                                 ("$y",)), "$g").prepare()
        table = ExecutionContext(sm).evaluate(tag)
        ids = sorted(single_item(t["$g"]).key.value for t in table)
        assert ids == ["1994c", "2000c"]

    def test_node_based_ids_encode_join_lineage(self):
        """Fig 4.2: entry ids compose the book and entry FlexKeys."""
        sm = storage()
        b = NavigateUnnest(Source("bib.xml", "$S2"), "$S2",
                           Path.parse("bib/book"), "$b")
        bt = NavigateCollection(b, "$b", Path.parse("title"), "$t")
        e = NavigateUnnest(Source("prices.xml", "$S3"), "$S3",
                           Path.parse("prices/entry"), "$e")
        et = NavigateCollection(e, "$e", Path.parse("b-title"), "$bt")
        from repro.xat import Join
        join = Join(bt, et, Comparison(ColumnRef("$t"), "=",
                                       ColumnRef("$bt")))
        price = NavigateCollection(join, "$e", Path.parse("price"), "$p")
        union = XmlUnion(price, "$t", "$p", "$u")
        tag = Tagger(union, Pattern("entry", (), ("$u",)), "$x").prepare()
        table = ExecutionContext(sm).evaluate(tag)
        ids = sorted(single_item(t["$x"]).key.value for t in table)
        # book keys b.b/b.d joined with entry keys (prices doc root 'd')
        assert all(".." in i and i.endswith("c") for i in ids)
        assert len(set(ids)) == 2

    def test_stacked_constructor_keeps_body(self):
        """books over a group and yGroup over books share the id body."""
        sm = storage()
        y = NavigateUnnest(
            NavigateUnnest(Source("bib.xml", "$S"), "$S",
                           Path.parse("bib/book"), "$b"),
            "$b", Path.parse("@year"), "$y")
        grouped = GroupBy(y, ("$y",), combine_col="$b")
        books = Tagger(grouped, Pattern("books", (), ("$b",)), "$k")
        ygroup = Tagger(books, Pattern("yGroup", (), ("$k",)), "$g")
        ygroup.prepare()
        table = ExecutionContext(sm).evaluate(ygroup)
        for tup in table:
            inner = single_item(tup["$k"]).key.value
            outer = single_item(tup["$g"]).key.value
            assert inner == outer  # same body, locally unique by tag

    def test_lineage_tokens_all(self):
        sm = storage()
        b = NavigateUnnest(Source("bib.xml", "$S"), "$S",
                           Path.parse("bib/book"), "$b")
        combined = Combine(b, "$b").prepare()
        table = ExecutionContext(sm).evaluate(combined)
        assert lineage_tokens(combined.schema, table.tuples[0], "$b") == ["*"]

    def test_order_tokens_after_orderby(self):
        sm = storage()
        y = NavigateUnnest(Source("bib.xml", "$S"), "$S",
                           Path.parse("bib/book/@year"), "$y")
        ordered = OrderBy(Distinct(y, "$y"), ("$y",)).prepare()
        # Sort columns themselves carry order () — derived from the item
        # (Fig 4.2, operator 17); the item's order token is the sortable
        # zero-padded value.
        assert ordered.schema.spec("$y").order == ()
        table = ExecutionContext(sm).evaluate(ordered)
        assert order_tokens(ordered.schema, table.tuples[0], "$y") == []
        tokens = [single_item(t["$y"]).order_token() for t in table]
        assert tokens == sorted(tokens)
