"""Unit tests for individual XAT operators (Section 2.2.2)."""

import pytest

from repro.engine import Engine
from repro.storage import StorageManager
from repro.xat import (Aggregate, And, CartesianProduct, ColumnRef, Combine,
                       Comparison, Distinct, Expose, GroupBy, Join,
                       LeftOuterJoin, Literal, Map, Merge,
                       NavigateCollection, NavigateUnnest, OrderBy, Path,
                       Pattern, PlanError, Rename, Select, Source, Tagger,
                       VariableBinding, XmlUnion, XmlUnique,
                       AtomicItem, NodeItem, items_of, single_item)
from repro.xat.base import ExecutionContext
from repro.xat.grouping import TupleFunction
from repro.xmlmodel import XmlDocument


@pytest.fixture
def storage():
    sm = StorageManager()
    sm.register(XmlDocument.from_string("bib.xml", (
        "<bib>"
        "<book year='1994'><title>Alpha</title><price>10</price></book>"
        "<book year='2000'><title>Beta</title><price>20</price></book>"
        "<book year='1994'><title>Gamma</title><price>30</price></book>"
        "</bib>")))
    sm.register(XmlDocument.from_string("tags.xml", (
        "<tags><tag name='Alpha'/><tag name='Beta'/>"
        "<tag name='Delta'/></tags>")))
    return sm


def run(storage, plan):
    plan.prepare()
    ctx = ExecutionContext(storage)
    return ctx.evaluate(plan)


def books(storage):
    return NavigateUnnest(Source("bib.xml", "$S"), "$S",
                          Path.parse("bib/book"), "$b")


class TestSourceAndNavigation:
    def test_source_single_tuple(self, storage):
        table = run(storage, Source("bib.xml", "$S"))
        assert len(table) == 1
        item = single_item(table.tuples[0]["$S"])
        assert item.key == storage.root_key("bib.xml")

    def test_unnest_creates_tuple_per_node(self, storage):
        table = run(storage, books(storage))
        assert len(table) == 3
        assert table.schema.order_schema == ("$b",)

    def test_unnest_to_attribute_values(self, storage):
        plan = NavigateUnnest(books(storage), "$b", Path.parse("@year"), "$y")
        table = run(storage, plan)
        values = [single_item(t["$y"]).value for t in table]
        assert values == ["1994", "2000", "1994"]

    def test_unnest_to_text(self, storage):
        plan = NavigateUnnest(books(storage), "$b",
                              Path.parse("title/text()"), "$t")
        values = [single_item(t["$t"]).value for t in run(storage, plan)]
        assert values == ["Alpha", "Beta", "Gamma"]

    def test_unnest_descendant_axis(self, storage):
        plan = NavigateUnnest(Source("bib.xml", "$S"), "$S",
                              Path.parse("bib//title"), "$t")
        assert len(run(storage, plan)) == 3

    def test_collection_keeps_tuples(self, storage):
        plan = NavigateCollection(books(storage), "$b",
                                  Path.parse("title"), "$t")
        table = run(storage, plan)
        assert len(table) == 3
        assert all(len(items_of(t["$t"])) == 1 for t in table)

    def test_collection_missing_yields_empty(self, storage):
        plan = NavigateCollection(books(storage), "$b",
                                  Path.parse("nope"), "$n")
        table = run(storage, plan)
        assert all(items_of(t["$n"]) == [] for t in table)

    def test_keep_empty_unnest(self, storage):
        plan = NavigateUnnest(books(storage), "$b", Path.parse("nope"),
                              "$n", keep_empty=True)
        table = run(storage, plan)
        assert len(table) == 3
        assert all(t["$n"] is None for t in table)


class TestSelectJoin:
    def test_select_by_value(self, storage):
        plan = Select(NavigateUnnest(books(storage), "$b",
                                     Path.parse("@year"), "$y"),
                      Comparison(ColumnRef("$y"), "=", Literal("1994")))
        assert len(run(storage, plan)) == 2

    def test_select_numeric_coercion(self, storage):
        probe = NavigateCollection(books(storage), "$b",
                                   Path.parse("price"), "$p")
        plan = Select(probe, Comparison(ColumnRef("$p"), ">", Literal("15")))
        assert len(run(storage, plan)) == 2

    def test_and_condition(self, storage):
        probe = NavigateCollection(
            NavigateUnnest(books(storage), "$b", Path.parse("@year"), "$y"),
            "$b", Path.parse("price"), "$p")
        plan = Select(probe, And((
            Comparison(ColumnRef("$y"), "=", Literal("1994")),
            Comparison(ColumnRef("$p"), "<", Literal("20")))))
        assert len(run(storage, plan)) == 1

    def _tags(self):
        return NavigateUnnest(Source("tags.xml", "$S2"), "$S2",
                              Path.parse("tags/tag"), "$g")

    def test_hash_join(self, storage):
        left = NavigateCollection(books(storage), "$b",
                                  Path.parse("title"), "$t")
        right = NavigateUnnest(self._tags(), "$g", Path.parse("@name"), "$n")
        plan = Join(left, right,
                    Comparison(ColumnRef("$t"), "=", ColumnRef("$n")))
        table = run(storage, plan)
        assert len(table) == 2  # Alpha, Beta match
        # join order schema = left OS + right OS
        assert table.schema.order_schema == ("$b", "$g")

    def test_theta_join_nested_loop(self, storage):
        left = NavigateCollection(books(storage), "$b",
                                  Path.parse("price"), "$p")
        right = self._tags()
        plan = Join(left, right,
                    Comparison(ColumnRef("$p"), ">", Literal("5")))
        # non-equi condition referencing one column -> nested loop, all pass
        assert len(run(storage, plan)) == 9

    def test_cartesian(self, storage):
        plan = CartesianProduct(books(storage), self._tags())
        assert len(run(storage, plan)) == 9

    def test_join_rejects_column_overlap(self, storage):
        with pytest.raises(PlanError):
            run(storage, Join(books(storage), books(storage),
                              Comparison(ColumnRef("$b"), "=",
                                         ColumnRef("$b"))))

    def test_loj_pads_dangling(self, storage):
        left = NavigateCollection(books(storage), "$b",
                                  Path.parse("title"), "$t")
        right = NavigateUnnest(self._tags(), "$g", Path.parse("@name"), "$n")
        plan = LeftOuterJoin(left, right,
                             Comparison(ColumnRef("$t"), "=",
                                        ColumnRef("$n")))
        table = run(storage, plan)
        assert len(table) == 3
        padded = [t for t in table if t["$g"] is None]
        assert len(padded) == 1  # Gamma has no tag


class TestDistinctGroupOrder:
    def test_distinct_counts_duplicates(self, storage):
        plan = Distinct(NavigateUnnest(books(storage), "$b",
                                       Path.parse("@year"), "$y"), "$y")
        table = run(storage, plan)
        counts = {single_item(t["$y"]).value: t.count for t in table}
        assert counts == {"1994": 2, "2000": 1}
        assert table.schema.order_schema == ()

    def test_groupby_combine(self, storage):
        years = NavigateUnnest(books(storage), "$b",
                               Path.parse("@year"), "$y")
        plan = GroupBy(years, ("$y",), combine_col="$b")
        table = run(storage, plan)
        sizes = {single_item(t["$y"]).value: len(items_of(t["$b"]))
                 for t in table}
        assert sizes == {"1994": 2, "2000": 1}

    def test_groupby_aggregate(self, storage):
        years = NavigateUnnest(
            NavigateUnnest(books(storage), "$b", Path.parse("@year"), "$y"),
            "$b", Path.parse("price/text()"), "$p")
        plan = GroupBy(years, ("$y",), agg=("sum", "$p", "$total"))
        table = run(storage, plan)
        totals = {single_item(t["$y"]).value:
                  single_item(t["$total"]).value for t in table}
        assert totals == {"1994": "40", "2000": "20"}

    def test_groupby_requires_exactly_one_func(self, storage):
        with pytest.raises(ValueError):
            GroupBy(books(storage), ("$b",))
        with pytest.raises(ValueError):
            GroupBy(books(storage), ("$b",), combine_col="$x",
                    agg=("sum", "$x", "$y"))

    def test_orderby_sorts_and_sets_order_schema(self, storage):
        years = NavigateUnnest(books(storage), "$b",
                               Path.parse("title/text()"), "$t")
        plan = OrderBy(years, ("$t",))
        table = run(storage, plan)
        values = [single_item(t["$t"]).value for t in table]
        assert values == sorted(values)
        assert table.schema.order_schema == ("$t",)

    def test_orderby_numeric(self, storage):
        prices = NavigateUnnest(books(storage), "$b",
                                Path.parse("price/text()"), "$p")
        table = run(storage, OrderBy(prices, ("$p",)))
        values = [float(single_item(t["$p"]).value) for t in table]
        assert values == sorted(values)

    def test_combine_single_tuple(self, storage):
        plan = Combine(books(storage), "$b")
        table = run(storage, plan)
        assert len(table) == 1
        assert len(items_of(table.tuples[0]["$b"])) == 3

    def test_combine_assigns_overriding_orders(self, storage):
        # after a join, combined items carry composed overriding orders
        years = NavigateUnnest(books(storage), "$b",
                               Path.parse("@year"), "$y")
        plan = Combine(years, "$y")
        table = run(storage, plan)
        items = items_of(table.tuples[0]["$y"])
        tokens = [i.order_token() for i in items]
        assert tokens == sorted(tokens)  # document order preserved


class TestConstruction:
    def test_tagger_semantic_id_from_value_lineage(self, storage):
        years = Distinct(NavigateUnnest(books(storage), "$b",
                                        Path.parse("@year"), "$y"), "$y")
        plan = Tagger(years, Pattern("g", (("Y", ColumnRef("$y")),),
                                     ("$y",)), "$out")
        table = run(storage, plan)
        ids = [single_item(t["$out"]).key.value for t in table]
        assert ids == ["1994c", "2000c"]

    def test_tagger_id_from_node_lineage(self, storage):
        plan = Tagger(books(storage), Pattern("wrap", (), ("$b",)), "$w")
        table = run(storage, plan)
        first = single_item(table.tuples[0]["$w"])
        assert first.key.value.endswith("c")
        assert first.is_constructed
        assert first.skeleton.tag == "wrap"

    def test_tagger_skips_null_content(self, storage):
        nav = NavigateUnnest(books(storage), "$b", Path.parse("nope"),
                             "$n", keep_empty=True)
        plan = Tagger(nav, Pattern("wrap", (), ("$n",)), "$w")
        table = run(storage, plan)
        assert all(t["$w"] is None for t in table)

    def test_tagger_literal_content(self, storage):
        plan = Tagger(books(storage),
                      Pattern("x", (), ("$b", ("literal", "fixed"))), "$w")
        item = single_item(run(storage, plan).tuples[0]["$w"])
        kinds = [c.kind for c in item.skeleton.content]
        assert kinds == ["ref", "value"]

    def test_xml_union_prefixes_reflect_side(self, storage):
        t = NavigateCollection(books(storage), "$b", Path.parse("title"),
                               "$t")
        p = NavigateCollection(t, "$b", Path.parse("price"), "$p")
        plan = XmlUnion(p, "$t", "$p", "$u")
        table = run(storage, plan)
        items = items_of(table.tuples[0]["$u"])
        assert len(items) == 2
        assert items[0].order_token() < items[1].order_token()
        assert items[0].order_token().startswith("a")
        assert items[1].order_token().startswith("b")

    def test_xml_unique(self, storage):
        t = NavigateCollection(books(storage), "$b", Path.parse("title"),
                               "$t")
        union = XmlUnion(NavigateCollection(t, "$b", Path.parse("title"),
                                            "$t2"), "$t", "$t2", "$u")
        plan = XmlUnique(union, "$u", "$uq")
        table = run(storage, plan)
        assert len(items_of(table.tuples[0]["$uq"])) == 1

    def test_merge(self, storage):
        left = Combine(books(storage), "$b")
        right = Combine(NavigateUnnest(Source("tags.xml", "$S2"), "$S2",
                                       Path.parse("tags/tag"), "$g"), "$g")
        table = run(storage, Merge(left, right))
        assert len(table) == 1
        assert len(items_of(table.tuples[0]["$b"])) == 3
        assert len(items_of(table.tuples[0]["$g"])) == 3

    def test_rename(self, storage):
        plan = Rename(books(storage), "$b", "$book")
        table = run(storage, plan)
        assert "$book" in table.columns and "$b" not in table.columns
        assert table.schema.order_schema == ("$book",)

    def test_map_nested_loop(self, storage):
        inner = Combine(
            NavigateUnnest(VariableBinding(("$b",)), "$b",
                           Path.parse("title"), "$t"), "$t")
        plan = Map(books(storage), inner)
        table = run(storage, plan)
        assert len(table) == 3
        assert all(len(items_of(t["$t"])) == 1 for t in table)

    def test_variable_binding_outside_map(self, storage):
        with pytest.raises(PlanError):
            run(storage, VariableBinding(("$b",)))


class TestAggregates:
    def test_whole_table_aggregates(self, storage):
        prices = NavigateUnnest(books(storage), "$b",
                                Path.parse("price/text()"), "$p")
        for kind, expected in [("count", "3"), ("sum", "60"),
                               ("avg", "20"), ("min", "10"), ("max", "30")]:
            plan = Aggregate(prices, kind, "$p", "$out")
            table = run(storage, plan)
            assert single_item(table.tuples[0]["$out"]).value == expected

    def test_tuple_function(self, storage):
        titles = NavigateCollection(books(storage), "$b",
                                    Path.parse("title"), "$t")
        plan = TupleFunction(titles, "count", "$t", "$n")
        table = run(storage, plan)
        assert [single_item(t["$n"]).value for t in table] == ["1"] * 3

    def test_unknown_aggregate_rejected(self, storage):
        with pytest.raises(ValueError):
            Aggregate(books(storage), "median", "$b", "$x").prepare()


class TestExpose:
    def test_expose_and_engine_query(self, storage):
        plan = Expose(Combine(Tagger(books(storage),
                                     Pattern("w", (), ("$b",)), "$w"),
                              "$w"), "$w").prepare()
        out = Engine(storage).query(plan)
        assert out.count("<w>") == 3
        assert "Alpha" in out
