"""Error-path coverage for the XQuery update-language parser/evaluator.

Every malformed ``for … update $v (…)`` body must fail with an
*actionable* message — one that names the expected token, the unknown
variable, or the invalid predicate, so callers of ``Database.execute``
see what to fix rather than a bare offset.
"""

import pytest

from repro import StorageManager, XmlDocument
from repro.workloads.bib import BIB_XML
from repro.xquery.parser import XQueryParseError
from repro.xquery.updates import (apply_xquery_update, parse_document_path,
                                  parse_update, resolve_path)


def bib_storage() -> StorageManager:
    storage = StorageManager()
    storage.register(XmlDocument.from_string("bib.xml", BIB_XML))
    return storage


def expect_parse_error(statement: str, fragment: str) -> None:
    with pytest.raises(XQueryParseError) as err:
        parse_update(statement)
    assert fragment in str(err.value), str(err.value)


class TestMalformedUpdateBodies:
    def test_missing_for(self):
        expect_parse_error('update $b delete $b', "expected 'for'")

    def test_missing_in(self):
        expect_parse_error('for $b update $b delete $b', "expected 'in'")

    def test_binding_must_be_document_path(self):
        expect_parse_error(
            'for $b in $c/bib/book update $b delete $b',
            "update binding must be a document path")

    def test_missing_update_keyword(self):
        expect_parse_error(
            'for $b in document("bib.xml")/bib/book delete $b',
            "expected 'update'")

    def test_missing_action(self):
        expect_parse_error(
            'for $b in document("bib.xml")/bib/book update $b rename $b',
            "expected insert/delete/replace")

    def test_insert_missing_position(self):
        expect_parse_error(
            'for $b in document("bib.xml")/bib/book update $b '
            'insert <x/> $b',
            "expected before/after/into")

    def test_insert_requires_xml_fragment(self):
        expect_parse_error(
            'for $b in document("bib.xml")/bib/book update $b '
            'insert 42 after $b',
            "expected an XML fragment")

    def test_insert_unterminated_fragment(self):
        expect_parse_error(
            'for $b in document("bib.xml")/bib/book update $b '
            'insert <broken><x/> after $b',
            "unterminated XML fragment")

    def test_replace_missing_with(self):
        expect_parse_error(
            'for $b in document("bib.xml")/bib/book update $b '
            'replace $b/title "x"',
            "expected 'with'")

    def test_where_missing_comparison(self):
        expect_parse_error(
            'for $b in document("bib.xml")/bib/book '
            'where $b/title update $b delete $b',
            "expected comparison in where")

    def test_trailing_input_rejected(self):
        expect_parse_error(
            'for $b in document("bib.xml")/bib/book update $b delete $b '
            'delete $b',
            "trailing input after update")


class TestUnknownVariables:
    def test_update_variable_mismatch_names_both(self):
        with pytest.raises(XQueryParseError) as err:
            parse_update('for $a in document("bib.xml")/bib/book '
                         'update $b delete $b')
        message = str(err.value)
        assert "$b" in message and "$a" in message

    def test_unknown_variable_in_target(self):
        expect_parse_error(
            'for $a in document("bib.xml")/bib/book update $a delete $c',
            "unknown variable $c")

    def test_unknown_variable_in_target_path(self):
        expect_parse_error(
            'for $a in document("bib.xml")/bib/book '
            'update $a delete $c/title',
            "unknown variable $c")


class TestBadPositionalPredicates:
    def test_zero_position_is_actionable(self):
        with pytest.raises(ValueError) as err:
            apply_xquery_update(
                'for $b in document("bib.xml")/bib/book[0] '
                'update $b delete $b', bib_storage())
        assert "positions start at 1" in str(err.value)

    def test_out_of_range_position_matches_nothing(self):
        requests = apply_xquery_update(
            'for $b in document("bib.xml")/bib/book[99] '
            'update $b delete $b', bib_storage())
        assert requests == []

    def test_unclosed_positional_predicate(self):
        expect_parse_error(
            'for $b in document("bib.xml")/bib/book[2 update $b delete $b',
            "expected ']'")

    def test_predicate_without_comparison(self):
        expect_parse_error(
            'for $b in document("bib.xml")/bib/book[title] '
            'update $b delete $b',
            "expected comparison operator in predicate")


class TestPathAddressing:
    """The builder's path grammar shares the parser; its errors must be
    actionable too."""

    def test_empty_path(self):
        with pytest.raises(XQueryParseError) as err:
            parse_document_path("bib.xml", "   ")
        assert "empty path" in str(err.value)

    def test_trailing_garbage_named(self):
        with pytest.raises(XQueryParseError) as err:
            parse_document_path("bib.xml", "/bib/book]2[")
        assert "trailing input after path" in str(err.value)

    def test_unclosed_predicate(self):
        with pytest.raises(XQueryParseError):
            parse_document_path("bib.xml", "/bib/book[2")

    def test_leading_slash_optional(self):
        storage = bib_storage()
        assert resolve_path(storage, "bib.xml", "bib/book") \
            == resolve_path(storage, "bib.xml", "/bib/book")

    def test_intermediate_positional_predicate_resolves(self):
        storage = bib_storage()
        keys = resolve_path(storage, "bib.xml", "/bib/book[2]/title")
        assert len(keys) == 1
        assert storage.text(keys[0]) == "Data on the Web"

    def test_positional_predicate_counts_per_parent(self):
        # XPath semantics: /bib/book/author[2] is every book's second
        # author, not the second author of the whole document.
        storage = StorageManager()
        storage.register(XmlDocument.from_string("b.xml", (
            "<bib>"
            "<book><author>A1</author><author>A2</author></book>"
            "<book><author>B1</author><author>B2</author></book>"
            "</bib>")))
        keys = resolve_path(storage, "b.xml", "/bib/book/author[2]")
        assert [storage.text(k) for k in keys] == ["A2", "B2"]
        # and out-of-range within every parent matches nothing
        assert resolve_path(storage, "b.xml", "/bib/book/author[3]") == []
