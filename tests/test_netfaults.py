"""Serving resilience under network faults: the ChaosProxy harness.

What ``tests/test_durability_faults.py`` proves at the filesystem seam,
this file proves at the network seam:

* **kill-and-resume differential stress** — threaded clients mutate
  through a :class:`ChaosProxy` that severs connections while the
  server subprocess is ``kill -9``-ed and restarted mid-run; every
  acknowledged mutation must appear exactly once in the
  ``applied_index`` ledger, and the final view XML must match a
  single-session oracle replaying the server's serialized order;
* **idempotent retries** — tokens dedup resends (including across a
  blackhole that eats replies, and across durable restarts);
* **subscription resume** — reconnecting subscribers observe a
  contiguous sequence (backlog replay) or an explicit reset frame
  covering the gap, verified at the wire level — never a silent drop;
* **protection** — admission control sheds a saturating swarm with
  typed ``overloaded`` errors while in-flight work completes, queued
  requests past their deadline are skipped (never half-run), and idle
  sessions are reaped (subscribers exempt).
"""

from __future__ import annotations

import os
import random
import re
import subprocess
import sys
import threading
import time

import pytest

from repro.api import Database
from repro.multiview import CostModel
from repro.server import ConnectionClosed, ReproClient, ServerError, \
    start_in_thread
from repro.server.protocol import encode_frame
from .netfaults import ChaosProxy

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(TESTS_DIR), "src")

ROWS_XML = "<data><row><name>seed</name><v>0</v></row></data>"
ROWS_QUERY = '<r>{for $x in doc("data.xml")/data/row return $x}</r>'

BANNER = re.compile(r"repro view server on ([\d.]+):(\d+)")


def insert_row(name: str) -> str:
    return ('for $d in document("data.xml")/data update $d '
            f'insert <row><name>{name}</name><v>0</v></row> into $d')


class NeverRecompute(CostModel):
    def should_recompute(self, trees):
        return False


def rows_db() -> Database:
    db = Database()
    db.load("data.xml", ROWS_XML)
    db.create_view("rows", ROWS_QUERY, cost_model=NeverRecompute())
    return db


def rows_server(**kwargs):
    return start_in_thread(rows_db(), own_db=True, **kwargs)


def spawn_server(durable_dir) -> tuple[subprocess.Popen, int]:
    """Boot ``python -m repro.server`` durable + fsync=always (so every
    acknowledged mutation survives SIGKILL) and return (process, port)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0",
         "--durable", str(durable_dir), "--fsync", "always"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ,
             "PYTHONPATH": SRC_DIR + os.pathsep
             + os.environ.get("PYTHONPATH", "")})
    banner = process.stdout.readline()
    match = BANNER.search(banner)
    assert match, f"no server banner, got: {banner!r}"
    return process, int(match.group(2))


# -- the kill-and-resume differential stress ---------------------------------------------


class TestKillAndResume:
    CLIENTS = 4
    MUTATIONS = 18

    def _drive(self, proxy, thread_id, acked, errors):
        rng = random.Random(1000 + thread_id)
        client = ReproClient(
            proxy.host, proxy.port, reconnect=True, timeout=5.0,
            connect_timeout=5.0, max_retries=40, backoff=0.05,
            backoff_cap=0.5, retry_window=120.0,
            client_id=f"chaos-{thread_id}", rng=rng)
        try:
            for index in range(self.MUTATIONS):
                name = f"c{thread_id}i{index}"
                reply = client.update([insert_row(name)])
                acked.append((reply["applied_index"], name))
        except Exception as exc:   # noqa: BLE001 — surfaced by the test
            errors.append(exc)
        finally:
            client.close()

    def test_acked_mutations_apply_exactly_once_across_kill9(
            self, tmp_path):
        process, port = spawn_server(tmp_path / "srv")
        proxy = ChaosProxy(port, seed=7)
        acked: list = []
        errors: list = []
        watcher_frames: list = []
        try:
            # setup goes straight to the server (not under chaos)
            with ReproClient("127.0.0.1", port) as setup:
                setup.load("data.xml", ROWS_XML)
                setup.create_view("rows", ROWS_QUERY)

            # a subscriber rides through the whole run via the proxy
            watcher = ReproClient(proxy.host, proxy.port,
                                  reconnect=True, timeout=10.0,
                                  max_retries=40, backoff=0.05,
                                  backoff_cap=0.5, retry_window=120.0,
                                  client_id="chaos-watcher")
            subscription = watcher.subscribe("rows")

            threads = [threading.Thread(
                target=self._drive, args=(proxy, t, acked, errors))
                for t in range(self.CLIENTS)]
            for thread in threads:
                thread.start()

            # the chaos schedule: severs, split frames, then kill -9 +
            # restart behind the same proxy address
            time.sleep(0.4)
            proxy.sever_all()
            time.sleep(0.3)
            proxy.split_frames = True
            time.sleep(0.3)
            proxy.split_frames = False
            proxy.truncate_on_sever = True
            proxy.sever_all()
            proxy.truncate_on_sever = False
            time.sleep(0.3)
            proxy.refuse(True)
            proxy.sever_all()
            process.kill()                       # SIGKILL, no checkpoint
            process.wait(timeout=30)
            process, port = spawn_server(tmp_path / "srv")
            proxy.retarget(port)
            proxy.refuse(False)
            time.sleep(0.4)
            proxy.sever_all()

            for thread in threads:
                thread.join(timeout=180)
                assert not thread.is_alive(), "driver thread stuck"
            assert not errors, errors

            # -- exactly-once in the applied_index ledger ------------------
            assert len(acked) == self.CLIENTS * self.MUTATIONS
            indices = [index for index, _ in acked]
            assert len(set(indices)) == len(indices), \
                "an acked mutation shares its applied_index ticket"

            with ReproClient("127.0.0.1", port) as check:
                served = check.read("rows")
                xml = served["xml"]
                for _, name in acked:
                    assert xml.count(f"<name>{name}</name>") == 1, name
                # the served extent matches full recomputation
                assert xml == check.query(ROWS_QUERY)
                final_sequence = served["sequence"]

            # -- differential oracle in the server's serialized order ------
            with Database() as oracle:
                oracle.load("data.xml", ROWS_XML)
                oracle.create_view("rows", ROWS_QUERY,
                                   cost_model=NeverRecompute())
                for _, name in sorted(acked):
                    oracle.execute(insert_row(name))
                assert oracle.read("rows") == xml

            # -- the subscriber never saw a silent gap ----------------------
            # Drain what the watcher received: every sequence must be
            # covered by a delta directly or by an explicit
            # coalesced/reset range — and never a "gap" frame (the
            # strict-policy death) nor a duplicate after resume.
            watcher.ping()      # one round trip: pushes are flushed
            while True:
                try:
                    watcher_frames.append(
                        subscription.frames.get(timeout=0.5))
                except Exception:   # noqa: BLE001 — queue.Empty
                    break
            watcher.close()
            covered: list = []
            for frame in watcher_frames:
                assert frame is not subscription._CLOSED
                assert frame["type"] == "delta", frame
                start = frame.get("from_sequence", frame["sequence"])
                covered.extend(range(start, frame["sequence"] + 1))
            assert sorted(set(covered)) == \
                list(range(1, final_sequence + 1)), \
                f"silent gap in watcher coverage: {covered}"
            assert len(covered) == len(set(covered)), \
                "duplicate delivery after resume"
        finally:
            proxy.stop()
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


# -- idempotent retries -------------------------------------------------------------------


class TestIdempotentRetries:
    def test_blackholed_replies_dedup_to_exactly_once(self):
        with rows_server() as handle:
            with ChaosProxy(handle.port, seed=3) as proxy:
                client = ReproClient(
                    proxy.host, proxy.port, reconnect=True,
                    timeout=0.4, max_retries=20, backoff=0.05,
                    backoff_cap=0.2, retry_window=30.0,
                    client_id="bh", rng=random.Random(5))
                timer = threading.Timer(
                    1.2, lambda: proxy.blackhole(False, "s2c"))
                proxy.blackhole(True, "s2c")    # requests land, replies die
                timer.start()
                try:
                    reply = client.update([insert_row("once")])
                finally:
                    timer.cancel()
                    client.close()
            # the first (unanswered) attempt applied; the winning reply
            # is the ledger's replay of that original ticket
            assert reply.get("deduped") is True
            metrics = handle.db.registry.metrics
            assert metrics.counter("server_requests_deduped").value >= 1
            assert metrics.counter("server_requests_retried").value >= 1
            with ReproClient(handle.host, handle.port) as check:
                xml = check.read("rows")["xml"]
                assert xml.count("<name>once</name>") == 1

    def test_dedup_survives_durable_restart(self, tmp_path):
        db = Database(durable_path=tmp_path)
        db.load("data.xml", ROWS_XML)
        db.create_view("rows", ROWS_QUERY)
        with start_in_thread(db, own_db=True) as handle:
            with ReproClient(handle.host, handle.port) as client:
                first = client.request("execute",
                                       statement=insert_row("ckpt"),
                                       client="phoenix", seq=7)
                client.checkpoint()     # the ledger rides the checkpoint
                second = client.request("execute",
                                        statement=insert_row("tail"),
                                        client="phoenix", seq=8)
        # graceful stop checkpointed; reopen and retry both tokens
        with start_in_thread(Database(durable_path=tmp_path),
                             own_db=True) as handle:
            with ReproClient(handle.host, handle.port) as client:
                r7 = client.request("execute",
                                    statement=insert_row("ckpt"),
                                    client="phoenix", seq=7, retry=1)
                r8 = client.request("execute",
                                    statement=insert_row("tail"),
                                    client="phoenix", seq=8, retry=1)
                assert r7["deduped"] is True and r8["deduped"] is True
                assert r7["applied_index"] == first["applied_index"]
                assert r8["applied_index"] == second["applied_index"]
                # fresh mutations never reuse a replayed ticket
                fresh = client.update([insert_row("fresh")])
                assert fresh["applied_index"] > second["applied_index"]
                xml = client.read("rows")["xml"]
                for name in ("ckpt", "tail", "fresh"):
                    assert xml.count(f"<name>{name}</name>") == 1

    def test_dedup_survives_external_db_closed_after_server(
            self, tmp_path):
        # An external (non-owned) database outlives its server: the
        # server's stop() checkpoints the ledger then detaches its
        # state provider, and db.close() cuts a NEWER, provider-less
        # checkpoint.  That final checkpoint must carry the serving
        # sidecar forward, not silently orphan it.
        db = Database(durable_path=tmp_path)
        db.load("data.xml", ROWS_XML)
        db.create_view("rows", ROWS_QUERY)
        with start_in_thread(db) as handle:
            with ReproClient(handle.host, handle.port) as client:
                first = client.request("execute",
                                       statement=insert_row("orphan"),
                                       client="phoenix", seq=7)
        db.close()      # provider-less final checkpoint
        with start_in_thread(Database(durable_path=tmp_path),
                             own_db=True) as handle:
            with ReproClient(handle.host, handle.port) as client:
                r7 = client.request("execute",
                                    statement=insert_row("orphan"),
                                    client="phoenix", seq=7, retry=1)
                assert r7["deduped"] is True
                assert r7["applied_index"] == first["applied_index"]
                xml = client.read("rows")["xml"]
                assert xml.count("<name>orphan</name>") == 1

    def test_stamped_meta_survives_wal_tail_without_checkpoint(
            self, tmp_path):
        db = Database(durable_path=tmp_path, fsync="always")
        db.load("data.xml", ROWS_XML)
        manager = db.durability
        with manager.stamp({"c": "u1", "s": 3, "a": 9}):
            db.execute(insert_row("stamped"))
        manager.server_state_provider = \
            lambda: {"applied_index": 42, "ledger": []}
        db.checkpoint()
        with manager.stamp({"c": "u1", "s": 4, "a": 43}):
            db.execute(insert_row("after-ckpt"))
        manager.wal.close()     # abandon without a closing checkpoint
        manager.closed = True

        reopened = Database(durable_path=tmp_path)
        recovered = reopened.durability
        # the checkpointed server state came back...
        assert recovered.recovered_server_state == \
            {"applied_index": 42, "ledger": []}
        # ...and only the WAL-tail record's meta (the checkpointed one
        # was truncated away with its segment)
        assert recovered.recovered_batch_meta == \
            [{"c": "u1", "s": 4, "a": 43}]
        recovered_xml = reopened.query(ROWS_QUERY)
        assert "<name>stamped</name>" in recovered_xml
        assert "<name>after-ckpt</name>" in recovered_xml
        reopened.close()


# -- subscription resume --------------------------------------------------------------------


class TestSubscriptionResume:
    def _consume(self, subscription, count, timeout=15.0):
        return [subscription.get(timeout=timeout) for _ in range(count)]

    def test_reconnect_replays_backlog_gap_free(self):
        with rows_server() as handle:
            with ChaosProxy(handle.port, seed=11) as proxy:
                subscriber = ReproClient(
                    proxy.host, proxy.port, reconnect=True,
                    timeout=10.0, max_retries=20, backoff=0.02,
                    backoff_cap=0.2, client_id="resume")
                subscription = subscriber.subscribe("rows")
                with ReproClient(handle.host, handle.port) as writer:
                    writer.update([insert_row("a1")])
                    writer.update([insert_row("a2")])
                    frames = self._consume(subscription, 2)
                    assert [f["sequence"] for f in frames] == [1, 2]
                    # cut the subscriber off and mutate while it's gone
                    proxy.refuse(True)
                    proxy.sever_all()
                    for index in (3, 4, 5):
                        writer.update([insert_row(f"a{index}")])
                    proxy.refuse(False)
                    # the resumed stream replays 3..5 then goes live
                    frames = self._consume(subscription, 3)
                    assert [f["sequence"] for f in frames] == [3, 4, 5]
                    assert all(f.get("resumed") for f in frames)
                    assert all(not f["reset"] for f in frames), \
                        "backlog replay must carry the real deltas"
                    writer.update([insert_row("a6")])
                    (live,) = self._consume(subscription, 1)
                    assert live["sequence"] == 6
                    assert not live.get("resumed")
                assert subscriber.reconnects >= 1
                metrics = handle.db.registry.metrics
                assert metrics.counter("server_reconnects").value >= 1
                subscriber.close()

    def test_resume_past_backlog_gets_explicit_reset(self):
        # backlog=1: the server can never replay a 3-refresh gap
        with rows_server(backlog=1) as handle:
            with ChaosProxy(handle.port, seed=12) as proxy:
                subscriber = ReproClient(
                    proxy.host, proxy.port, reconnect=True,
                    timeout=10.0, max_retries=20, backoff=0.02,
                    backoff_cap=0.2, client_id="reset")
                subscription = subscriber.subscribe("rows")
                with ReproClient(handle.host, handle.port) as writer:
                    writer.update([insert_row("b1")])
                    assert subscription.get(timeout=15)["sequence"] == 1
                    proxy.refuse(True)
                    proxy.sever_all()
                    for index in (2, 3, 4):
                        writer.update([insert_row(f"b{index}")])
                    proxy.refuse(False)
                    frame = subscription.get(timeout=15)
                    # one explicit reset frame covering the whole gap —
                    # never a silent drop
                    assert frame["resumed"] and frame["reset"]
                    assert frame["from_sequence"] == 2
                    assert frame["sequence"] == 4
                    assert frame["mutations"] is None
                    # the reset contract: re-read, then stream on
                    xml = subscriber.read("rows")["xml"]
                    assert xml.count("<name>b") == 4
                    writer.update([insert_row("b5")])
                    assert subscription.get(timeout=15)["sequence"] == 5
                subscriber.close()

    def test_resume_across_durable_server_restart(self, tmp_path):
        db = Database(durable_path=tmp_path)
        db.load("data.xml", ROWS_XML)
        db.create_view("rows", ROWS_QUERY,
                       cost_model=NeverRecompute())
        handle = start_in_thread(db, own_db=True)
        proxy = ChaosProxy(handle.port, seed=13)
        subscriber = ReproClient(proxy.host, proxy.port, reconnect=True,
                                 timeout=10.0, max_retries=40,
                                 backoff=0.05, backoff_cap=0.4,
                                 retry_window=60.0, client_id="restart")
        try:
            subscription = subscriber.subscribe("rows")
            with ReproClient(handle.host, handle.port) as writer:
                writer.update([insert_row("r1")])
                writer.update([insert_row("r2")])
                assert [f["sequence"]
                        for f in self._consume(subscription, 2)] == [1, 2]
                proxy.refuse(True)
                proxy.sever_all()
                writer.update([insert_row("r3")])
                writer.update([insert_row("r4")])
            handle.stop()       # graceful: checkpoints sequence state

            handle = start_in_thread(Database(durable_path=tmp_path),
                                     own_db=True)
            proxy.retarget(handle.port)
            proxy.refuse(False)
            # fresh server, empty backlog: the resume is an explicit
            # reset covering 3..4 (refresh sequences survived durably)
            frame = subscription.get(timeout=30)
            assert frame["resumed"] and frame["reset"]
            assert frame["from_sequence"] == 3
            assert frame["sequence"] == 4
            with ReproClient(handle.host, handle.port) as writer:
                writer.update([insert_row("r5")])
            assert subscription.get(timeout=15)["sequence"] == 5
        finally:
            subscriber.close()
            proxy.stop()
            handle.stop()

    def test_wire_level_from_sequence_contract(self):
        # no reader thread, no retries: the raw frames themselves
        from .test_server import RawClient
        with rows_server() as handle:
            first = RawClient(handle.host, handle.port)
            first.request("hello")
            first.request("subscribe", view="rows")   # starts the backlog
            with ReproClient(handle.host, handle.port) as writer:
                for index in range(1, 6):
                    writer.update([insert_row(f"w{index}")])
            resumer = RawClient(handle.host, handle.port)
            resumer.request("hello")
            result = resumer.request("subscribe", view="rows",
                                     from_sequence=2)
            assert result["resumed"] == "replay"
            assert result["replayed"] == 3
            frames = [resumer.recv_frame(timeout=15) for _ in range(3)]
            assert [f["sequence"] for f in frames] == [3, 4, 5]
            assert all(f["resumed"] and not f["reset"] for f in frames)
            assert all(f["mutations"] for f in frames)
            # resuming at the current sequence replays nothing
            result = resumer.request("subscribe", view="rows",
                                     from_sequence=5)
            assert result["resumed"] == "current"
            assert result["replayed"] == 0
            first.close()
            resumer.close()


# -- server-side protection ------------------------------------------------------------------


class TestProtection:
    def _fill(self, handle, count, naptime=0.01):
        """Stuff ``count`` short blocking jobs straight into the apply
        queue — a saturated single writer that still serves IO between
        jobs.  The returned future resolves once the backlog drains."""
        import asyncio
        server = handle.server

        async def fill():
            loop = asyncio.get_event_loop()
            futures = []
            for _ in range(count):
                future = loop.create_future()
                server._apply_queue.put_nowait(
                    (lambda: time.sleep(naptime), future, None))
                futures.append(future)
            await asyncio.gather(*futures)

        return asyncio.run_coroutine_threadsafe(fill(), handle._loop)

    def test_saturating_swarm_sheds_with_typed_overloaded(self):
        with rows_server(max_inflight=2) as handle:
            fill = self._fill(handle, count=200)    # ~2s of backlog
            shed_errors: list = []
            lock = threading.Lock()

            def swarm(k):
                try:
                    with ReproClient(handle.host, handle.port,
                                     timeout=10.0) as client:
                        client.documents()
                except ServerError as exc:
                    with lock:
                        shed_errors.append(exc)

            threads = [threading.Thread(target=swarm, args=(k,))
                       for k in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert shed_errors, "saturation produced no shed"
            for exc in shed_errors:
                assert exc.code == "overloaded"
                assert exc.detail["retry_after"] > 0
            # the queued work still completed
            fill.result(timeout=30)
            metrics = handle.db.registry.metrics
            assert metrics.counter("server_shed_total").value >= \
                len(shed_errors)
            # a resilient client rides the overload out via retry_after
            with ReproClient(handle.host, handle.port, reconnect=True,
                             timeout=10.0, max_retries=30,
                             backoff=0.05, backoff_cap=0.3,
                             client_id="rider") as rider:
                fill2 = self._fill(handle, count=60)
                assert "data.xml" in rider.documents()
                fill2.result(timeout=30)

    def test_session_limit_sheds_new_connections(self):
        with rows_server(max_sessions=1) as handle:
            keeper = ReproClient(handle.host, handle.port)
            import socket as socketlib
            from repro.server.protocol import FrameDecoder
            sock = socketlib.create_connection(
                (handle.host, handle.port), timeout=5.0)
            decoder = FrameDecoder()
            frames = []
            while not frames:
                data = sock.recv(65536)
                if not data:
                    break
                frames.extend(decoder.feed(data))
            assert frames and frames[0]["type"] == "error"
            assert frames[0]["code"] == "overloaded"
            assert frames[0]["retry_after"] > 0
            sock.close()
            keeper.ping()       # the admitted session is unaffected
            keeper.close()

    def test_expired_deadline_is_skipped_not_half_run(self):
        with rows_server() as handle:
            with ReproClient(handle.host, handle.port,
                             timeout=30.0) as client:
                # a ~1.5s backlog: the 50ms-deadline request expires
                # while queued behind it
                fill = self._fill(handle, count=150)
                with pytest.raises(ServerError) as err:
                    client.request("execute",
                                   statement=insert_row("never"),
                                   deadline_ms=50)
                assert err.value.code == "deadline"
                fill.result(timeout=30)
                # skipped means skipped: the mutation never applied
                assert "<name>never</name>" not in \
                    client.read("rows")["xml"]
            metrics = handle.db.registry.metrics
            assert metrics.counter("server_deadline_expired").value >= 1

    def test_idle_sessions_reaped_but_subscribers_exempt(self):
        with rows_server(idle_timeout=0.2) as handle:
            idler = ReproClient(handle.host, handle.port)
            watcher = ReproClient(handle.host, handle.port)
            watcher.subscribe("rows")
            deadline = time.monotonic() + 10.0
            metrics = handle.db.registry.metrics
            while metrics.counter("server_sessions_reaped").value < 1:
                assert time.monotonic() < deadline, "reaper never fired"
                time.sleep(0.05)
            with pytest.raises((ConnectionClosed, TimeoutError)):
                idler.ping()
                time.sleep(0.5)
                idler.ping()
            # the subscriber sat just as idle and survived
            watcher.ping()
            watcher.close()
            idler.close()
            # a reconnecting client rides straight through the reaper
            rider = ReproClient(handle.host, handle.port,
                                reconnect=True, timeout=5.0,
                                backoff=0.02, backoff_cap=0.2,
                                client_id="rider")
            time.sleep(0.8)     # long enough to be reaped at least once
            rider.ping()
            rider.close()

    def test_bad_frame_under_chaos_splitting(self):
        """Split frames byte-by-byte through the proxy: the decoder
        must reassemble perfectly (no bad_frame, no corruption)."""
        with rows_server() as handle:
            with ChaosProxy(handle.port, seed=21) as proxy:
                proxy.split_frames = True
                with ReproClient(proxy.host, proxy.port) as client:
                    for index in range(5):
                        client.update([insert_row(f"s{index}")])
                    xml = client.read("rows")["xml"]
                    for index in range(5):
                        assert xml.count(f"<name>s{index}</name>") == 1
            metrics = handle.db.registry.metrics
            assert metrics.counter("server_bad_frames").value == 0


# -- garbage on the wire (satellite: FrameDecoder/session hardening) -------------------------


class TestGarbageInput:
    def _collect_until_eof(self, sock, timeout=10.0):
        from repro.server.protocol import FrameDecoder
        sock.settimeout(timeout)
        decoder = FrameDecoder()
        frames = []
        while True:
            try:
                data = sock.recv(65536)
            except OSError:
                break
            if not data:
                break
            frames.extend(decoder.feed(data))
        return frames

    def test_non_json_body_gets_bad_frame_then_clean_close(self):
        import socket as socketlib
        with rows_server() as handle:
            sock = socketlib.create_connection(
                (handle.host, handle.port), timeout=5.0)
            body = b"this is not json"
            sock.sendall(len(body).to_bytes(4, "big") + body)
            frames = self._collect_until_eof(sock)
            assert len(frames) == 1, frames
            assert frames[0]["type"] == "error"
            assert frames[0]["code"] == "bad_frame"
            sock.close()
            # the server survived the garbage
            with ReproClient(handle.host, handle.port) as client:
                client.ping()

    def test_oversized_length_prefix_gets_bad_frame(self):
        import socket as socketlib
        with rows_server() as handle:
            sock = socketlib.create_connection(
                (handle.host, handle.port), timeout=5.0)
            sock.sendall((2 ** 31).to_bytes(4, "big"))
            frames = self._collect_until_eof(sock)
            assert [f["code"] for f in frames] == ["bad_frame"]
            sock.close()

    def test_malformed_request_envelope_gets_bad_frame(self):
        import socket as socketlib
        with rows_server() as handle:
            sock = socketlib.create_connection(
                (handle.host, handle.port), timeout=5.0)
            sock.sendall(encode_frame({"op": "ping"}))   # no id
            frames = self._collect_until_eof(sock)
            assert [f["code"] for f in frames] == ["bad_frame"]
            sock.close()
            metrics = handle.db.registry.metrics
            assert metrics.counter("server_bad_frames").value >= 1
