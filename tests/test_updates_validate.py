"""Tests for the Validate phase: primitives, SAPT, batching (Chapter 5)."""

import pytest

from repro import StorageManager, UpdateRequest, XmlDocument
from repro.translate import translate_query
from repro.updates import Sapt, UpdateTree, batch_update_trees
from repro.updates.sapt import EXPOSED, PREDICATE
from repro.flexkeys import FlexKey
from repro.xat.base import DELETE, INSERT, MODIFY


def bib_storage():
    sm = StorageManager()
    sm.register(XmlDocument.from_string("bib.xml", (
        "<bib><book year='1994'><title>A</title>"
        "<author><last>L</last></author></book></bib>")))
    return sm


class TestPrimitives:
    def test_insert_requires_fragment(self):
        with pytest.raises(ValueError):
            UpdateRequest(INSERT, "d.xml", FlexKey("b"))

    def test_insert_parses_string_fragment(self):
        request = UpdateRequest.insert("d.xml", FlexKey("b"), "<x/>")
        assert request.fragment.tag == "x"

    def test_insert_rejects_multi_fragment(self):
        with pytest.raises(ValueError):
            UpdateRequest.insert("d.xml", FlexKey("b"), "<x/><y/>")

    def test_modify_requires_value(self):
        with pytest.raises(ValueError):
            UpdateRequest(MODIFY, "d.xml", FlexKey("b"))

    def test_bad_position(self):
        with pytest.raises(ValueError):
            UpdateRequest.insert("d.xml", FlexKey("b"), "<x/>",
                                 position="inside")

    def test_update_tree_signs(self):
        key = FlexKey("b.b")
        assert UpdateTree("d", key, INSERT).sign == 1
        assert UpdateTree("d", key, DELETE).sign == -1
        assert UpdateTree("d", key, MODIFY).sign == 0


class TestSapt:
    QUERY = ('<r>{for $b in doc("bib.xml")/bib/book '
             'where $b/@year = "1994" return $b/title}</r>')

    def _sapt(self, query=QUERY):
        return Sapt.from_plan(translate_query(query))

    def test_documents(self):
        assert self._sapt().documents() == ["bib.xml"]

    def test_access_paths_recorded(self):
        sapt = self._sapt()
        steps = {a.steps for a in sapt.paths["bib.xml"]}
        assert ("bib", "book") in steps
        assert ("bib", "book", "title") in steps
        assert ("bib", "book", "@year") in steps

    def test_predicate_usage_marked(self):
        sapt = self._sapt()
        by_steps = {a.steps: a.usages for a in sapt.paths["bib.xml"]}
        assert PREDICATE in by_steps[("bib", "book", "@year")]
        assert EXPOSED in by_steps[("bib", "book", "title")]

    def test_relevancy_above_and_below(self):
        sapt = self._sapt()
        sm = bib_storage()
        root = sm.root_key("bib.xml")
        book = sm.children(root, "book")[0]
        title = sm.children(book, "title")[0]
        author = sm.children(book, "author")[0]
        last = sm.children(author, "last")[0]
        assert sapt.is_relevant(sm, "bib.xml", book)     # at a binding
        assert sapt.is_relevant(sm, "bib.xml", title)    # exposed subtree
        assert not sapt.is_relevant(sm, "bib.xml", author)  # unread branch
        assert not sapt.is_relevant(sm, "bib.xml", last)

    def test_relevancy_unknown_document(self):
        sapt = self._sapt()
        sm = bib_storage()
        sm.register(XmlDocument.from_string("o.xml", "<o><i/></o>"))
        item = sm.children(sm.root_key("o.xml"), "i")[0]
        assert not sapt.is_relevant(sm, "o.xml", item)

    def test_descendant_axis_conservative(self):
        sapt = self._sapt('<r>{for $t in doc("bib.xml")/bib//title '
                          'return $t}</r>')
        sm = bib_storage()
        book = sm.children(sm.root_key("bib.xml"), "book")[0]
        author = sm.children(book, "author")[0]
        assert sapt.is_relevant(sm, "bib.xml", author)

    def test_modify_hits_predicate(self):
        sapt = self._sapt('<r>{for $b in doc("bib.xml")/bib/book '
                          'where $b/title = "A" return $b/author}</r>')
        sm = bib_storage()
        book = sm.children(sm.root_key("bib.xml"), "book")[0]
        title = sm.children(book, "title")[0]
        assert sapt.modify_hits_predicate(sm, "bib.xml", title)
        author = sm.children(book, "author")[0]
        assert not sapt.modify_hits_predicate(sm, "bib.xml", author)

    def test_binding_anchor(self):
        sapt = self._sapt()
        sm = bib_storage()
        book = sm.children(sm.root_key("bib.xml"), "book")[0]
        title = sm.children(book, "title")[0]
        assert sapt.binding_anchor(sm, "bib.xml", title) == book
        assert sapt.binding_anchor(sm, "bib.xml", book) == book


class TestBatching:
    def _tree(self, doc, key, kind):
        return UpdateTree(doc, FlexKey(key), kind)

    def test_same_kind_same_doc_one_batch(self):
        trees = [self._tree("d", "b.b", INSERT),
                 self._tree("d", "b.d", INSERT)]
        batches = batch_update_trees(trees)
        assert len(batches) == 1
        assert len(batches[0].roots) == 2

    def test_kind_change_splits(self):
        trees = [self._tree("d", "b.b", INSERT),
                 self._tree("d", "b.d", DELETE),
                 self._tree("d", "b.f", DELETE)]
        batches = batch_update_trees(trees)
        assert [b.phase for b in batches] == [INSERT, DELETE]

    def test_document_change_splits(self):
        trees = [self._tree("d1", "b.b", INSERT),
                 self._tree("d2", "b.b", INSERT)]
        assert len(batch_update_trees(trees)) == 2

    def test_nested_roots_deduplicated(self):
        trees = [self._tree("d", "b.b", DELETE),
                 self._tree("d", "b.b.d", DELETE)]  # inside the first
        batches = batch_update_trees(trees)
        assert len(batches[0].roots) == 1
        assert batches[0].roots[0].key.value == "b.b"

    def test_enclosing_root_replaces_nested(self):
        trees = [self._tree("d", "b.b.d", DELETE),
                 self._tree("d", "b.b", DELETE)]
        batches = batch_update_trees(trees)
        assert [r.key.value for r in batches[0].roots] == ["b.b"]


class TestDeltaSpec:
    def test_classify(self):
        from repro.xat.base import DeltaRoot, DeltaSpec

        spec = DeltaSpec("d", (DeltaRoot(FlexKey("b.d"), INSERT),), INSERT)
        assert spec.classify(FlexKey("b.d")) == "at"
        assert spec.classify(FlexKey("b.d.f")) == "at"
        assert spec.classify(FlexKey("b")) == "ancestor"
        assert spec.classify(FlexKey("b.f")) is None
        assert spec.sign_at(FlexKey("b.d.f")) == 1
