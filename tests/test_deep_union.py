"""Unit tests for the count-aware Deep Union (Chapters 6, 8)."""

import pytest

from repro.apply import (ExtentNode, FusionReport, deep_union, forest_root,
                         fuse_forest)
from repro.xat.grouping import AggState


def element(node_id, tag, order=None, count=1, refresh=False,
            children=(), text_children=(), attrs=None):
    node = ExtentNode(node_id, order if order is not None else node_id,
                      tag=tag, attributes=dict(attrs or {}), count=count,
                      refresh=refresh)
    for child in children:
        node.insert_child(child)
    for value in text_children:
        node.insert_child(ExtentNode("#text", value, text=value))
    return node


class TestInsertMerge:
    def test_empty_extent_takes_delta(self):
        extent, report = deep_union(None, element("ac", "r"))
        assert extent is not None and report.inserted == 1

    def test_negative_into_empty_is_noop(self):
        extent, _ = deep_union(None, element("ac", "r", count=-1))
        assert extent is None

    def test_root_mismatch_rejected(self):
        with pytest.raises(ValueError):
            deep_union(element("ac", "r"), element("bc", "r"))

    def test_new_child_inserted_in_order(self):
        extent = element("rc", "r", children=[
            element("b.b", "i", order="b.b"), element("b.f", "i", order="b.f")])
        delta = element("rc", "r", children=[
            element("b.d", "i", order="b.d")])
        extent, report = deep_union(extent, delta)
        assert [c.node_id for c in extent.children] == ["b.b", "b.d", "b.f"]
        assert report.inserted == 1

    def test_matching_child_counts_add(self):
        extent = element("rc", "r", children=[element("xc", "i", count=1)])
        delta = element("rc", "r", children=[element("xc", "i", count=2)])
        extent, _ = deep_union(extent, delta)
        assert extent.children[0].count == 3

    def test_merge_recurses(self):
        extent = element("rc", "r", children=[
            element("gc", "g", children=[element("b.b", "i")])])
        delta = element("rc", "r", children=[
            element("gc", "g", children=[element("b.d", "i")])])
        extent, _ = deep_union(extent, delta)
        group = extent.children[0]
        assert len(group.children) == 2


class TestDelete:
    def test_count_reaching_zero_disconnects_root(self):
        big = element("gc", "g", children=[
            element("b.b", "i", children=[element("b.b.b", "j")])])
        extent = element("rc", "r", children=[big])
        delta = element("rc", "r", children=[element("gc", "g", count=-1)])
        report = FusionReport()
        extent, report = deep_union(extent, delta, report)
        assert not extent.children
        assert report.removed_roots == 1
        # the whole fragment went at once — no per-descendant deletes
        assert report.removed_nodes == 3

    def test_partial_delete_keeps_node(self):
        extent = element("rc", "r", children=[element("gc", "g", count=2)])
        delta = element("rc", "r", children=[element("gc", "g", count=-1)])
        extent, _ = deep_union(extent, delta)
        assert extent.children[0].count == 1

    def test_delete_recurses_into_survivors(self):
        extent = element("rc", "r", children=[
            element("gc", "g", count=2, children=[
                element("b.b", "i"), element("b.d", "i")])])
        delta = element("rc", "r", children=[
            element("gc", "g", count=-1, children=[
                element("b.b", "i", count=-1)])])
        extent, _ = deep_union(extent, delta)
        group = extent.children[0]
        assert [c.node_id for c in group.children] == ["b.d"]

    def test_delete_of_absent_child_ignored(self):
        extent = element("rc", "r")
        delta = element("rc", "r", children=[element("gc", "g", count=-1)])
        extent, report = deep_union(extent, delta)
        assert not extent.children and report.inserted == 0


class TestRefresh:
    def test_refresh_replaces_text(self):
        extent = element("rc", "r", children=[
            element("pc", "p", text_children=["old"])])
        delta = element("rc", "r", children=[
            element("pc", "p", refresh=True, text_children=["new"])])
        report = FusionReport()
        extent, report = deep_union(extent, delta, report)
        texts = [c.text for c in extent.children[0].children if c.is_text]
        assert texts == ["new"]
        assert report.replaced_text == 1

    def test_refresh_does_not_change_counts(self):
        extent = element("rc", "r", children=[element("pc", "p", count=3)])
        delta = element("rc", "r", children=[
            element("pc", "p", refresh=True)])
        extent, _ = deep_union(extent, delta)
        assert extent.children[0].count == 3

    def test_refresh_updates_attributes(self):
        extent = element("rc", "r", children=[
            element("pc", "p", attrs={"a": "1"})])
        delta = element("rc", "r", children=[
            element("pc", "p", refresh=True, attrs={"a": "2"})])
        extent, _ = deep_union(extent, delta)
        assert extent.children[0].attributes == {"a": "2"}

    def test_refresh_inserts_missing_children(self):
        extent = element("rc", "r", children=[element("pc", "p")])
        delta = element("rc", "r", children=[
            element("pc", "p", refresh=True,
                    children=[element("b.b", "i")])])
        extent, _ = deep_union(extent, delta)
        assert len(extent.children[0].children) == 1
        # inserted nodes get a sane positive count
        assert extent.children[0].children[0].count == 1

    def test_identical_text_not_counted_as_replacement(self):
        extent = element("rc", "r", children=[
            element("pc", "p", text_children=["same"])])
        delta = element("rc", "r", children=[
            element("pc", "p", refresh=True, text_children=["same"])])
        report = FusionReport()
        extent, report = deep_union(extent, delta, report)
        assert report.replaced_text == 0


class TestAggregates:
    def _agg_node(self, members, kind="sum"):
        state = AggState(kind)
        for member_id, value, count in members:
            state.add(member_id, value, count)
        return ExtentNode("aggid", "x", text=state.value(), agg=state)

    def test_sum_merges_incrementally(self):
        extent = element("rc", "r")
        extent.insert_child(self._agg_node([("m1", 10.0, 1), ("m2", 20.0, 1)]))
        delta = element("rc", "r")
        delta.insert_child(self._agg_node([("m3", 12.0, 1)]))
        extent, report = deep_union(extent, delta)
        merged = extent.children[0]
        assert merged.text == "42"
        assert not report.aggregate_refreshes

    def test_member_delete_updates_value(self):
        extent = element("rc", "r")
        extent.insert_child(self._agg_node([("m1", 10.0, 1), ("m2", 20.0, 1)]))
        delta = element("rc", "r")
        delta.insert_child(self._agg_node([("m1", 10.0, -1)]))
        extent, _ = deep_union(extent, delta)
        assert extent.children[0].text == "20"

    def test_min_delete_of_extremum_reevaluates(self):
        extent = element("rc", "r")
        extent.insert_child(self._agg_node(
            [("m1", 10.0, 1), ("m2", 30.0, 1)], kind="min"))
        delta = element("rc", "r")
        delta.insert_child(self._agg_node([("m1", 10.0, -1)], kind="min"))
        extent, report = deep_union(extent, delta)
        assert extent.children[0].text == "30"
        assert not report.aggregate_refreshes

    def test_refresh_contribution_overwrites_value(self):
        extent = element("rc", "r")
        extent.insert_child(self._agg_node([("m1", 10.0, 1)]))
        state = AggState("sum")
        state.add("m1", 99.0, 0, refresh=True)
        delta = element("rc", "r")
        delta.insert_child(ExtentNode("aggid", "x", text="", agg=state))
        extent, _ = deep_union(extent, delta)
        assert extent.children[0].text == "99"


class TestForest:
    def test_fuse_forest_wraps(self):
        extent, _ = fuse_forest(None, [element("ac", "a"),
                                       element("bc", "b")])
        assert extent.tag == "#forest"
        assert len(extent.children) == 2

    def test_fuse_forest_merges_same_root(self):
        extent, _ = fuse_forest(None, [element("ac", "a")])
        extent, _ = fuse_forest(extent, [element("ac", "a", count=-1)])
        assert not extent.children

    def test_forest_root_empty(self):
        assert forest_root().children == []
