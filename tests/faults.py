"""Fault-injection harness for the durability subsystem.

Wraps the :class:`repro.durability.FileSystem` seam to inject the
classic storage-engine failure modes:

* **torn writes** — the Nth write persists only a prefix, then the
  process "dies" (:class:`SimulatedCrash`);
* **short reads** — ``read(n)`` returns fewer bytes than asked (the
  reader must loop, not treat it as EOF);
* **fsync failures** — ``fsync`` raises ``OSError`` (an EIO-style
  device error), which must abort the batch *before* any mutation;
* **kill-at-LSN crash points** — the process "dies" immediately after
  (or torn-mid-way-through) appending the WAL record with a given LSN.

:class:`SimulatedCrash` deliberately derives from ``BaseException`` so
no ``except Exception`` recovery path in the engine can swallow it —
the closest in-process analogue of ``kill -9``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.durability import RealFileSystem

__all__ = ["FaultPlan", "FaultyFile", "FaultyFileSystem", "SimulatedCrash"]


class SimulatedCrash(BaseException):
    """The injected process death (BaseException: nothing catches it)."""


@dataclass
class FaultPlan:
    """What to inject, counted across the whole filesystem instance.

    ``torn_write_at`` / ``short_read_at`` are 1-based global operation
    ordinals; ``torn_write_keep`` is how many bytes of that write
    persist.  ``fail_fsync`` fails every fsync; ``fail_fsync_at`` only
    the Nth.  ``crash_after_lsn`` kills the process right after the WAL
    record with that LSN is fully written (set ``torn`` to die mid-write
    with only ``torn_write_keep`` bytes of it on disk).
    """

    torn_write_at: int | None = None
    torn_write_keep: int = 5
    short_read_at: int | None = None
    short_read_keep: int = 3
    fail_fsync: bool = False
    fail_fsync_at: int | None = None
    crash_after_lsn: int | None = None
    torn: bool = False

    writes: int = field(default=0, init=False)
    reads: int = field(default=0, init=False)
    fsyncs: int = field(default=0, init=False)


class FaultyFile:
    """A file proxy routing read/write/flush through the fault plan."""

    def __init__(self, fileobj, plan: FaultPlan, fs: "FaultyFileSystem"):
        self._file = fileobj
        self._plan = plan
        self._fs = fs

    def write(self, data: bytes) -> int:
        plan = self._plan
        plan.writes += 1
        if plan.torn_write_at is not None \
                and plan.writes == plan.torn_write_at:
            self._file.write(data[:plan.torn_write_keep])
            self._file.flush()
            raise SimulatedCrash(
                f"torn write #{plan.writes}: kept "
                f"{min(plan.torn_write_keep, len(data))}/{len(data)} bytes")
        written = self._file.write(data)
        if plan.crash_after_lsn is not None \
                and self._fs.lsn_of(data) == plan.crash_after_lsn:
            if plan.torn:
                # Rewind: only a prefix of this record reaches disk.
                self._file.flush()
                self._file.truncate(self._file.tell() - len(data)
                                    + plan.torn_write_keep)
            self._file.flush()
            raise SimulatedCrash(f"kill at LSN {plan.crash_after_lsn}")
        return written

    def read(self, count: int = -1) -> bytes:
        plan = self._plan
        plan.reads += 1
        if plan.short_read_at is not None \
                and plan.reads == plan.short_read_at and count > 0:
            return self._file.read(min(count, plan.short_read_keep))
        return self._file.read(count)

    def flush(self) -> None:
        self._file.flush()

    def truncate(self, size=None):
        return self._file.truncate(size)

    def tell(self) -> int:
        return self._file.tell()

    def seek(self, *args) -> int:
        return self._file.seek(*args)

    def fileno(self) -> int:
        return self._file.fileno()

    def close(self) -> None:
        self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


class FaultyFileSystem(RealFileSystem):
    """A :class:`RealFileSystem` whose files and fsyncs obey a
    :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan | None = None):
        self.plan = plan if plan is not None else FaultPlan()

    @staticmethod
    def lsn_of(data: bytes) -> int | None:
        """The LSN of a WAL record write (None for non-record writes)."""
        if len(data) < 16:
            return None
        return int.from_bytes(data[:8], "big")

    def open(self, path: str, mode: str):
        return FaultyFile(open(path, mode), self.plan, self)

    def fsync(self, fileobj) -> None:
        self.plan.fsyncs += 1
        if self.plan.fail_fsync or (
                self.plan.fail_fsync_at is not None
                and self.plan.fsyncs == self.plan.fail_fsync_at):
            raise OSError(5, "injected fsync failure")
        fileobj.flush()
        os.fsync(fileobj.fileno())
