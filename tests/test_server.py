"""The network serving layer: framing, sessions, pushes, backpressure,
and the multi-client differential stress test against the single-session
oracle.

Wire-level tests run a real :class:`ViewServer` on a background event
loop (``start_in_thread``) and talk to it over real sockets; nothing is
mocked below the protocol layer.
"""

from __future__ import annotations

import socket
import threading
import types
import urllib.error
import urllib.request

import pytest

from repro.api import Database
from repro.multiview import CostModel
from repro.server import ClientSubscription, ConnectionClosed, \
    ReproClient, ServerError, start_in_thread
from repro.server.protocol import HEADER_SIZE, MAX_FRAME, FrameDecoder, \
    ProtocolError, delta_frame, encode_frame, gap_frame, param, \
    validate_request
from repro.server.server import _Session, _Subscriber
from repro.workloads.bib import BIB_XML, NEW_BOOK_FRAGMENT, PRICES_XML, \
    YEAR_GROUP_QUERY

TITLES_QUERY = ('<r>{for $b in doc("bib.xml")/bib/book '
                'return $b/title}</r>')

ROWS_XML = "<data><row><name>seed</name><v>0</v></row></data>"
ROWS_QUERY = '<r>{for $x in doc("data.xml")/data/row return $x}</r>'


def insert_row(name: str, extra: str = "") -> str:
    return ('for $d in document("data.xml")/data update $d '
            f'insert <row><name>{name}</name><v>0</v>{extra}</row> '
            'into $d')


def delete_row(name: str) -> str:
    return ('for $r in document("data.xml")/data/row '
            f'where $r/name = "{name}" update $r delete $r')


def replace_row_value(name: str, value: str) -> str:
    return ('for $r in document("data.xml")/data/row '
            f'where $r/name = "{name}" update $r '
            f'replace $r/v with "{value}"')


class NeverRecompute(CostModel):
    """Pin maintenance to propagation so pushes carry mutation payloads
    (the tiny test views would otherwise calibrate into recompute)."""

    def should_recompute(self, trees):
        return False


def rows_server(**kwargs):
    """A served database pre-loaded with the rows document and view."""
    db = Database()
    db.load("data.xml", ROWS_XML)
    db.create_view("rows", ROWS_QUERY, cost_model=NeverRecompute())
    return start_in_thread(db, own_db=True, **kwargs)


# -- the protocol layer (no sockets) -----------------------------------------------------


class TestFraming:
    def test_round_trip(self):
        decoder = FrameDecoder()
        messages = [{"id": 1, "op": "ping"}, {"type": "reply", "id": 1,
                                              "result": {"x": "é"}}]
        data = b"".join(encode_frame(m) for m in messages)
        assert decoder.feed(data) == messages

    def test_byte_at_a_time(self):
        decoder = FrameDecoder()
        out = []
        for byte in encode_frame({"id": 7, "op": "ping"}):
            out.extend(decoder.feed(bytes([byte])))
        assert out == [{"id": 7, "op": "ping"}]

    def test_oversized_frame_refused_both_ways(self):
        with pytest.raises(ProtocolError):
            encode_frame({"x": "a" * 100}, max_frame=50)
        decoder = FrameDecoder(max_frame=50)
        with pytest.raises(ProtocolError):
            decoder.feed((100).to_bytes(HEADER_SIZE, "big"))

    def test_non_json_and_non_object_bodies_refused(self):
        for body in (b"not json", b"[1,2]"):
            decoder = FrameDecoder()
            data = len(body).to_bytes(HEADER_SIZE, "big") + body
            with pytest.raises(ProtocolError):
                decoder.feed(data)

    def test_validate_request(self):
        assert validate_request({"id": 3, "op": "ping"}) == (3, "ping")
        with pytest.raises(ProtocolError):
            validate_request({"op": "ping"})
        with pytest.raises(ProtocolError):
            validate_request({"id": 3})

    def test_param_typing(self):
        frame = {"n": 5, "s": "x", "flag": True}
        assert param(frame, "n", int) == 5
        assert param(frame, "missing", str, "d") == "d"
        with pytest.raises(ProtocolError):
            param(frame, "missing", str)
        with pytest.raises(ProtocolError):
            param(frame, "s", int)
        with pytest.raises(ProtocolError):
            param(frame, "flag", int)       # bool is not an int here

    def test_delta_frame_reset_semantics(self):
        event = types.SimpleNamespace(
            view="v", reason="propagate", trees=1, delta_tuples=2,
            sequence=4, mutations=[{"op": "remove", "path": []}])
        frame = delta_frame(9, event)
        assert frame["type"] == "delta" and not frame["reset"]
        assert frame["mutations"] == event.mutations
        event.reason = "recompute"
        assert delta_frame(9, event)["reset"] is True
        event.reason, event.mutations = "propagate", None
        frame = delta_frame(9, event)
        assert frame["reset"] is True and frame["mutations"] is None


def _event(sequence: int, **overrides):
    fields = {"view": "rows", "reason": "propagate", "trees": 1,
              "delta_tuples": 1, "sequence": sequence,
              "mutations": [{"op": "insert", "seq": sequence}]}
    fields.update(overrides)
    return types.SimpleNamespace(**fields)


def _offline_session():
    """A :class:`_Session` whose tasks never run — deliver/send only."""
    server = types.SimpleNamespace(db=Database(), max_frame=MAX_FRAME)
    server.metrics = server.db.registry.metrics
    return _Session(server, None, None, 1)


class TestBackpressureUnit:
    def test_coalesce_folds_into_newest_queued_frame(self):
        session = _offline_session()
        sub = _Subscriber(1, "rows", "coalesce", limit=1,
                          baseline_sequence=0)
        for sequence in (1, 2, 3):
            session.deliver(sub, _event(sequence))
        assert session.queue.qsize() == 1      # one frame stands for all
        frame = sub.newest
        assert frame["coalesced"] and frame["reset"]
        assert frame["from_sequence"] == 1 and frame["sequence"] == 3
        assert frame["mutations"] is None
        assert frame["trees"] == 3
        metrics = session.server.metrics
        assert metrics.counter("server_pushes_coalesced").value == 2

    def test_disconnect_emits_gap_and_drops_subscriber(self):
        session = _offline_session()
        sub = _Subscriber(1, "rows", "disconnect", limit=2,
                          baseline_sequence=0)
        for sequence in (1, 2, 3, 4):
            session.deliver(sub, _event(sequence))
        assert sub.dropped
        frames = [session.queue.get_nowait()[1] for _ in range(3)]
        assert session.queue.empty()           # event 4 went nowhere
        assert [f["type"] for f in frames] == ["delta", "delta", "gap"]
        gap = frames[-1]
        assert gap["after_sequence"] == 2 and gap["sequence"] == 3
        assert gap["dropped"] == 1
        metrics = session.server.metrics
        assert metrics.counter("server_subscribers_dropped").value == 1

    def test_gap_frame_shape(self):
        frame = gap_frame(5, "rows", 10, 14, 4)
        assert frame == {"type": "gap", "subscription": 5, "view": "rows",
                         "after_sequence": 10, "sequence": 14,
                         "dropped": 4}


# -- a raw wire client (tests that need to stop reading) ---------------------------------


class RawClient:
    """A frame-level client with no reader thread: the test decides
    exactly when bytes are read — which is how backpressure is
    provoked deterministically."""

    def __init__(self, host: str, port: int,
                 rcvbuf: int | None = None):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        if rcvbuf is not None:
            # A fixed, tiny receive buffer disables autotuning, so the
            # server's writes back up quickly once we stop reading.
            self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF,
                                 rcvbuf)
        self.sock.connect((host, port))
        self.decoder = FrameDecoder()
        self.pending: list[dict] = []
        self.next_id = 0
        self.eof = False

    def recv_frame(self, timeout: float = 30.0):
        """The next frame, or None at EOF."""
        if self.pending:
            return self.pending.pop(0)
        self.sock.settimeout(timeout)
        while not self.pending:
            if self.eof:
                return None
            data = self.sock.recv(65536)
            if not data:
                self.eof = True
                return None
            self.pending.extend(self.decoder.feed(data))
        return self.pending.pop(0)

    def request(self, op: str, **params) -> dict:
        self.next_id += 1
        frame = {"id": self.next_id, "op": op}
        frame.update(params)
        self.sock.sendall(encode_frame(frame))
        pushes = []
        while True:
            got = self.recv_frame()
            assert got is not None, "connection closed awaiting reply"
            if got.get("id") == self.next_id:
                self.pending = pushes + self.pending
                assert got["type"] == "reply", got
                return got["result"]
            pushes.append(got)

    def close(self):
        self.sock.close()


# -- end to end over real sockets --------------------------------------------------------


class TestEndToEnd:
    def test_full_round_trip(self):
        with start_in_thread(http_port=0) as handle:
            with ReproClient(handle.host, handle.port) as client:
                assert client.server_info["protocol"] == 2
                client.load("bib.xml", BIB_XML)
                client.load("prices.xml", PRICES_XML)
                assert sorted(client.documents()) == ["bib.xml",
                                                      "prices.xml"]
                client.create_view("by_year", YEAR_GROUP_QUERY)
                views = client.views()
                assert views[0]["name"] == "by_year"
                assert views[0]["policy"] == "immediate"
                result = client.read("by_year")
                assert result["xml"].startswith("<result>")
                # ad-hoc query sees the same state
                assert client.query(YEAR_GROUP_QUERY) == result["xml"]
                assert "yGroup" in client.explain("by_year")
                snapshot = client.metrics()
                assert "view_flushes" in snapshot
                client.ping()

    def test_push_deltas_are_gap_free_and_carry_mutations(self):
        with rows_server() as handle:
            with ReproClient(handle.host, handle.port) as client:
                subscription = client.subscribe("rows")
                assert subscription.last_sequence == 0
                for index in range(5):
                    client.update([insert_row(f"r{index}")])
                frames = [subscription.frames.get(timeout=10)
                          for _ in range(5)]
                assert [f["sequence"] for f in frames] == [1, 2, 3, 4, 5]
                for frame in frames:
                    assert frame["type"] == "delta"
                    assert not frame["reset"]
                    (record,) = frame["mutations"]
                    assert record["op"] == "insert"
                    assert record["parent"] == [["r", "*c"]]
                    assert "<name>r" in record["xml"]
                    assert isinstance(record["key"], list)
                # the pushed stream mirrors what a read now sees
                assert client.read("rows")["sequence"] == 5

    def test_recompute_refresh_pushes_reset_frame(self):
        class AlwaysRecompute(CostModel):
            def should_recompute(self, trees):
                return True

        db = Database()
        db.load("data.xml", ROWS_XML)
        db.create_view("rows", ROWS_QUERY,
                       cost_model=AlwaysRecompute())
        with start_in_thread(db, own_db=True) as handle:
            with ReproClient(handle.host, handle.port) as client:
                subscription = client.subscribe("rows")
                client.update([insert_row("x")])
                frame = subscription.get(timeout=10)
                assert frame["reason"] == "recompute"
                assert frame["reset"] is True
                assert frame["mutations"] is None
                # the reset contract: re-read instead of replaying
                assert "<name>x</name>" in client.read("rows")["xml"]

    def test_error_frames_are_typed(self):
        with rows_server() as handle:
            with ReproClient(handle.host, handle.port) as client:
                with pytest.raises(ServerError) as err:
                    client.request("no_such_op")
                assert err.value.code == "bad_request"
                with pytest.raises(ServerError) as err:
                    client.read("nope")
                assert err.value.code == "not_found"
                with pytest.raises(ServerError) as err:
                    client.update(["delete everything"])
                assert err.value.code == "update"
                with pytest.raises(ServerError) as err:
                    client.request("subscribe", view="rows", mode="maybe")
                assert err.value.code == "bad_request"
                with pytest.raises(ServerError) as err:
                    client.checkpoint()        # not a durable database
                assert err.value.code == "bad_request"
                # the session survives every one of those
                client.ping()

    def test_updates_from_concurrent_sessions_serialize(self):
        with rows_server() as handle:
            with ReproClient(handle.host, handle.port) as one, \
                    ReproClient(handle.host, handle.port) as two:
                indices = []
                for turn in range(4):
                    indices.append(
                        one.update([insert_row(f"a{turn}")])
                        ["applied_index"])
                    indices.append(
                        two.update([insert_row(f"b{turn}")])
                        ["applied_index"])
                assert indices == sorted(indices)
                assert len(set(indices)) == len(indices)
                xml = one.read("rows")["xml"]
                assert xml == two.read("rows")["xml"]
                assert xml == one.query(ROWS_QUERY)

    def test_unsubscribe_stops_pushes(self):
        with rows_server() as handle:
            with ReproClient(handle.host, handle.port) as client:
                subscription = client.subscribe("rows")
                client.update([insert_row("before")])
                assert subscription.frames.get(timeout=10)[
                    "sequence"] == 1
                subscription.cancel()
                client.update([insert_row("after")])
                client.ping()                  # round trip past the flush
                with pytest.raises(ConnectionClosed):
                    subscription.get(timeout=1)

    def test_abrupt_disconnect_leaves_server_healthy(self):
        with rows_server() as handle:
            victim = socket.create_connection((handle.host, handle.port))
            victim.sendall(b"\x00\x00\x00\x04junk")
            victim.close()
            with ReproClient(handle.host, handle.port) as client:
                client.update([insert_row("alive")])
                assert "<name>alive</name>" in \
                    client.read("rows")["xml"]

    def test_metrics_http_endpoint(self):
        with rows_server(http_port=0) as handle:
            with ReproClient(handle.host, handle.port) as client:
                client.update([insert_row("m")])
                base = f"http://{handle.host}:{handle.http_port}"
                text = urllib.request.urlopen(
                    f"{base}/metrics", timeout=10).read().decode()
                for family in ("repro_server_sessions",
                               "repro_server_frames_in",
                               "repro_server_frames_out",
                               "repro_server_queue_depth",
                               "repro_server_push_lag_seconds",
                               "repro_view_flushes"):
                    assert f"# TYPE {family}" in text, family
                assert urllib.request.urlopen(
                    f"{base}/healthz", timeout=10).read() == b"ok\n"
                with pytest.raises(urllib.error.HTTPError):
                    urllib.request.urlopen(f"{base}/elsewhere",
                                           timeout=10)

    def test_graceful_shutdown_checkpoints_durable_state(self, tmp_path):
        db = Database(durable_path=tmp_path)
        db.load("data.xml", ROWS_XML)
        db.create_view("rows", ROWS_QUERY)
        with start_in_thread(db, own_db=True) as handle:
            with ReproClient(handle.host, handle.port) as client:
                client.update([insert_row("durable-row")])
        # the handle's stop() closed the durable database with a final
        # checkpoint; a fresh session over the directory recovers it
        with Database(durable_path=tmp_path) as reopened:
            assert reopened.views() == ["rows"]
            assert "<name>durable-row</name>" in reopened.read("rows")
            assert reopened.read("rows") == \
                reopened.view("rows").recompute()


# -- backpressure over the wire ----------------------------------------------------------


BIG_TEXT = "A" * (8 * 1024 * 1024)     # one frame far beyond any buffer


class TestBackpressureWire:
    def _provoke(self, handle, mode):
        """Subscribe with limit=1 without reading, push one huge delta
        (blocking the session's writer mid-frame) and several small
        ones behind it; then drain and return every received frame."""
        raw = RawClient(handle.host, handle.port, rcvbuf=16384)
        try:
            raw.request("hello")
            result = raw.request("subscribe", view="rows", mode=mode,
                                 limit=1)
            assert result["sequence"] == 0
            with ReproClient(handle.host, handle.port) as writer:
                writer.update([insert_row("big", f"<big>{BIG_TEXT}"
                                                 "</big>")])
                for index in range(5):
                    writer.update([insert_row(f"small{index}")])
                final = writer.read("rows")["sequence"]
            frames = []
            while True:
                frame = raw.recv_frame(timeout=60)
                if frame is None:
                    break
                frames.append(frame)
                if frame["type"] == "gap" or \
                        frame.get("sequence") == final:
                    break
            return frames, final
        finally:
            raw.close()

    def test_coalesce_covers_every_sequence(self):
        with rows_server() as handle:
            frames, final = self._provoke(handle, "coalesce")
        assert final == 6
        covered = []
        for frame in frames:
            assert frame["type"] == "delta"
            start = frame.get("from_sequence", frame["sequence"])
            covered.extend(range(start, frame["sequence"] + 1))
            if frame.get("coalesced"):
                assert frame["reset"] and frame["mutations"] is None
        assert covered == list(range(1, final + 1))
        assert any(frame.get("coalesced") for frame in frames)

    def test_disconnect_sends_gap_then_closes(self):
        with rows_server() as handle:
            frames, final = self._provoke(handle, "disconnect")
            assert frames and frames[-1]["type"] == "gap"
            deltas, gap = frames[:-1], frames[-1]
            assert [f["type"] for f in deltas] == \
                ["delta"] * len(deltas)
            sequences = [f["sequence"] for f in deltas]
            assert sequences == list(range(1, len(deltas) + 1))
            assert gap["after_sequence"] == sequences[-1]
            assert gap["sequence"] > gap["after_sequence"]
            assert gap["dropped"] == \
                gap["sequence"] - gap["after_sequence"]


# -- the multi-client stress test against the oracle -------------------------------------


class TestConcurrentStress:
    THREADS = 4
    BATCHES = 6

    def _drive(self, host, port, thread_id, ledger, errors):
        try:
            with ReproClient(host, port) as client:
                for turn in range(self.BATCHES):
                    statements = [
                        insert_row(f"t{thread_id}b{turn}")]
                    if turn >= 1:
                        statements.append(replace_row_value(
                            f"t{thread_id}b{turn - 1}", str(turn)))
                    if turn >= 2:
                        statements.append(delete_row(
                            f"t{thread_id}b{turn - 2}"))
                    reply = client.update(statements)
                    ledger.append((reply["applied_index"], statements))
        except Exception as exc:   # noqa: BLE001 — surfaced by the test
            errors.append(exc)

    def test_interleaved_batches_match_single_session_oracle(self):
        ledger: list = []
        errors: list = []
        with rows_server() as handle:
            watcher = ReproClient(handle.host, handle.port)
            subscription = watcher.subscribe("rows")
            threads = [threading.Thread(
                target=self._drive,
                args=(handle.host, handle.port, t, ledger, errors))
                for t in range(self.THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors
            served = watcher.read("rows")
            # 1) the served extent matches full recomputation
            assert served["xml"] == watcher.query(ROWS_QUERY)
            # 2) the watcher saw every refresh, gap-free
            sequences = []
            while not sequences or sequences[-1] < served["sequence"]:
                frame = subscription.get(timeout=30)
                assert frame["type"] == "delta"
                sequences.append(frame["sequence"])
            assert sequences == list(range(1, served["sequence"] + 1))
            watcher.close()
        # 3) a single-session oracle replaying the server's serialized
        #    order lands on the identical extent
        assert len(ledger) == self.THREADS * self.BATCHES
        indices = [index for index, _ in ledger]
        assert len(set(indices)) == len(indices)
        with Database() as oracle:
            oracle.load("data.xml", ROWS_XML)
            oracle.create_view("rows", ROWS_QUERY)
            for _, statements in sorted(ledger):
                with oracle.batch():
                    for statement in statements:
                        oracle.execute(statement)
            assert oracle.read("rows") == served["xml"]


# -- ClientSubscription lifecycle edges ---------------------------------------------------


class TestSubscriptionLifecycle:
    def test_get_keeps_raising_after_client_close(self):
        """Closing the client ends the stream for every consumer —
        ``get`` raises (repeatedly, from any thread), never hangs."""
        with rows_server() as handle:
            client = ReproClient(handle.host, handle.port)
            subscription = client.subscribe("rows")
            client.close()
            for _ in range(3):
                with pytest.raises(ConnectionClosed):
                    subscription.get(timeout=5)

    def test_concurrent_getters_all_unblock_on_close(self):
        import time
        with rows_server() as handle:
            client = ReproClient(handle.host, handle.port)
            subscription = client.subscribe("rows")
            failures: list = []

            def getter():
                try:
                    with pytest.raises(ConnectionClosed):
                        subscription.get(timeout=15)
                except Exception as exc:   # noqa: BLE001
                    failures.append(exc)

            threads = [threading.Thread(target=getter)
                       for _ in range(4)]
            for thread in threads:
                thread.start()
            time.sleep(0.1)     # everyone parked in frames.get
            client.close()
            for thread in threads:
                thread.join(timeout=15)
                assert not thread.is_alive(), "getter stuck after close"
            assert not failures, failures

    def test_cancel_races_inflight_pushes_idempotently(self):
        import time
        with rows_server() as handle:
            with ReproClient(handle.host, handle.port) as client:
                subscription = client.subscribe("rows")
                with ReproClient(handle.host,
                                 handle.port) as writer:
                    stop = threading.Event()

                    def mutate():
                        index = 0
                        while not stop.is_set():
                            writer.update([insert_row(f"r{index}")])
                            index += 1

                    thread = threading.Thread(target=mutate)
                    thread.start()
                    try:
                        time.sleep(0.05)    # pushes are in flight
                        subscription.cancel()
                        subscription.cancel()   # idempotent
                    finally:
                        stop.set()
                        thread.join(timeout=10)
                assert subscription.closed
                assert subscription.id not in client._subscriptions
                # buffered frames drain, then iteration terminates
                remaining = list(subscription)
                assert all(f["type"] == "delta" for f in remaining)
                # further gets raise instead of hanging
                with pytest.raises(ConnectionClosed):
                    subscription.get(timeout=1)
                # the connection itself is unaffected
                client.ping()

    def test_iteration_ends_after_gap_then_disconnect(self):
        """The strict policy's parting sequence at the consumer level:
        buffered deltas, then the gap frame, then clean termination."""
        subscription = ClientSubscription(types.SimpleNamespace(),
                                          7, "rows", 0)
        subscription.frames.put({"type": "delta", "subscription": 7,
                                 "view": "rows", "sequence": 1,
                                 "reset": False, "mutations": []})
        subscription.frames.put(gap_frame(7, "rows", 1, 5, dropped=4))
        subscription._close()
        frames = list(subscription)
        assert [f["type"] for f in frames] == ["delta", "gap"]
        assert frames[1]["dropped"] == 4
        assert subscription.last_sequence == 5
        with pytest.raises(ConnectionClosed):
            subscription.get(timeout=1)
