"""Tests for the counting solution (Chapter 6): count annotations across
operators and multiple-derivation deletes."""

from repro import MaterializedXQueryView, StorageManager, UpdateRequest, \
    XmlDocument
from repro.xat import (ColumnRef, Comparison, Distinct, GroupBy, Join,
                       NavigateCollection, NavigateUnnest, Path, Source,
                       single_item)
from repro.xat.base import ExecutionContext


def storage_with(bib_xml):
    sm = StorageManager()
    sm.register(XmlDocument.from_string("bib.xml", bib_xml))
    return sm


THREE_BOOKS = ("<bib><book year='1994'><title>A</title></book>"
               "<book year='1994'><title>B</title></book>"
               "<book year='2000'><title>C</title></book></bib>")


class TestCountAnnotationsAtQueryTime:
    def test_distinct_sums_duplicates(self):
        sm = storage_with(THREE_BOOKS)
        years = NavigateUnnest(
            NavigateUnnest(Source("bib.xml", "$S"), "$S",
                           Path.parse("bib/book"), "$b"),
            "$b", Path.parse("@year"), "$y")
        table = ExecutionContext(sm).evaluate(
            Distinct(years, "$y").prepare())
        counts = {single_item(t["$y"]).value: t.count for t in table}
        assert counts == {"1994": 2, "2000": 1}

    def test_join_multiplies_counts(self):
        sm = storage_with(THREE_BOOKS)
        years = NavigateUnnest(
            NavigateUnnest(Source("bib.xml", "$S"), "$S",
                           Path.parse("bib/book"), "$b"),
            "$b", Path.parse("@year"), "$y")
        dy = Distinct(years, "$y")
        books = NavigateUnnest(
            NavigateUnnest(Source("bib.xml", "$S2"), "$S2",
                           Path.parse("bib/book"), "$b2"),
            "$b2", Path.parse("@year"), "$y2")
        join = Join(dy, books, Comparison(ColumnRef("$y"), "=",
                                          ColumnRef("$y2"))).prepare()
        table = ExecutionContext(sm).evaluate(join)
        # each 1994 book tuple inherits the distinct multiplicity 2
        counts = sorted(t.count for t in table)
        assert counts == [1, 2, 2]

    def test_groupby_sums_member_counts(self):
        sm = storage_with(THREE_BOOKS)
        years = NavigateUnnest(
            NavigateUnnest(Source("bib.xml", "$S"), "$S",
                           Path.parse("bib/book"), "$b"),
            "$b", Path.parse("@year"), "$y")
        grouped = GroupBy(years, ("$y",), combine_col="$b").prepare()
        table = ExecutionContext(sm).evaluate(grouped)
        counts = {single_item(t["$y"]).value: t.count for t in table}
        assert counts == {"1994": 2, "2000": 1}


class TestMultipleDerivations:
    """A view node with several derivations survives losing one of them."""

    QUERY = """<result>{
    for $y in distinct-values(doc("bib.xml")/bib/book/@year)
    return <g Y="{$y}">{
      for $b in doc("bib.xml")/bib/book where $y = $b/@year
      return $b/title}</g>
    }</result>"""

    def _view(self):
        sm = storage_with(THREE_BOOKS)
        view = MaterializedXQueryView(sm, self.QUERY)
        view.materialize()
        return sm, view

    def test_group_node_counts_match_derivations(self):
        _sm, view = self._view()
        forest = view.extent
        groups = {c.attributes["Y"]: c for c in forest.children[0].children
                  if c.tag == "g"}
        # yGroup count reflects the Z-multiplicity (distinct count x members)
        assert groups["1994"].count > groups["2000"].count

    def test_delete_one_derivation_keeps_group(self):
        sm, view = self._view()
        books = sm.children(sm.root_key("bib.xml"), "book")
        view.apply_updates([UpdateRequest.delete("bib.xml", books[0])])
        xml = view.to_xml()
        assert 'Y="1994"' in xml and ">B<" in xml and ">A<" not in xml
        assert view.to_xml() == view.recompute_xml()

    def test_delete_all_derivations_removes_group(self):
        sm, view = self._view()
        books = sm.children(sm.root_key("bib.xml"), "book")
        view.apply_updates([UpdateRequest.delete("bib.xml", books[0]),
                            UpdateRequest.delete("bib.xml", books[1])])
        assert 'Y="1994"' not in view.to_xml()
        assert view.to_xml() == view.recompute_xml()

    def test_fragment_deleted_from_root_not_node_by_node(self):
        sm, view = self._view()
        books = sm.children(sm.root_key("bib.xml"), "book")
        report = view.apply_updates(
            [UpdateRequest.delete("bib.xml", books[2])])  # only 2000 book
        # one root disconnect removed the whole <g Y="2000"> fragment
        assert report.fusion.removed_roots == 1
        assert report.fusion.removed_nodes >= 3
        assert view.to_xml() == view.recompute_xml()

    def test_reinsert_after_full_delete(self):
        sm, view = self._view()
        books = sm.children(sm.root_key("bib.xml"), "book")
        view.apply_updates([UpdateRequest.delete("bib.xml", books[2])])
        remaining = sm.children(sm.root_key("bib.xml"), "book")
        view.apply_updates([UpdateRequest.insert(
            "bib.xml", remaining[-1],
            "<book year='2000'><title>C2</title></book>", "after")])
        assert 'Y="2000"' in view.to_xml()
        assert view.to_xml() == view.recompute_xml()
