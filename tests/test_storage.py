"""Tests for the storage manager (MASS substitute)."""

import pytest

from repro.flexkeys import FlexKey
from repro.storage import StorageManager, StorageError
from repro.xmlmodel import XmlDocument, XmlNode, parse_fragment


@pytest.fixture
def storage():
    sm = StorageManager()
    sm.register(XmlDocument.from_string("bib.xml", (
        "<bib><book year='1994'><title>T1</title></book>"
        "<book year='2000'><title>T2</title></book></bib>")))
    return sm


class TestRegistration:
    def test_root_keys_distinct(self, storage):
        storage.register(XmlDocument.from_string("p.xml", "<p/>"))
        assert storage.root_key("bib.xml") != storage.root_key("p.xml")
        assert set(storage.document_names) == {"bib.xml", "p.xml"}

    def test_duplicate_rejected(self, storage):
        with pytest.raises(StorageError):
            storage.register(XmlDocument.from_string("bib.xml", "<x/>"))

    def test_every_node_keyed_in_document_order(self, storage):
        root = storage.root_key("bib.xml")
        keys = list(storage.iter_subtree_keys(root))
        assert len(keys) == storage.document("bib.xml").node_count()
        assert keys == sorted(keys, key=lambda k: k.value)

    def test_document_of_key(self, storage):
        book = storage.children(storage.root_key("bib.xml"), "book")[0]
        assert storage.document_of_key(book) == "bib.xml"

    def test_unknown_lookups(self, storage):
        with pytest.raises(StorageError):
            storage.document("nope.xml")
        with pytest.raises(StorageError):
            storage.root_key("nope.xml")
        with pytest.raises(StorageError):
            storage.node(FlexKey("zz.zz"))


class TestNavigation:
    def test_children_by_tag(self, storage):
        root = storage.root_key("bib.xml")
        assert len(storage.children(root, "book")) == 2
        assert storage.children(root, "nope") == []

    def test_descendants(self, storage):
        root = storage.root_key("bib.xml")
        titles = storage.descendants(root, "title")
        assert [storage.text(t) for t in titles] == ["T1", "T2"]

    def test_attribute_and_text(self, storage):
        book = storage.children(storage.root_key("bib.xml"), "book")[0]
        assert storage.attribute(book, "year") == "1994"
        assert storage.attribute(book, "nope") is None
        assert storage.text(book) == "T1"

    def test_parent_key(self, storage):
        root = storage.root_key("bib.xml")
        book = storage.children(root, "book")[0]
        assert storage.parent_key(book) == root
        assert storage.parent_key(root) is None

    def test_find_by_path_child(self, storage):
        keys = storage.find_by_path(
            "bib.xml", [("child", "bib"), ("child", "book")])
        assert len(keys) == 2

    def test_find_by_path_first_step_names_document_element(self, storage):
        assert storage.find_by_path("bib.xml", [("child", "nope")]) == []
        assert len(storage.find_by_path("bib.xml", [("child", "bib")])) == 1

    def test_find_by_path_descendant(self, storage):
        keys = storage.find_by_path("bib.xml", [("descendant", "title")])
        assert len(keys) == 2


class TestUpdates:
    def test_insert_between_keeps_neighbours(self, storage):
        root = storage.root_key("bib.xml")
        before = storage.children(root, "book")
        frag = parse_fragment("<book year='1995'><title>T3</title></book>")[0]
        new_key = storage.insert_fragment(root, frag, after=before[0])
        after = storage.children(root, "book")
        assert after == [before[0], new_key, before[1]]
        assert before[0] < new_key < before[1]
        # subtree got keys too
        assert storage.text(storage.children(new_key, "title")[0]) == "T3"

    def test_insert_positions(self, storage):
        root = storage.root_key("bib.xml")
        books = storage.children(root, "book")
        front = storage.insert_fragment(root, XmlNode.element("book"),
                                        before=books[0])
        back = storage.insert_fragment(root, XmlNode.element("book"))
        got = storage.children(root, "book")
        assert got[0] == front and got[-1] == back

    def test_insert_bad_anchor(self, storage):
        root = storage.root_key("bib.xml")
        title = storage.descendants(root, "title")[0]
        with pytest.raises(StorageError):
            storage.insert_fragment(root, XmlNode.element("x"), after=title)
        with pytest.raises(StorageError):
            storage.insert_fragment(root, XmlNode.element("x"),
                                    after=title, before=title)

    def test_delete_subtree_drops_keys(self, storage):
        root = storage.root_key("bib.xml")
        book = storage.children(root, "book")[0]
        title = storage.children(book, "title")[0]
        storage.delete_subtree(book)
        assert not storage.has_node(book)
        assert not storage.has_node(title)
        assert len(storage.children(root, "book")) == 1

    def test_delete_root_rejected(self, storage):
        with pytest.raises(StorageError):
            storage.delete_subtree(storage.root_key("bib.xml"))

    def test_replace_text(self, storage):
        title = storage.descendants(storage.root_key("bib.xml"), "title")[0]
        storage.replace_text(title, "New Title")
        assert storage.text(title) == "New Title"
        # replacing again works (old text key released)
        storage.replace_text(title, "Again")
        assert storage.text(title) == "Again"

    def test_replace_attribute(self, storage):
        book = storage.children(storage.root_key("bib.xml"), "book")[0]
        storage.replace_attribute(book, "year", "1999")
        assert storage.attribute(book, "year") == "1999"

    def test_keys_stable_across_updates(self, storage):
        """The no-relabeling guarantee: existing keys never change."""
        root = storage.root_key("bib.xml")
        books = storage.children(root, "book")
        frozen = [k.value for k in books]
        for _ in range(20):
            frag = XmlNode.element("book", {"year": "1990"})
            storage.insert_fragment(root, frag, after=books[0])
        assert [k.value for k in storage.children(root, "book")[:1]] \
            == frozen[:1]
        assert storage.children(root, "book")[-1].value == frozen[-1]
