"""Tests for the unified ``Database`` session API (repro.api)."""

import json

import pytest

from repro import StorageManager, UpdateError, UpdateRequest, ViewRegistry, \
    XmlDocument
from repro.api import Database, RefreshEvent, Subscription, Update, View
from repro.multiview.cost import CostModel
from repro.workloads.bib import (BIB_XML, NEW_BOOK_FRAGMENT, PRICES_XML,
                                 YEAR_GROUP_QUERY)

TITLES_QUERY = ('<r>{for $b in doc("bib.xml")/bib/book '
                'return $b/title}</r>')


def fresh_db() -> Database:
    db = Database()
    db.load("bib.xml", BIB_XML).load("prices.xml", PRICES_XML)
    return db


class TestDocuments:
    def test_load_text_and_chaining(self):
        db = fresh_db()
        assert db.documents() == ["bib.xml", "prices.xml"]

    def test_load_prepared_document(self):
        db = Database()
        db.load("d.xml", XmlDocument.from_string("d.xml", "<d><x/></d>"))
        assert db.documents() == ["d.xml"]

    def test_load_document_name_mismatch(self):
        db = Database()
        with pytest.raises(ValueError):
            db.load("other.xml",
                    XmlDocument.from_string("d.xml", "<d/>"))

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "bib.xml"
        path.write_text(BIB_XML)
        db = Database().load("bib.xml", path)
        assert db.documents() == ["bib.xml"]

    def test_update_unknown_document(self):
        db = fresh_db()
        with pytest.raises(KeyError):
            db.update("nope.xml")


class TestViews:
    def test_create_read_recompute(self):
        db = fresh_db()
        view = db.create_view("titles", TITLES_QUERY)
        assert isinstance(view, View)
        assert "TCP/IP Illustrated" in view.read()
        assert view.read() == view.recompute()

    def test_view_handle_lookup_and_drop(self):
        db = fresh_db()
        db.create_view("titles", TITLES_QUERY)
        assert db.views() == ["titles"]
        db.view("titles").drop()
        assert db.views() == []
        with pytest.raises(KeyError):
            db.view("titles")

    def test_deferred_view_flushes_on_read(self):
        # inserts queue on a deferred view (deletes are barriers and
        # would flush immediately)
        db = fresh_db()
        view = db.create_view("titles", TITLES_QUERY, policy="deferred")
        db.update("bib.xml").at("/bib/book[2]") \
            .insert(NEW_BOOK_FRAGMENT, position="after")
        assert view.pending_trees() == 1
        assert "Advanced Programming" not in view.peek()  # stale by design
        assert "Advanced Programming" in view.read()      # lazy flush
        assert view.pending_trees() == 0

    def test_ad_hoc_query(self):
        db = fresh_db()
        xml = db.query(TITLES_QUERY)
        assert "Data on the Web" in xml


class TestBuilder:
    def test_insert_after_path(self):
        db = fresh_db()
        view = db.create_view("titles", TITLES_QUERY)
        update = db.update("bib.xml").at("/bib/book[2]") \
            .insert(NEW_BOOK_FRAGMENT, position="after")
        assert isinstance(update, Update)
        assert update.applied and len(update.requests) == 1
        assert "Advanced Programming" in view.read()
        assert view.read() == view.recompute()

    def test_insert_into(self):
        db = fresh_db()
        view = db.create_view("titles", TITLES_QUERY)
        db.update("bib.xml").at("/bib") \
            .insert(NEW_BOOK_FRAGMENT, position="into")
        assert view.read().endswith(
            "<title>Advanced Programming in the Unix environment</title></r>")

    def test_delete_by_value_predicate(self):
        db = fresh_db()
        view = db.create_view("titles", TITLES_QUERY)
        db.update("bib.xml") \
            .at('/bib/book[title="Data on the Web"]').delete()
        assert "Data on the Web" not in view.read()
        assert view.read() == view.recompute()

    def test_replace_with_on_intermediate_predicate_path(self):
        db = fresh_db()
        view = db.create_view("titles", TITLES_QUERY)
        db.update("bib.xml").at("/bib/book[1]/title") \
            .replace_with("TCP/IP Illustrated, 2nd ed")
        assert "2nd ed" in view.read()
        assert view.read() == view.recompute()

    def test_multi_match_path_expands(self):
        db = fresh_db()
        update = db.update("prices.xml").at("/prices/entry/price") \
            .replace_with("1")
        assert len(update.requests) == 3

    def test_unmatched_path_is_typed_error(self):
        db = fresh_db()
        with pytest.raises(UpdateError) as err:
            db.update("bib.xml").at("/bib/pamphlet").delete()
        assert err.value.statement is not None
        assert "addressed no node" in str(err.value)

    def test_malformed_path_fails_at_call_site(self):
        db = fresh_db()
        with pytest.raises(UpdateError):
            db.update("bib.xml").at("/bib/book[")

    def test_bad_position_fails_eagerly(self):
        db = fresh_db()
        with pytest.raises(UpdateError) as err:
            db.update("bib.xml").at("/bib/book[1]") \
                .insert("<x/>", position="inside")
        assert "inside" in str(err.value)

    def test_fragment_node_not_aliased_across_targets(self):
        db = fresh_db()
        from repro.xmlmodel import parse_fragment
        node = parse_fragment("<note>x</note>")[0]
        update = db.update("prices.xml").at("/prices/entry") \
            .insert(node, position="into")
        fragments = [request.fragment for request in update.requests]
        assert len(fragments) == 3
        assert len({id(f) for f in fragments}) == 3


class TestExecute:
    DELETE_STMT = ('for $b in document("bib.xml")/bib/book '
                   'where $b/title = "Data on the Web" '
                   'update $b delete $b')

    def test_execute_round_trip(self):
        db = fresh_db()
        view = db.create_view("titles", TITLES_QUERY)
        update = db.execute(self.DELETE_STMT)
        assert update.applied and update.statement == self.DELETE_STMT
        assert "Data on the Web" not in view.read()
        assert view.read() == view.recompute()

    def test_execute_no_match_is_noop(self):
        db = fresh_db()
        update = db.execute(
            'for $b in document("bib.xml")/bib/book '
            'where $b/title = "No Such Title" update $b delete $b')
        assert update.applied and update.requests == []

    def test_execute_malformed_is_typed_error(self):
        db = fresh_db()
        with pytest.raises(UpdateError) as err:
            db.execute('for $b in document("bib.xml")/bib/book delete $b')
        assert err.value.statement is not None


class TestBatch:
    def test_batch_flushes_as_one_stream(self):
        db = fresh_db()
        view = db.create_view("by_year", YEAR_GROUP_QUERY)
        with db.batch() as batch:
            db.update("bib.xml").at("/bib/book[2]") \
                .insert(NEW_BOOK_FRAGMENT, position="after")
            db.update("prices.xml").at("/prices/entry[2]/price") \
                .replace_with("70")
            db.execute(TestExecute.DELETE_STMT)
            assert len(batch) == 3
            # nothing applied until the block exits
            assert "Advanced Programming" not in view.peek()
        assert batch.report is not None
        assert batch.report.updates >= 3
        assert all(update.applied for update in batch)
        assert "Advanced Programming" in view.read()
        assert "Data on the Web" not in view.read()
        assert view.read() == view.recompute()

    def test_rollback_on_mid_batch_failure(self):
        db = fresh_db()
        view = db.create_view("titles", TITLES_QUERY)
        before = view.read()
        nodes_before = db.storage.node_count()
        with pytest.raises(UpdateError) as err:
            with db.batch():
                db.update("bib.xml").at("/bib/book[1]").delete()
                db.update("bib.xml").at("/bib/missing").delete()
        offending = err.value.statement
        assert isinstance(offending, Update)
        assert offending.path == "/bib/missing"
        assert err.value.applied == 0
        # full rollback: neither statement reached storage or the view
        assert db.storage.node_count() == nodes_before
        assert view.read() == before == view.recompute()

    def test_body_exception_discards_batch(self):
        db = fresh_db()
        view = db.create_view("titles", TITLES_QUERY)
        before = view.read()
        with pytest.raises(RuntimeError):
            with db.batch():
                db.update("bib.xml").at("/bib/book[1]").delete()
                raise RuntimeError("user abort")
        assert view.read() == before

    def test_nested_batch_rejected(self):
        db = fresh_db()
        with db.batch():
            with pytest.raises(RuntimeError):
                with db.batch():
                    pass

    def test_empty_batch_is_noop(self):
        db = fresh_db()
        with db.batch() as batch:
            pass
        assert batch.report is None

    def test_batch_equivalent_to_direct_registry_stream(self):
        """The facade and the raw registry produce identical extents."""
        direct_storage = StorageManager()
        direct_storage.register(
            XmlDocument.from_string("bib.xml", BIB_XML))
        direct_storage.register(
            XmlDocument.from_string("prices.xml", PRICES_XML))
        registry = ViewRegistry(direct_storage)
        registry.register("by_year", YEAR_GROUP_QUERY)
        books = direct_storage.find_by_path(
            "bib.xml", [("child", "bib"), ("child", "book")])
        registry.apply_updates([
            UpdateRequest.insert("bib.xml", books[1], NEW_BOOK_FRAGMENT,
                                 "after"),
            UpdateRequest.delete("bib.xml", books[0]),
        ])

        db = fresh_db()
        view = db.create_view("by_year", YEAR_GROUP_QUERY)
        with db.batch():
            db.update("bib.xml").at("/bib/book[2]") \
                .insert(NEW_BOOK_FRAGMENT, position="after")
            db.update("bib.xml").at("/bib/book[1]").delete()
        assert view.read() == registry.query("by_year")


class TestSubscriptions:
    def test_refresh_event_on_propagate(self):
        db = fresh_db()
        db.create_view("titles", TITLES_QUERY)
        events = []
        subscription = db.subscribe("titles", events.append)
        assert isinstance(subscription, Subscription)
        db.update("bib.xml").at("/bib/book[1]").delete()
        assert events and isinstance(events[0], RefreshEvent)
        assert events[0].view == "titles"
        assert events[0].reason == "propagate"
        assert events[0].trees == 1

    def test_refresh_event_on_recompute(self):
        class AlwaysRecompute(CostModel):
            def should_recompute(self, trees):
                return True

        db = fresh_db()
        db.create_view("titles", TITLES_QUERY,
                       cost_model=AlwaysRecompute())
        events = []
        db.subscribe("titles", events.append)
        db.update("bib.xml").at("/bib/book[1]").delete()
        assert events and events[-1].reason == "recompute"
        # the delete-barrier's deferred recompute still reports how many
        # update trees the refresh consumed
        assert events[-1].trees == 1

    def test_deferred_view_fires_on_read(self):
        db = fresh_db()
        view = db.create_view("titles", TITLES_QUERY, policy="deferred")
        events = []
        db.subscribe("titles", events.append)
        db.update("bib.xml").at("/bib/book[2]") \
            .insert(NEW_BOOK_FRAGMENT, position="after")
        assert events == []          # queued, not yet refreshed
        view.read()
        assert [event.reason for event in events] == ["propagate"]

    def test_raising_subscriber_is_isolated(self):
        # Pinned: one faulty subscriber must neither abort the flush nor
        # starve the other subscribers (the server's fan-out relies on
        # this), and the failure is counted, not swallowed silently.
        db = fresh_db()
        view = db.create_view("titles", TITLES_QUERY)
        events = []

        def bad(event):
            raise RuntimeError("boom")

        db.subscribe("titles", bad)
        db.subscribe("titles", events.append)
        db.update("bib.xml").at("/bib/book[1]").delete()
        assert [event.reason for event in events] == ["propagate"]
        assert view.read() == view.recompute()
        snapshot = db.metrics()
        assert snapshot["subscriber_errors"]["values"][""] == 1

    def test_mutation_payload_on_propagate(self):
        db = fresh_db()
        db.create_view("titles", TITLES_QUERY)
        events = []
        db.subscribe("titles", events.append, deliver_mutations=True)
        db.update("bib.xml").at("/bib/book[1]").delete()
        (event,) = events
        assert event.mutations is not None
        (record,) = event.mutations
        assert record["op"] == "remove"
        assert record["path"][0] == ["r", "*c"]
        # the records are JSON-ready as promised to the wire protocol
        json.dumps(event.mutations)

    def test_mutation_payload_insert_carries_key_and_xml(self):
        db = fresh_db()
        db.create_view("titles", TITLES_QUERY)
        events = []
        db.subscribe("titles", events.append, deliver_mutations=True)
        db.update("bib.xml").at("/bib/book[2]") \
            .insert(NEW_BOOK_FRAGMENT, position="after")
        records = events[-1].mutations
        inserts = [r for r in records if r["op"] == "insert"]
        assert inserts, records
        record = inserts[0]
        assert record["parent"] == [["r", "*c"]]
        assert record["key"][0] == "title"
        assert "Advanced Programming" in record["xml"]

    def test_mutations_none_without_opt_in(self):
        db = fresh_db()
        db.create_view("titles", TITLES_QUERY)
        events = []
        db.subscribe("titles", events.append)    # capture stays off
        db.update("bib.xml").at("/bib/book[1]").delete()
        assert events[0].mutations is None

    def test_mutations_none_on_recompute(self):
        class AlwaysRecompute(CostModel):
            def should_recompute(self, trees):
                return True

        db = fresh_db()
        db.create_view("titles", TITLES_QUERY,
                       cost_model=AlwaysRecompute())
        events = []
        db.subscribe("titles", events.append, deliver_mutations=True)
        db.update("bib.xml").at("/bib/book[1]").delete()
        assert events[-1].reason == "recompute"
        assert events[-1].mutations is None      # subscribers re-read

    def test_cancel_is_idempotent(self):
        db = fresh_db()
        db.create_view("titles", TITLES_QUERY)
        events = []
        subscription = db.subscribe("titles", events.append)
        subscription.cancel()
        subscription.cancel()
        db.update("bib.xml").at("/bib/book[1]").delete()
        assert events == []

    def test_subscribe_unknown_view(self):
        db = fresh_db()
        with pytest.raises(KeyError):
            db.subscribe("nope", lambda event: None)

    def test_drop_view_cancels_its_subscriptions(self):
        db = fresh_db()
        db.create_view("titles", TITLES_QUERY)
        subscription = db.subscribe("titles", lambda event: None)
        db.drop_view("titles")
        assert not subscription.active


class TestLifecycle:
    def test_context_manager_closes(self):
        storage = StorageManager()
        storage.register(XmlDocument.from_string("bib.xml", BIB_XML))
        with Database(storage=storage) as db:
            db.create_view("titles", TITLES_QUERY)
            db.subscribe("titles", lambda event: None)
        db.close()   # double close is safe
        # the registry listener is gone: raw mutations notify nobody
        key = storage.find_by_path(
            "bib.xml", [("child", "bib"), ("child", "book")])[0]
        storage.delete_subtree(key)   # would count on a live registry

    def test_registry_is_context_manager(self):
        storage = StorageManager()
        storage.register(XmlDocument.from_string("bib.xml", BIB_XML))
        with ViewRegistry(storage) as registry:
            registry.register("titles", TITLES_QUERY)
        registry.close()   # discard semantics: double close is safe

    def test_remove_listener_discard_semantics(self):
        storage = StorageManager()

        def listener(op, key):
            pass

        storage.remove_listener(listener)   # never added: no raise
        storage.add_listener(listener)
        storage.remove_listener(listener)
        storage.remove_listener(listener)   # double remove: no raise


class TestPrimitiveValidation:
    def test_bad_position_on_delete_rejected(self):
        from repro.flexkeys import FlexKey
        from repro.xat.base import DELETE, MODIFY
        with pytest.raises(UpdateError):
            UpdateRequest(DELETE, "d.xml", FlexKey("b"),
                          position="sideways")
        with pytest.raises(UpdateError):
            UpdateRequest(MODIFY, "d.xml", FlexKey("b"), new_value="x",
                          position="sideways")

    def test_update_error_is_value_error(self):
        assert issubclass(UpdateError, ValueError)
