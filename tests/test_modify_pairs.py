"""First-class modify pairs: the retract/assert treatment of
insufficient modifies and the multi-item equi-key semantics.

Pinned regressions for the two divergences recorded in ROADMAP.md before
this change:

* city-text modifies through ``distinct-values`` + ``order by``
  (``ORDER_QUERY_2`` / ``PERSONS_BY_CITY_QUERY``) lost or duplicated a
  group under the delete+reinsert decomposition — 25-person site, seed 1
  mixed streams diverged around step 12-18;
* multi-item join-key collections (a second ``<city>`` under an address,
  nested same-tag person inserts) left stale maintained pairs because
  ``_hash_key`` skipped multi-item cells.

Both must now converge with the recompute oracle for >= 50 mixed steps,
with the operator-state store enabled and disabled.
"""

from __future__ import annotations

import pytest

from repro import MaterializedXQueryView, StorageManager, UpdateRequest
from repro.updates.batch import RunBatcher, spec_for_run
from repro.updates.primitives import UpdateTree
from repro.workloads import xmark
from repro.xat import DeltaSpec
from repro.xat.base import DeltaRoot
from repro.xat.table import AtomicItem, NodeItem, XatTuple

from .helpers import assert_consistent, persons_of, run_differential

#: the ROADMAP repro stream: mixed person churn plus city-text modifies
CITY_MODIFY_MUTATORS = ("insert_person", "delete_person", "modify_city",
                        "modify_name")

#: the second repro: join-key collections growing/shrinking under churn
MULTI_KEY_MUTATORS = ("insert_person", "insert_city",
                      "insert_nested_person", "delete_person",
                      "delete_auction")


class TestPinnedRoadmapRepros:
    """The exact divergences ROADMAP.md recorded, pinned at >= 50 steps."""

    @pytest.mark.parametrize("operator_state", [True, False])
    @pytest.mark.parametrize("query", [xmark.ORDER_QUERY_2,
                                       xmark.PERSONS_BY_CITY_QUERY,
                                       xmark.CITY_HEADCOUNT_QUERY],
                             ids=["order-query-2", "persons-by-city",
                                  "city-headcount"])
    def test_city_modifies_converge(self, query, operator_state):
        run_differential(1, 50, CITY_MODIFY_MUTATORS, query,
                         num_persons=25, site_seed=1,
                         operator_state=operator_state)

    @pytest.mark.parametrize("operator_state", [True, False])
    def test_multi_item_join_keys_converge(self, operator_state):
        run_differential(3, 50, MULTI_KEY_MUTATORS,
                         xmark.PERSONS_BY_CITY_QUERY,
                         num_persons=15, site_seed=2,
                         operator_state=operator_state)

    def test_aggregate_group_moves_converge(self):
        """A predicate-feeding modify that moves members between groups
        must keep per-group aggregate state exact — including members
        that moved into a group in an earlier round (the review-found
        AggState regression, pinned deterministically)."""
        from repro import XmlDocument

        doc = ("<sales>"
               "<sale><region>east</region><amount>10</amount></sale>"
               "<sale><region>east</region><amount>20</amount></sale>"
               "<sale><region>west</region><amount>30</amount></sale>"
               "</sales>")
        query = """<result>{
        for $r in distinct-values(doc("sales.xml")/sales/sale/region)
        order by $r
        return <region name="{$r}">{sum(
          for $s in doc("sales.xml")/sales/sale
          where $r = $s/region
          return $s/amount)}</region>
        }</result>"""
        for operator_state in (True, False):
            storage = StorageManager()
            storage.register(XmlDocument.from_string("sales.xml", doc))
            view = MaterializedXQueryView(storage, query,
                                          operator_state=operator_state)
            view.materialize()
            regions = storage.find_by_path(
                "sales.xml", [("child", "sales"), ("child", "sale"),
                              ("child", "region")])
            amounts = storage.find_by_path(
                "sales.xml", [("child", "sales"), ("child", "sale"),
                              ("child", "amount")])
            moves = [(regions[0], "west"), (regions[1], "north"),
                     (regions[2], "east"), (amounts[0], "55"),
                     (regions[0], "east"), (regions[2], "west")]
            for target, value in moves:
                view.apply_updates(
                    [UpdateRequest.modify("sales.xml", target, value)])
                assert_consistent(view)
            view.close()

    def test_selection_predicate_modifies_converge(self):
        """Age modifies feed the selection predicate: first-class pairs
        re-route rows through Select, not only through joins."""
        storage = StorageManager()
        xmark.register_site(storage, 12, seed=4)
        view = MaterializedXQueryView(storage, xmark.SELECTION_QUERY)
        view.materialize()
        ages = storage.find_by_path(
            "site.xml", [("child", "site"), ("child", "people"),
                         ("child", "person"), ("child", "profile"),
                         ("child", "age")])
        for index, new_age in enumerate(["99", "12", "41", "40", "77"]):
            view.apply_updates([UpdateRequest.modify(
                "site.xml", ages[index % len(ages)], new_age)])
            assert_consistent(view)


class TestLegacyDecompositionRemoved:
    """The delete+reinsert escape hatch is gone after its one-release
    deprecation window; passing the old keyword must fail loudly (a
    silent ignore would change maintenance semantics under the caller),
    whatever value is passed."""

    @pytest.mark.parametrize("value", [True, False, None])
    def test_view_constructor_rejects_removed_flag(self, value):
        storage = StorageManager()
        xmark.register_site(storage, 3, seed=3)
        with pytest.raises(TypeError, match="modify_decomposition"):
            MaterializedXQueryView(storage, xmark.ORDER_QUERY_2,
                                   modify_decomposition=value)

    def test_registry_rejects_removed_flag(self):
        from repro import ViewRegistry
        storage = StorageManager()
        xmark.register_site(storage, 3, seed=3)
        with pytest.raises(TypeError, match="modify_decomposition"):
            ViewRegistry(storage, modify_decomposition=True)

    def test_database_rejects_removed_flag(self):
        from repro import Database
        with pytest.raises(TypeError, match="modify_decomposition"):
            Database(modify_decomposition=True)

    def test_pipeline_rejects_removed_flag(self):
        from repro.engine import Engine
        from repro.multiview.pipeline import ViewPipeline
        from repro.translate import translate_query
        storage = StorageManager()
        xmark.register_site(storage, 3, seed=3)
        with pytest.raises(TypeError, match="modify_decomposition"):
            ViewPipeline(Engine(storage),
                         translate_query(xmark.ORDER_QUERY_2),
                         modify_decomposition=False)


class TestPairPlumbing:
    """Unit coverage of the pair-carrying delta model."""

    def _city(self, storage):
        return storage.find_by_path(
            "site.xml", [("child", "site"), ("child", "people"),
                         ("child", "person"), ("child", "address"),
                         ("child", "city")])[0]

    def test_update_tree_pair(self):
        from repro.flexkeys import FlexKey
        tree = UpdateTree("site.xml", FlexKey("b.b"), "modify",
                          old_value="Boston", new_value="Oslo")
        assert tree.has_pair
        assert UpdateTree("site.xml", FlexKey("b.b"), "modify").has_pair \
            is False
        spec = spec_for_run([tree])
        assert spec.has_pairs
        assert spec.modify_pair(FlexKey("b.b")) == ("Boston", "Oslo")
        assert spec.modify_pair(FlexKey("b.d")) is None

    def test_old_text_substitutes_pair_roots(self):
        storage = StorageManager()
        xmark.register_site(storage, 3, seed=1)
        city = self._city(storage)
        old = storage.text(city)
        address = storage.parent_key(city)
        person = storage.parent_key(address)
        old_person_text = storage.text(person)
        storage.replace_text(city, "Elsewhere")
        spec = DeltaSpec("site.xml",
                         (DeltaRoot(city, "modify", old, "Elsewhere"),),
                         "modify")
        assert spec.old_text(storage, city) == old
        # an ancestor's subtree text sees the substitution in place
        assert spec.old_text(storage, person) == old_person_text
        # a node with no pair root below reads as unchanged (None)
        name = storage.children(person, "name")[0]
        assert spec.old_text(storage, name) is None

    def test_node_item_text_override_wins_value_reads(self):
        from repro.xat.conditions import item_value
        storage = StorageManager()
        xmark.register_site(storage, 3, seed=1)
        city = self._city(storage)

        class Ctx:
            pass

        ctx = Ctx()
        ctx.storage = storage
        assert item_value(NodeItem(city), ctx) == storage.text(city)
        assert item_value(NodeItem(city, text_override="Old"), ctx) == "Old"

    def test_run_batcher_coalesces_same_root_modifies(self):
        from repro.flexkeys import FlexKey
        batcher = RunBatcher()
        root = FlexKey("b.b.d")
        batcher.push(UpdateTree("site.xml", root, "modify",
                                old_value="A", new_value="B"))
        closed, accepted = batcher.push(
            UpdateTree("site.xml", root, "modify",
                       old_value="B", new_value="C"))
        assert closed is None and accepted is False
        run = batcher.close()
        assert len(run) == 1
        assert (run[0].old_value, run[0].new_value) == ("A", "C")

    def test_run_batcher_keeps_nested_modify_roots(self):
        from repro.flexkeys import FlexKey
        batcher = RunBatcher()
        outer, inner = FlexKey("b.b"), FlexKey("b.b.d")
        batcher.push(UpdateTree("site.xml", outer, "modify",
                                old_value="x", new_value="y"))
        _closed, accepted = batcher.push(
            UpdateTree("site.xml", inner, "modify",
                       old_value="p", new_value="q"))
        assert accepted is True
        assert len(batcher.close()) == 2


class TestMultiItemHashKeys:
    """Existential equi-key semantics for collection-valued key cells."""

    def test_multi_item_cell_hashes_per_distinct_value(self):
        from repro.xat.relational import _hash_keys
        tup = XatTuple({"$k": [AtomicItem("a"), AtomicItem("b"),
                               AtomicItem("a")]})
        assert _hash_keys(tup, ["$k"], None) == [("a",), ("b",)]

    def test_empty_cell_hashes_nowhere(self):
        from repro.xat.relational import _hash_keys
        assert _hash_keys(XatTuple({"$k": []}), ["$k"], None) == []

    def test_second_city_joins_existentially(self):
        """Growing a join-key collection must both create the new pairing
        and keep the old one (the second ROADMAP item, deterministic)."""
        storage = StorageManager()
        xmark.register_site(storage, 6, seed=5)
        view = MaterializedXQueryView(storage,
                                      xmark.PERSONS_BY_CITY_QUERY)
        view.materialize()
        person = persons_of(storage)[0]
        address = storage.children(person, "address")[0]
        first_city = storage.text(storage.children(address, "city")[0])
        other = next(c for c in xmark.CITIES if c != first_city)
        view.apply_updates([UpdateRequest.insert(
            "site.xml", address, f"<city>{other}</city>", "into")])
        assert_consistent(view)
        # ... and shrinking it retracts exactly the lost pairing
        second = storage.children(address, "city")[1]
        view.apply_updates([UpdateRequest.delete("site.xml", second)])
        assert_consistent(view)
