"""Tests for the XML node model, parser and serializer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlmodel import (XmlDocument, XmlNode, XmlParseError,
                            parse_document, parse_fragment, serialize,
                            serialize_fragment)


class TestNode:
    def test_element_constructor(self):
        node = XmlNode.element("book", {"year": "1994"},
                               [XmlNode.text("hello")])
        assert node.is_element
        assert node.attributes["year"] == "1994"
        assert node.children[0].is_text
        assert node.children[0].parent is node

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            XmlNode("attribute")

    def test_text_value_concatenates(self):
        node = parse_document("<a><b>x</b>y<c><d>z</d></c></a>")
        assert node.text_value() == "xyz"

    def test_element_children_filter(self):
        node = parse_document("<a><b/>text<c/><b/></a>")
        assert len(node.element_children()) == 3
        assert len(node.element_children("b")) == 2

    def test_descendants_document_order(self):
        node = parse_document("<a><b><c/></b><c/></a>")
        tags = [d.tag for d in node.descendants()]
        assert tags == ["b", "c", "c"]
        assert len(node.descendants("c")) == 2

    def test_subtree_size(self):
        node = parse_document("<a><b>x</b><c/></a>")
        assert node.subtree_size() == 4  # a, b, text, c

    def test_insert_remove_detach(self):
        parent = XmlNode.element("p")
        a = parent.append(XmlNode.element("a"))
        b = XmlNode.element("b")
        parent.insert(0, b)
        assert [c.tag for c in parent.children] == ["b", "a"]
        parent.remove(b)
        assert b.parent is None
        a.detach()
        assert not parent.children

    def test_deep_copy_and_structure_equal(self):
        node = parse_document('<a x="1"><b>t</b></a>')
        clone = node.deep_copy()
        assert node.structure_equal(clone)
        clone.children[0].children[0].value = "u"
        assert not node.structure_equal(clone)


class TestParser:
    def test_attributes_and_entities(self):
        node = parse_document('<a x="1&amp;2" y=\'&#65;&#x42;\'/>')
        assert node.attributes == {"x": "1&2", "y": "AB"}

    def test_text_entities(self):
        node = parse_document("<a>&lt;tag&gt; &amp; more</a>")
        assert node.text_value() == "<tag> & more"

    def test_whitespace_between_elements_dropped(self):
        node = parse_document("<a>\n  <b/>\n  <c/>\n</a>")
        assert len(node.children) == 2

    def test_cdata(self):
        node = parse_document("<a><![CDATA[<raw>&]]></a>")
        assert node.text_value() == "<raw>&"

    def test_comments_and_pi_skipped(self):
        node = parse_document(
            "<?xml version='1.0'?><!-- c --><a><!-- x --><b/></a>")
        assert len(node.children) == 1

    def test_doctype_skipped(self):
        node = parse_document("<!DOCTYPE a><a/>")
        assert node.tag == "a"

    def test_fragment(self):
        nodes = parse_fragment("<a/><b>t</b>")
        assert [n.tag for n in nodes] == ["a", "b"]

    @pytest.mark.parametrize("bad", [
        "<a>", "<a></b>", "<a", "<a x=1/>", "<a x='1'", "text<a/>extra<",
        "<a>&unknown;</a>",
    ])
    def test_malformed(self, bad):
        with pytest.raises(XmlParseError):
            parse_document(bad)

    def test_trailing_content_rejected(self):
        with pytest.raises(XmlParseError):
            parse_document("<a/><b/>")


class TestSerializer:
    def test_roundtrip_compact(self):
        text = '<a x="1"><b>t&amp;u</b><c/></a>'
        assert serialize(parse_document(text)) == text

    def test_pretty_print(self):
        out = serialize(parse_document("<a><b>t</b></a>"), indent=2)
        assert "\n" in out and "  <b>t</b>" in out

    def test_fragment_serialization(self):
        nodes = parse_fragment("<a/><b/>")
        assert serialize_fragment(nodes) == "<a/><b/>"

    def test_attr_escaping(self):
        node = XmlNode.element("a", {"x": 'say "hi" & <go>'})
        out = serialize(node)
        assert "&quot;" in out and "&amp;" in out and "&lt;" in out


# -- property: parse(serialize(tree)) is identity on our model -----------------

_tags = st.sampled_from(["a", "b", "c", "item", "x-y"])
_texts = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"),
                           whitelist_characters=" &<>\"'"),
    min_size=1, max_size=12).filter(lambda s: s.strip())


def _trees(depth: int):
    if depth == 0:
        return st.builds(XmlNode.text, _texts)
    return st.one_of(
        st.builds(XmlNode.text, _texts),
        st.builds(
            XmlNode.element,
            _tags,
            st.dictionaries(_tags, _texts, max_size=2),
            st.lists(_trees(depth - 1), max_size=3),
        ),
    )


@settings(max_examples=60)
@given(st.builds(XmlNode.element, _tags,
                 st.dictionaries(_tags, _texts, max_size=2),
                 st.lists(_trees(2), max_size=3)))
def test_serialize_parse_roundtrip(tree):
    parsed = parse_document(serialize(tree))
    # Whitespace-only text nodes are dropped by the parser; our generator
    # never produces them, and adjacent text nodes merge — compare the
    # canonical re-serialization instead of node identity.
    assert serialize(parsed) == serialize(parse_document(serialize(parsed)))


class TestDocument:
    def test_from_string(self):
        doc = XmlDocument.from_string("d.xml", "<a><b/></a>")
        assert doc.name == "d.xml"
        assert doc.node_count() == 2
        assert "XmlDocument" in repr(doc)

    def test_root_must_be_element(self):
        with pytest.raises(ValueError):
            XmlDocument("d", XmlNode.text("x"))
