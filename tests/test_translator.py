"""Tests for XQuery -> XAT translation (Sections 2.3-2.4)."""

import pytest

from repro import StorageManager, XmlDocument, translate_query
from repro.engine import Engine
from repro.translate import TranslationError
from repro.xat import (Distinct, GroupBy, Join, LeftOuterJoin, Merge,
                       NavigateUnnest, OrderBy, Select, Source, Tagger)


def ops_of(plan, kind):
    return [op for op in plan.iter_operators() if isinstance(op, kind)]


def bib_storage():
    sm = StorageManager()
    sm.register(XmlDocument.from_string("bib.xml", (
        "<bib><book year='1994'><title>A</title><price>10</price></book>"
        "<book year='2000'><title>B</title><price>20</price></book></bib>")))
    return sm


class TestPlanShapes:
    def test_simple_for_becomes_source_navigate(self):
        plan = translate_query(
            '<r>{for $b in doc("b.xml")/bib/book return $b}</r>')
        assert len(ops_of(plan, Source)) == 1
        assert len(ops_of(plan, NavigateUnnest)) == 1

    def test_where_local_predicate_becomes_select(self):
        plan = translate_query(
            '<r>{for $b in doc("b.xml")/bib/book '
            'where $b/@year = "1994" return $b}</r>')
        assert len(ops_of(plan, Select)) == 1

    def test_two_sources_with_link_become_join(self):
        plan = translate_query(
            '<r>{for $a in doc("x.xml")/x/a, $b in doc("y.xml")/y/b '
            'where $a/k = $b/k return $a}</r>')
        assert len(ops_of(plan, Join)) == 1

    def test_correlated_inner_flwor_becomes_loj_groupby(self):
        plan = translate_query(
            '<r>{for $y in distinct-values(doc("b.xml")/bib/book/@year) '
            'return <g>{for $b in doc("b.xml")/bib/book '
            'where $y = $b/@year return $b/title}</g>}</r>')
        assert len(ops_of(plan, LeftOuterJoin)) == 1
        assert len(ops_of(plan, GroupBy)) == 1
        assert len(ops_of(plan, Distinct)) == 1

    def test_order_by_operator(self):
        plan = translate_query(
            '<r>{for $b in doc("b.xml")/bib/book order by $b/title '
            'return $b}</r>')
        assert len(ops_of(plan, OrderBy)) == 1

    def test_independent_subqueries_merge(self):
        plan = translate_query(
            '<r>{<a>{for $x in doc("x.xml")/x/i return $x}</a>}'
            '{<b>{for $y in doc("y.xml")/y/j return $y}</b>}</r>')
        assert len(ops_of(plan, Merge)) == 1

    def test_step_predicate_lifted_to_select(self):
        plan = translate_query(
            '<r>{for $b in doc("b.xml")/bib/book[title = "A"] '
            'return $b}</r>')
        assert len(ops_of(plan, Select)) == 1

    def test_taggers_per_constructor(self):
        plan = translate_query(
            '<r>{for $b in doc("b.xml")/bib/book '
            'return <x><y>{$b/title}</y></x>}</r>')
        assert len(ops_of(plan, Tagger)) == 3  # y, x, r


class TestTranslatedExecution:
    def test_predicate_path_execution(self):
        sm = bib_storage()
        out = Engine(sm).query(translate_query(
            '<r>{for $b in doc("bib.xml")/bib/book[title = "A"] '
            'return $b/price}</r>'))
        assert out == "<r><price>10</price></r>"

    def test_where_numeric_comparison(self):
        sm = bib_storage()
        out = Engine(sm).query(translate_query(
            '<r>{for $b in doc("bib.xml")/bib/book '
            'where $b/price > "15" return $b/title}</r>'))
        assert out == "<r><title>B</title></r>"

    def test_empty_result(self):
        sm = bib_storage()
        out = Engine(sm).query(translate_query(
            '<r>{for $b in doc("bib.xml")/bib/book '
            'where $b/@year = "1900" return $b}</r>'))
        assert out == "<r/>"

    def test_aggregate_content(self):
        sm = bib_storage()
        out = Engine(sm).query(translate_query(
            '<r>{count(doc("bib.xml")/bib/book)}</r>'))
        assert out == "<r>2</r>"

    def test_sequence_return(self):
        sm = bib_storage()
        out = Engine(sm).query(translate_query(
            '<r>{for $b in doc("bib.xml")/bib/book '
            'return <i>{$b/title} {$b/price}</i>}</r>'))
        assert out.count("<i>") == 2
        assert out.index("<title>A</title>") < out.index("<price>10</price>")

    def test_descendant_axis_execution(self):
        sm = bib_storage()
        out = Engine(sm).query(translate_query(
            '<r>{for $t in doc("bib.xml")/bib//title return $t}</r>'))
        assert out.count("<title>") == 2

    def test_group_shell_for_unmatched_outer(self):
        """A distinct value with no joining partner keeps an empty shell
        (the Left Outer Join decorrelation)."""
        sm = StorageManager()
        sm.register(XmlDocument.from_string("b.xml", (
            "<bib><book year='1994'/><book year='2000'/></bib>")))
        sm.register(XmlDocument.from_string("p.xml", (
            "<ps><p year='1994'><v>x</v></p></ps>")))
        out = Engine(sm).query(translate_query(
            '<r>{for $y in distinct-values(doc("b.xml")/bib/book/@year) '
            'return <g Y="{$y}">{for $p in doc("p.xml")/ps/p '
            'where $y = $p/@year return $p/v}</g>}</r>'))
        assert '<g Y="2000"/>' in out
        assert '<g Y="1994"><v>x</v></g>' in out


class TestUnsupported:
    @pytest.mark.parametrize("query", [
        # for-binding from an outer variable inside a correlated FLWOR
        '<r>{for $a in doc("x.xml")/x/a return <g>{for $t in $a/t '
        'where $t = $t return $t}</g>}</r>',
        # correlated FLWOR without a linking condition
        '<r>{for $a in doc("x.xml")/x/a return '
        '<g>{for $b in doc("y.xml")/y/b return $b}</g>}</r>',
    ])
    def test_rejected_shapes(self, query):
        with pytest.raises(TranslationError):
            translate_query(query)

    def test_unbound_variable(self):
        with pytest.raises(TranslationError):
            translate_query('<r>{for $a in doc("x.xml")/x/a '
                            'where $zz = "1" return $a}</r>')
