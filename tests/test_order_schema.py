"""Tests for Order Schema rules (Table 3.1) and order-correct results."""

from repro import StorageManager, XmlDocument, translate_query
from repro.engine import Engine
from repro.xat import (Combine, Distinct, GroupBy, Join, LeftOuterJoin,
                       NavigateCollection, NavigateUnnest, OrderBy, Path,
                       Select, Source, Tagger, Pattern, ColumnRef,
                       Comparison, Literal)

from .helpers import site_view


def _bib_storage():
    sm = StorageManager()
    sm.register(XmlDocument.from_string("bib.xml", (
        "<bib><book year='2000'><title>B</title></book>"
        "<book year='1994'><title>A</title></book></bib>")))
    return sm


def books(sm):
    return NavigateUnnest(Source("bib.xml", "$S"), "$S",
                          Path.parse("bib/book"), "$b")


class TestTable31Rules:
    def test_source_empty(self, ):
        op = Source("bib.xml", "$S").prepare()
        assert op.schema.order_schema == ()

    def test_unnest_appends_column(self):
        sm = _bib_storage()
        op = books(sm).prepare()
        assert op.schema.order_schema == ("$b",)

    def test_unnest_replaces_trailing_entry_column(self):
        sm = _bib_storage()
        op = NavigateUnnest(books(sm), "$b", Path.parse("title"),
                            "$t").prepare()
        assert op.schema.order_schema == ("$t",)

    def test_value_unnest_keeps_entry_order(self):
        sm = _bib_storage()
        op = NavigateUnnest(books(sm), "$b", Path.parse("@year"),
                            "$y").prepare()
        assert op.schema.order_schema == ("$b",)

    def test_category_one_preserves(self):
        sm = _bib_storage()
        base = books(sm)
        for op in (
            NavigateCollection(base, "$b", Path.parse("title"), "$t"),
            Select(base, Comparison(ColumnRef("$b"), "=", Literal("x"))),
            Tagger(base, Pattern("w", (), ("$b",)), "$w"),
        ):
            op.prepare()
            assert op.schema.order_schema == ("$b",)

    def test_category_two_destroys(self):
        sm = _bib_storage()
        years = NavigateUnnest(books(sm), "$b", Path.parse("@year"), "$y")
        assert Distinct(years, "$y").prepare().schema.order_schema == ()
        assert Combine(books(sm), "$b").prepare().schema.order_schema == ()
        grouped = GroupBy(years, ("$y",), combine_col="$b").prepare()
        assert grouped.schema.order_schema == ()

    def test_join_concatenates(self):
        sm = _bib_storage()
        left = books(sm)
        right = NavigateUnnest(Source("bib.xml", "$S2"), "$S2",
                               Path.parse("bib/book"), "$c")
        join = Join(left, right, Comparison(ColumnRef("$b"), "=",
                                            ColumnRef("$c"))).prepare()
        assert join.schema.order_schema == ("$b", "$c")

    def test_orderby_owns_order(self):
        sm = _bib_storage()
        years = NavigateUnnest(books(sm), "$b", Path.parse("@year"), "$y")
        op = OrderBy(years, ("$y",)).prepare()
        assert op.schema.order_schema == ("$y",)


class TestOrderedResults:
    def test_document_order_preserved_without_sorting(self):
        """Intermediate tables are never sorted, yet the result follows
        document order (the non-ordered bag semantics of Section 3.4.3)."""
        sm = _bib_storage()
        out = Engine(sm).query(translate_query(
            '<r>{for $b in doc("bib.xml")/bib/book return $b/title}</r>'))
        assert out.index(">B<") < out.index(">A<")  # document order: B first

    def test_orderby_overrides_document_order(self):
        sm = _bib_storage()
        out = Engine(sm).query(translate_query(
            '<r>{for $b in doc("bib.xml")/bib/book order by $b/title '
            'return $b/title}</r>'))
        assert out.index(">A<") < out.index(">B<")

    def test_join_major_minor_order(self):
        """Join output order: left major, right minor (Fig 3.4)."""
        _sm, view = site_view(
            """<result>{
            for $p in doc("site.xml")/site/people/person,
                $c in doc("site.xml")/site/closed_auctions/closed_auction
            where $p/@id = $c/seller/@person
            return <s><p>{$p/name}</p>{$c/date}</s>
            }</result>""", num_persons=10)
        xml = view.to_xml()
        # person-major: occurrences of person names are non-decreasing in
        # document order of persons
        import re
        names = re.findall(r"Person Name (\d+)", xml)
        assert names == sorted(names, key=int)

    def test_constructed_content_order(self):
        """Construction order beats document order inside new elements."""
        sm = _bib_storage()
        out = Engine(sm).query(translate_query(
            '<r>{for $b in doc("bib.xml")/bib/book '
            'return <x>{$b/title}{$b/@year}</x>}</r>'))
        first = out.index("<x>")
        assert out.index("<title>", first) < out.index("2000", first)

    def test_nested_collections_in_document_order(self):
        _sm, view = site_view(
            '<r>{for $p in doc("site.xml")/site/people/person '
            'return $p/profile}</r>', num_persons=8)
        xml = view.to_xml()
        assert xml == view.recompute_xml()
