"""Shared fixtures/utilities for the test suite, including the
randomized differential harness (:func:`run_differential`) that drives
mixed update streams against maintained views and the recompute oracle.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence, Union

from repro import (MaterializedXQueryView, StorageManager, UpdateRequest,
                   XmlDocument)
from repro.workloads import bib as bibload
from repro.workloads import xmark


def running_example() -> tuple[StorageManager, MaterializedXQueryView]:
    """The Fig 1.1/1.2 setup: bib.xml + prices.xml + the yGroup view."""
    storage = StorageManager()
    bibload.register_running_example(storage)
    view = MaterializedXQueryView(storage, bibload.YEAR_GROUP_QUERY)
    view.materialize()
    return storage, view


def site_view(query: str, num_persons: int = 30, seed: int = 42
              ) -> tuple[StorageManager, MaterializedXQueryView]:
    storage = StorageManager()
    xmark.register_site(storage, num_persons, seed=seed)
    view = MaterializedXQueryView(storage, query)
    view.materialize()
    return storage, view


def assert_consistent(view: MaterializedXQueryView) -> None:
    """The paper's correctness criterion: refreshed extent == recompute."""
    got = view.to_xml()
    want = view.recompute_xml()
    assert got == want, (
        f"extent diverged from recomputation\n got: {got}\nwant: {want}")


def books_of(storage: StorageManager):
    root = storage.root_key("bib.xml")
    return storage.children(root, "book")


def persons_of(storage: StorageManager):
    return storage.find_by_path(
        "site.xml",
        [("child", "site"), ("child", "people"), ("child", "person")])


def closed_auctions_of(storage: StorageManager):
    return storage.find_by_path(
        "site.xml",
        [("child", "site"), ("child", "closed_auctions"),
         ("child", "closed_auction")])


# -- the randomized differential harness -------------------------------------------------
#
# One shared generator of site.xml update streams, parameterized by
# *mutator kinds*, so every randomized oracle test in the suite (and the
# CI fuzz step) drives the same update space instead of each rolling its
# own ad-hoc loop.

def _site_paths(storage: StorageManager, *tags: str):
    return storage.find_by_path("site.xml",
                                [("child", tag) for tag in tags])


def _alive(keys, doomed):
    """Keys not at/below a target already doomed by this batch (a later
    statement must not address a subtree an earlier one deletes)."""
    return [key for key in keys
            if not any(d == key or d.is_ancestor_of(key) for d in doomed)]


def _mut_insert_person(rng, storage, step, doomed):
    persons = _alive(_site_paths(storage, "site", "people", "person"),
                     doomed)
    return UpdateRequest.insert(
        "site.xml", rng.choice(persons),
        xmark.new_person_xml(10000 + step, city=rng.choice(xmark.CITIES)),
        "after")


def _mut_insert_city(rng, storage, step, doomed):
    """Grow a join-key collection: a second <city> under an address."""
    addresses = _alive(_site_paths(storage, "site", "people", "person",
                                   "address"), doomed)
    return UpdateRequest.insert(
        "site.xml", rng.choice(addresses),
        f"<city>{rng.choice(xmark.CITIES)}</city>", "into")


def _mut_insert_nested_person(rng, storage, step, doomed):
    """Aggressive nested same-tag insert: a person inside an auction."""
    auctions = _alive(_site_paths(storage, "site", "closed_auctions",
                                  "closed_auction"), doomed)
    return UpdateRequest.insert(
        "site.xml", rng.choice(auctions),
        xmark.new_person_xml(20000 + step, city=rng.choice(xmark.CITIES)),
        "into")


def _mut_insert_auction(rng, storage, step, doomed):
    auctions = _alive(_site_paths(storage, "site", "closed_auctions",
                                  "closed_auction"), doomed)
    return UpdateRequest.insert(
        "site.xml", rng.choice(auctions),
        xmark.new_closed_auction_xml(step, f"person{step % 20}"), "after")


def _mut_delete_person(rng, storage, step, doomed):
    persons = _alive(_site_paths(storage, "site", "people", "person"),
                     doomed)
    if len(persons) <= 8:
        return None
    request = UpdateRequest.delete("site.xml", rng.choice(persons))
    doomed.append(request.target)
    return request


def _mut_delete_auction(rng, storage, step, doomed):
    auctions = _alive(_site_paths(storage, "site", "closed_auctions",
                                  "closed_auction"), doomed)
    if len(auctions) <= 4:
        return None
    request = UpdateRequest.delete("site.xml", rng.choice(auctions))
    doomed.append(request.target)
    return request


def _mut_modify_city(rng, storage, step, doomed):
    """The ROADMAP repro: city text feeds distinct-values / order by /
    the persons-by-city join condition."""
    cities = _alive(_site_paths(storage, "site", "people", "person",
                                "address", "city"), doomed)
    return UpdateRequest.modify("site.xml", rng.choice(cities),
                                rng.choice(xmark.CITIES))


def _mut_modify_name(rng, storage, step, doomed):
    names = _alive(_site_paths(storage, "site", "people", "person",
                               "name"), doomed)
    return UpdateRequest.modify("site.xml", rng.choice(names),
                                f"Renamed {step}")


MUTATORS = {
    "insert_person": _mut_insert_person,
    "insert_city": _mut_insert_city,
    "insert_nested_person": _mut_insert_nested_person,
    "insert_auction": _mut_insert_auction,
    "delete_person": _mut_delete_person,
    "delete_auction": _mut_delete_auction,
    "modify_city": _mut_modify_city,
    "modify_name": _mut_modify_name,
}

#: every mutator kind — the CI fuzz step drives this full set
ALL_MUTATORS = tuple(MUTATORS)


def random_batch(rng: random.Random, storage: StorageManager, step: int,
                 mutators: Sequence[str], max_size: int = 3
                 ) -> list[UpdateRequest]:
    """One mixed batch of 1..max_size updates over the chosen mutators."""
    doomed: list = []
    batch: list[UpdateRequest] = []
    for index in range(rng.randrange(1, max_size + 1)):
        fn = MUTATORS[rng.choice(list(mutators))]
        request = fn(rng, storage, step * 10 + index, doomed)
        if request is not None:
            batch.append(request)
    return batch


def run_differential(seed: int, steps: int, mutators: Sequence[str],
                     views: Union[str, Iterable[str]], *,
                     num_persons: int = 20, site_seed: int = 1,
                     operator_state: bool = True,
                     compiled: bool = True,
                     batch_max: int = 3,
                     twin: Optional[dict] = None) -> int:
    """Drive ``steps`` random mixed batches against maintained view(s)
    and assert, after every batch, that each extent is byte-identical to
    the recompute oracle.

    ``views`` is one query string or an iterable of them; each runs as
    its own :class:`MaterializedXQueryView` over the same storage.
    ``operator_state`` and ``compiled`` pick the execution
    configuration (persistent side tables on/off, delta-plan VM vs tree
    interpreter).  When ``twin`` is given (keyword overrides, e.g.
    ``{"compiled": False}``), a second set of views over an identical
    storage replays the same stream and must stay byte-identical to the
    first — the differential leg pinning two engine configurations
    against each other.

    Returns the number of updates applied.
    """
    queries = [views] if isinstance(views, str) else list(views)

    def build(query: str, overrides: dict):
        storage = StorageManager()
        xmark.register_site(storage, num_persons, seed=site_seed)
        options = {"operator_state": operator_state,
                   "compiled": compiled}
        options.update(overrides)
        view = MaterializedXQueryView(storage, query, **options)
        view.materialize()
        return storage, view

    # Each maintained view owns its own storage; the rng stream is
    # replayed from the same state per storage, and since all storages
    # evolve identically the generated batches are the same logical
    # updates (keys are deterministic per storage).
    primary = [build(query, {}) for query in queries]
    twins = ([build(query, dict(twin)) for query in queries]
             if twin is not None else [])
    rng = random.Random(seed)
    applied = 0
    for step in range(steps):
        state = rng.getstate()
        batch_size = None
        for index, (storage, view) in enumerate(primary + twins):
            rng.setstate(state)
            batch = random_batch(rng, storage, step, mutators, batch_max)
            if index == 0:
                applied += len(batch)
                batch_size = len(batch)
            else:
                assert len(batch) == batch_size
            view.apply_updates(batch)
            assert_consistent(view)
        if twins:
            for (_s, view), (_ts, twin_view) in zip(primary, twins):
                assert twin_view.to_xml() == view.to_xml(), (
                    f"twin maintenance diverged at step {step}")
    for _storage, view in primary + twins:
        view.close()
    return applied
