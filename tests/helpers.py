"""Shared fixtures/utilities for the test suite."""

from __future__ import annotations

from repro import MaterializedXQueryView, StorageManager, XmlDocument
from repro.workloads import bib as bibload
from repro.workloads import xmark


def running_example() -> tuple[StorageManager, MaterializedXQueryView]:
    """The Fig 1.1/1.2 setup: bib.xml + prices.xml + the yGroup view."""
    storage = StorageManager()
    bibload.register_running_example(storage)
    view = MaterializedXQueryView(storage, bibload.YEAR_GROUP_QUERY)
    view.materialize()
    return storage, view


def site_view(query: str, num_persons: int = 30, seed: int = 42
              ) -> tuple[StorageManager, MaterializedXQueryView]:
    storage = StorageManager()
    xmark.register_site(storage, num_persons, seed=seed)
    view = MaterializedXQueryView(storage, query)
    view.materialize()
    return storage, view


def assert_consistent(view: MaterializedXQueryView) -> None:
    """The paper's correctness criterion: refreshed extent == recompute."""
    got = view.to_xml()
    want = view.recompute_xml()
    assert got == want, (
        f"extent diverged from recomputation\n got: {got}\nwant: {want}")


def books_of(storage: StorageManager):
    root = storage.root_key("bib.xml")
    return storage.children(root, "book")


def persons_of(storage: StorageManager):
    return storage.find_by_path(
        "site.xml",
        [("child", "site"), ("child", "people"), ("child", "person")])


def closed_auctions_of(storage: StorageManager):
    return storage.find_by_path(
        "site.xml",
        [("child", "site"), ("child", "closed_auctions"),
         ("child", "closed_auction")])
