"""Fault-injection tests for the durability subsystem.

Every test drives the real WAL/checkpoint/recovery code through
:class:`tests.faults.FaultyFileSystem` — torn writes, short reads,
fsync failures and kill-at-LSN crash points — plus one genuine
``kill -9`` of a subprocess, and oracle-compares every view (extent
serialization vs recomputation over recovered storage) afterwards.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import time

import pytest

from .faults import FaultPlan, FaultyFileSystem, SimulatedCrash
from .helpers import ALL_MUTATORS, persons_of, random_batch
from repro.api import Database
from repro.updates import UpdateRequest
from repro.workloads import xmark

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(TESTS_DIR), "src")

SITE = xmark.generate_site(12, seed=7)

NEW_PERSON = ('<person id="faultperson"><name>Fault Person</name>'
              '<address><street>9 Crash St</street><city>Tokyo</city>'
              '<country>United States</country></address></person>')


def faulty_db(path, plan: FaultPlan, **kwargs) -> tuple[Database,
                                                        FaultyFileSystem]:
    fs = FaultyFileSystem(plan)
    db = Database(durable_path=str(path), durability_fs=fs,
                  fsync=kwargs.pop("fsync", "always"), **kwargs)
    return db, fs


def seed(db: Database) -> None:
    db.load("site.xml", SITE)
    db.create_view("join", xmark.JOIN_QUERY)
    db.create_view("bycity", xmark.PERSONS_BY_CITY_QUERY,
                   policy="deferred")


def insert_person_batch(db: Database) -> list[UpdateRequest]:
    return [UpdateRequest.insert("site.xml", persons_of(db.storage)[-1],
                                 NEW_PERSON, "after")]


def snapshot(db: Database) -> dict:
    return {name: db.read(name) for name in db.views()}


def assert_consistent(db: Database) -> None:
    for name in db.views():
        assert db.read(name) == db.registry.recompute_xml(name), (
            f"view {name} diverged from recomputation after recovery")


def test_torn_wal_append_aborts_batch_and_recovers_clean(tmp_path):
    plan = FaultPlan()
    db, fs = faulty_db(tmp_path, plan)
    seed(db)
    before = snapshot(db)
    # Tear the very next WAL record mid-write: the process dies with
    # only a prefix of it on disk, before any in-memory mutation.
    plan.crash_after_lsn = db.durability.wal.next_lsn
    plan.torn = True
    plan.torn_write_keep = 9
    with pytest.raises(SimulatedCrash):
        db.registry.apply_updates(insert_person_batch(db))
    del db                                           # the "dead" process

    recovered = Database(durable_path=str(tmp_path), fsync="always")
    report = recovered.durability.last_recovery
    assert report.torn_records_discarded == 1
    assert snapshot(recovered) == before             # batch never happened
    assert_consistent(recovered)
    recovered.close()


def test_durable_record_then_crash_replays_batch(tmp_path):
    plan = FaultPlan()
    db, fs = faulty_db(tmp_path, plan)
    seed(db)
    before = snapshot(db)
    # The record reaches disk whole; the crash lands between the WAL
    # append and the in-memory apply.  WAL-then-apply means recovery
    # must finish the job.
    plan.crash_after_lsn = db.durability.wal.next_lsn
    with pytest.raises(SimulatedCrash):
        db.registry.apply_updates(insert_person_batch(db))
    del db

    recovered = Database(durable_path=str(tmp_path), fsync="always")
    report = recovered.durability.last_recovery
    assert report.wal_records_replayed > 0
    assert report.torn_records_discarded == 0
    assert snapshot(recovered) != before             # the insert is visible
    assert "faultperson" in recovered.storage.document(
        "site.xml").to_string()
    assert_consistent(recovered)
    recovered.close()


def test_fsync_failure_aborts_before_any_mutation(tmp_path):
    plan = FaultPlan()
    db, fs = faulty_db(tmp_path, plan)       # fsync="always"
    seed(db)
    before = snapshot(db)
    fs.plan.fail_fsync = True
    with pytest.raises(OSError):
        db.registry.apply_updates(insert_person_batch(db))
    # The device error surfaced before anything mutated: the session
    # keeps serving the old, consistent state.
    assert snapshot(db) == before
    assert_consistent(db)
    fs.plan.fail_fsync = False
    db.registry.apply_updates(insert_person_batch(db))
    assert "faultperson" in db.storage.document("site.xml").to_string()
    assert_consistent(db)


def test_short_reads_tolerated_during_recovery(tmp_path):
    db = Database(durable_path=str(tmp_path), fsync="always")
    seed(db)
    rng = random.Random(17)
    for step in range(4):
        batch = random_batch(rng, db.storage, step, ALL_MUTATORS)
        if batch:
            db.registry.apply_updates(batch)
    del db                                           # crash: no checkpoint

    plan = FaultPlan(short_read_at=3, short_read_keep=2)
    recovered, fs = faulty_db(tmp_path, plan)
    assert plan.reads > 3                    # the injection actually fired
    assert recovered.durability.last_recovery.wal_records_replayed > 0
    assert recovered.durability.last_recovery.torn_records_discarded == 0
    assert_consistent(recovered)
    recovered.close()


def test_kill_at_every_lsn_recovers_consistent(tmp_path):
    """Systematic crash-point sweep: die right after each WAL record of
    a scripted run lands on disk, recover, oracle-compare every view."""
    # First pass (no faults) to learn how many records the run logs.
    probe = Database(durable_path=str(tmp_path / "probe"), fsync="always")
    seed(probe)
    rng = random.Random(23)
    for step in range(3):
        batch = random_batch(rng, probe.storage, step, ALL_MUTATORS)
        if batch:
            probe.registry.apply_updates(batch)
    last_lsn = probe.durability.wal.last_lsn
    probe.close()
    assert last_lsn >= 5

    for crash_lsn in range(4, last_lsn + 1):
        path = tmp_path / f"lsn{crash_lsn}"
        plan = FaultPlan(crash_after_lsn=crash_lsn)
        db, fs = faulty_db(path, plan)
        crashed = False
        try:
            seed(db)
            rng = random.Random(23)
            for step in range(3):
                batch = random_batch(rng, db.storage, step, ALL_MUTATORS)
                if batch:
                    db.registry.apply_updates(batch)
        except SimulatedCrash:
            crashed = True
        assert crashed, f"crash point {crash_lsn} never fired"
        del db

        recovered = Database(durable_path=str(path), fsync="always")
        assert_consistent(recovered)
        recovered.close()


CHILD_SCRIPT = """
import random, sys
sys.path.insert(0, sys.argv[2])
sys.path.insert(0, sys.argv[3])
from helpers import ALL_MUTATORS, random_batch
from repro.api import Database
from repro.workloads import xmark

path, marker = sys.argv[1], sys.argv[4]
db = Database(durable_path=path, fsync="always", checkpoint_every=16)
db.load("site.xml", xmark.generate_site(12, seed=7))
db.create_view("join", xmark.JOIN_QUERY)
db.create_view("bycity", xmark.PERSONS_BY_CITY_QUERY, policy="deferred")
rng = random.Random(99)
step = 0
while True:
    batch = random_batch(rng, db.storage, step, ALL_MUTATORS)
    if batch:
        db.registry.apply_updates(batch)
    step += 1
    with open(marker, "w") as fh:
        fh.write(str(step))
"""


def test_subprocess_kill9_recovery_oracle(tmp_path):
    """The real thing: SIGKILL a live durable session mid-churn, reopen
    the directory, and demand every view serialize identically to
    recomputation over the recovered storage."""
    durable = tmp_path / "db"
    marker = tmp_path / "steps"
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(durable), SRC_DIR,
         TESTS_DIR, str(marker)],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
    try:
        deadline = time.time() + 90
        steps = 0
        while time.time() < deadline:
            if child.poll() is not None:
                raise AssertionError(
                    "child died before the kill: "
                    + child.stderr.read().decode("utf-8", "replace"))
            try:
                steps = int(marker.read_text() or 0)
            except (FileNotFoundError, ValueError):
                steps = 0
            if steps >= 25:
                break
            time.sleep(0.05)
        assert steps >= 25, "child made no progress before the deadline"
    finally:
        if child.poll() is None:
            os.kill(child.pid, signal.SIGKILL)
        child.wait()

    recovered = Database(durable_path=str(durable), fsync="always")
    report = recovered.durability.last_recovery
    assert report.views == 2
    assert report.documents == 1
    assert_consistent(recovered)
    # And the survivor keeps maintaining, durably.
    recovered.registry.apply_updates(insert_person_batch(recovered))
    assert_consistent(recovered)
    recovered.close()
