"""Tests for first-class Incremental Maintenance Plans and counting rules."""

import pytest

from repro.counting import (MAINTENANCE_TIME, QUERY_TIME, rules)
from repro.propagate import IncrementalMaintenancePlan, derive_imp
from repro.translate import translate_query
from repro.updates import UpdateRequest
from repro.xat import DeltaSpec, INSERT, DELETE
from repro.xat.base import DeltaRoot
from repro.workloads import xmark

from .helpers import persons_of, site_view


class TestDeriveImp:
    def _setup(self):
        storage, view = site_view(xmark.JOIN_QUERY, num_persons=10)
        return storage, view

    def test_imp_executes_to_delta_forest(self):
        storage, view = self._setup()
        anchor = persons_of(storage)[-1]
        view.apply_updates([])  # no-op, keeps extent
        # insert a person manually, then run the IMP by hand
        key = storage.insert_fragment(
            storage.parent_key(anchor),
            __import__("repro").parse_fragment(
                xmark.new_person_xml(7))[0], after=anchor)
        spec = DeltaSpec("site.xml", (DeltaRoot(key, INSERT),), INSERT)
        imp = derive_imp(view.plan, spec)
        forest = imp.execute(storage)
        assert isinstance(imp, IncrementalMaintenancePlan)
        assert forest, "insert joining an auction should produce deltas"

    def test_describe_marks_delta_operators(self):
        storage, view = self._setup()
        person = persons_of(storage)[0]
        spec = DeltaSpec("site.xml", (DeltaRoot(person, DELETE),), DELETE)
        text = derive_imp(view.plan, spec).describe()
        assert "IMP for batch" in text
        # both join sides read site.xml: the two-term expansion is shown
        assert "ΔA ⋈ B_new" in text
        assert "Δ " in text

    def test_single_side_expansion_label(self):
        plan = translate_query(
            '<r>{for $a in doc("x.xml")/x/a, $b in doc("y.xml")/y/b '
            'where $a/k = $b/k return $a}</r>')
        spec = DeltaSpec("x.xml", (DeltaRoot(
            __import__("repro").FlexKey("b.b"), INSERT),), INSERT)
        text = derive_imp(plan, spec).describe()
        assert "[ΔA ⋈ B]" in text

    def test_unrelated_document_rejected(self):
        storage, view = self._setup()
        spec = DeltaSpec("other.xml", (DeltaRoot(
            __import__("repro").FlexKey("b.b"), INSERT),), INSERT)
        with pytest.raises(ValueError):
            derive_imp(view.plan, spec)


class TestCountingRules:
    def test_rule_tables_nonempty(self):
        assert len(rules(QUERY_TIME)) >= 8
        assert len(rules(MAINTENANCE_TIME)) >= 5

    def test_unknown_phase(self):
        with pytest.raises(ValueError):
            rules("compile time")

    def test_distinct_rule_matches_implementation(self):
        """The stated Distinct rule (sum of duplicate counts) is what the
        operator does — cross-checked against test_counting's behaviour."""
        text = next(r.rule for r in rules(QUERY_TIME)
                    if r.operator == "Distinct")
        assert "SUM" in text
