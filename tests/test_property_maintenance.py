"""Property-based maintenance testing (hypothesis).

The central invariant of the whole system (the paper's correctness
criterion, proven in Chapters 4-8): for *any* sequence of source update
primitives, incrementally refreshing the materialized extent produces
exactly the document that full recomputation over the updated sources
would — content and order.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (MaterializedXQueryView, StorageManager, UpdateRequest,
                   XmlDocument)

YEARS = ["1994", "1998", "2002"]
TITLES = [f"Title {i}" for i in range(8)]

GROUPED_QUERY = """<result>{
for $y in distinct-values(doc("bib.xml")/bib/book/@year)
order by $y
return <g Y="{$y}">{
 for $b in doc("bib.xml")/bib/book where $y = $b/@year return $b/title
}</g>}</result>"""

FLAT_QUERY = ('<result>{for $b in doc("bib.xml")/bib/book '
              'where $b/@year = "1994" return $b}</result>')

JOIN_QUERY = """<result>{
for $b in doc("bib.xml")/bib/book, $e in doc("prices.xml")/prices/entry
where $b/title = $e/b-title
return <i>{$b/title}{$e/price}</i>}</result>"""


def _book(i, year, title):
    return (f'<book year="{year}"><title>{title}</title>'
            f'<note>note {i}</note></book>')


#: One update instruction: (action, position-seed, year-seed, title-seed).
_instruction = st.tuples(
    st.sampled_from(["insert", "insert", "delete", "modify"]),
    st.integers(0, 99), st.integers(0, 2), st.integers(0, 7))


def _setup(query, n_initial=3):
    storage = StorageManager()
    books = "".join(_book(i, YEARS[i % 3], TITLES[i % 8])
                    for i in range(n_initial))
    storage.register(XmlDocument.from_string("bib.xml",
                                             f"<bib>{books}</bib>"))
    prices = "".join(
        f'<entry><price>{10 + i}</price><b-title>{TITLES[i]}</b-title></entry>'
        for i in range(0, 8, 2))
    storage.register(XmlDocument.from_string("prices.xml",
                                             f"<prices>{prices}</prices>"))
    view = MaterializedXQueryView(storage, query)
    view.materialize()
    return storage, view


def _materialize_instruction(storage, instruction, step):
    action, pos, year_seed, title_seed = instruction
    root = storage.root_key("bib.xml")
    books = storage.children(root, "book")
    if action == "insert" or not books:
        fragment = _book(1000 + step, YEARS[year_seed], TITLES[title_seed])
        if books:
            anchor = books[pos % len(books)]
            return UpdateRequest.insert("bib.xml", anchor, fragment,
                                        "after" if pos % 2 else "before")
        return UpdateRequest.insert("bib.xml", root, fragment, "into")
    target = books[pos % len(books)]
    if action == "delete":
        return UpdateRequest.delete("bib.xml", target)
    # modify: retitle (a predicate path in JOIN/GROUPED views -> exercises
    # decomposition) or change the note (plain refresh path).
    if pos % 2:
        node = storage.children(target, "title")[0]
        return UpdateRequest.modify("bib.xml", node,
                                    TITLES[title_seed])
    node = storage.children(target, "note")[0]
    return UpdateRequest.modify("bib.xml", node, f"edited {step}")


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_instruction, min_size=1, max_size=8))
def test_grouped_view_always_matches_recompute(instructions):
    storage, view = _setup(GROUPED_QUERY)
    for step, instruction in enumerate(instructions):
        update = _materialize_instruction(storage, instruction, step)
        view.apply_updates([update])
        assert view.to_xml() == view.recompute_xml()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_instruction, min_size=1, max_size=8))
def test_selection_view_always_matches_recompute(instructions):
    storage, view = _setup(FLAT_QUERY)
    for step, instruction in enumerate(instructions):
        update = _materialize_instruction(storage, instruction, step)
        view.apply_updates([update])
        assert view.to_xml() == view.recompute_xml()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_instruction, min_size=1, max_size=6))
def test_join_view_always_matches_recompute(instructions):
    storage, view = _setup(JOIN_QUERY)
    for step, instruction in enumerate(instructions):
        update = _materialize_instruction(storage, instruction, step)
        view.apply_updates([update])
        assert view.to_xml() == view.recompute_xml()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_instruction, min_size=2, max_size=10))
def test_batched_application_matches_recompute(instructions):
    """Applying the whole sequence in ONE apply_updates call (batching
    heterogeneous runs) is equally correct."""
    storage, view = _setup(GROUPED_QUERY)
    updates = []
    for step, instruction in enumerate(instructions):
        update = _materialize_instruction(storage, instruction, step)
        # materialize instruction resolves against current storage: apply
        # the storage part immediately by going through the view one by
        # one would defeat batching; instead only batch inserts that don't
        # depend on prior deletes.  Keep it simple: stop collecting at the
        # first delete/modify of a possibly-stale target.
        updates.append(update)
        if instruction[0] != "insert":
            break
    view.apply_updates(updates)
    assert view.to_xml() == view.recompute_xml()
