"""Aggregate views and their incremental maintenance (Section 7.6)."""

import pytest

from repro import MaterializedXQueryView, StorageManager, UpdateRequest, \
    XmlDocument

SALES = ("<sales>"
         "<sale region='east'><amount>10</amount></sale>"
         "<sale region='east'><amount>30</amount></sale>"
         "<sale region='west'><amount>5</amount></sale>"
         "</sales>")


def setup(agg):
    sm = StorageManager()
    sm.register(XmlDocument.from_string("sales.xml", SALES))
    query = f"""<totals>{{
    for $r in distinct-values(doc("sales.xml")/sales/sale/@region)
    order by $r
    return <region name="{{$r}}">{{
      {agg}(for $s in doc("sales.xml")/sales/sale
            where $r = $s/@region return $s/amount)
    }}</region>}}</totals>"""
    view = MaterializedXQueryView(sm, query)
    view.materialize()
    return sm, view


def sale(amount, region="east"):
    return f"<sale region='{region}'><amount>{amount}</amount></sale>"


class TestAggregateMaterialization:
    def test_sum(self):
        _sm, view = setup("sum")
        xml = view.to_xml()
        assert '<region name="east">40</region>' in xml
        assert '<region name="west">5</region>' in xml

    def test_count(self):
        _sm, view = setup("count")
        xml = view.to_xml()
        assert '<region name="east">2</region>' in xml

    def test_avg(self):
        _sm, view = setup("avg")
        assert '<region name="east">20</region>' in view.to_xml()

    @pytest.mark.parametrize("agg,expected", [("min", "10"), ("max", "30")])
    def test_min_max(self, agg, expected):
        _sm, view = setup(agg)
        assert f'<region name="east">{expected}</region>' in view.to_xml()


class TestAggregateMaintenance:
    def _sales_root(self, sm):
        return sm.root_key("sales.xml")

    def test_sum_insert_incremental(self):
        sm, view = setup("sum")
        report = view.apply_updates([UpdateRequest.insert(
            "sales.xml", self._sales_root(sm), sale(60), "into")])
        assert '<region name="east">100</region>' in view.to_xml()
        assert not report.recomputed
        assert view.to_xml() == view.recompute_xml()

    def test_sum_delete_incremental(self):
        sm, view = setup("sum")
        first = sm.children(self._sales_root(sm), "sale")[0]
        report = view.apply_updates(
            [UpdateRequest.delete("sales.xml", first)])
        assert '<region name="east">30</region>' in view.to_xml()
        assert not report.recomputed
        assert view.to_xml() == view.recompute_xml()

    def test_count_maintenance(self):
        sm, view = setup("count")
        view.apply_updates([UpdateRequest.insert(
            "sales.xml", self._sales_root(sm), sale(1, "west"), "into")])
        assert '<region name="west">2</region>' in view.to_xml()
        assert view.to_xml() == view.recompute_xml()

    def test_avg_maintenance(self):
        sm, view = setup("avg")
        view.apply_updates([UpdateRequest.insert(
            "sales.xml", self._sales_root(sm), sale(50), "into")])
        assert '<region name="east">30</region>' in view.to_xml()
        assert view.to_xml() == view.recompute_xml()

    def test_max_insert_of_new_extremum(self):
        sm, view = setup("max")
        view.apply_updates([UpdateRequest.insert(
            "sales.xml", self._sales_root(sm), sale(99), "into")])
        assert '<region name="east">99</region>' in view.to_xml()
        assert view.to_xml() == view.recompute_xml()

    def test_min_delete_of_extremum_is_incremental(self):
        """Per-member contribution state re-evaluates min over the alive
        members — no global recomputation (improves on the classic
        counting-algorithm fallback)."""
        sm, view = setup("min")
        first = sm.children(self._sales_root(sm), "sale")[0]  # amount 10
        report = view.apply_updates(
            [UpdateRequest.delete("sales.xml", first)])
        assert not report.recomputed
        assert '<region name="east">30</region>' in view.to_xml()
        assert view.to_xml() == view.recompute_xml()

    def test_new_region_group_appears(self):
        sm, view = setup("sum")
        view.apply_updates([UpdateRequest.insert(
            "sales.xml", self._sales_root(sm), sale(7, "north"), "into")])
        assert '<region name="north">7</region>' in view.to_xml()
        assert view.to_xml() == view.recompute_xml()
