"""Unit + property tests for FlexKey order encoding (Chapter 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flexkeys import (FlexKey, FlexKeyError, SiblingKeyAllocator,
                            atom_after, atom_before, atom_between,
                            atom_for_insert, compare, compose,
                            compose_values, order_of, sibling_atom,
                            sibling_atoms)

#: Atoms as the generator produces them (never ending in 'a').
atoms = st.integers(min_value=0, max_value=500).map(sibling_atom)


class TestFlexKeyBasics:
    def test_parse_and_repr(self):
        key = FlexKey.parse("b.f.b")
        assert key.value == "b.f.b"
        assert str(key) == "b.f.b"

    def test_parse_with_override(self):
        key = FlexKey.parse("b.f[a.c]")
        assert key.value == "b.f"
        assert key.override.value == "a.c"

    def test_parse_rejects_bad_chars(self):
        with pytest.raises(FlexKeyError):
            FlexKey.parse("b.1")

    def test_empty_is_rejected(self):
        with pytest.raises(FlexKeyError):
            FlexKey("")

    def test_child_and_parent(self):
        key = FlexKey("b").child("f")
        assert key.value == "b.f"
        assert key.parent() == FlexKey("b")
        assert FlexKey("b").parent() is None

    def test_local_and_depth(self):
        key = FlexKey.parse("b.f.d")
        assert key.local() == "d"
        assert key.depth == 3

    def test_ancestor_descendant(self):
        root = FlexKey("b")
        deep = FlexKey("b.f.b")
        assert root.is_ancestor_of(deep)
        assert deep.is_descendant_of(root)
        assert not root.is_ancestor_of(FlexKey("bb"))  # no prefix confusion
        assert not root.is_ancestor_of(root)

    def test_parent_of(self):
        assert FlexKey("b.f").is_parent_of(FlexKey("b.f.d"))
        assert not FlexKey("b").is_parent_of(FlexKey("b.f.d"))

    def test_relative_to(self):
        assert FlexKey("b.f.d").relative_to(FlexKey("b")) == "f.d"
        with pytest.raises(FlexKeyError):
            FlexKey("b.f").relative_to(FlexKey("c"))

    def test_equality_ignores_override(self):
        assert FlexKey("b.f") == FlexKey("b.f").with_override(FlexKey("a"))
        assert hash(FlexKey("b.f")) == hash(
            FlexKey("b.f").with_override(FlexKey("a")))

    def test_ordering_uses_override(self):
        plain = FlexKey("b.b")
        overridden = FlexKey("b.f").with_override(FlexKey("a.a"))
        assert overridden < plain
        assert compare(overridden, plain) == -1

    def test_without_override(self):
        key = FlexKey("b.f").with_override(FlexKey("a"))
        assert key.without_override().override is None

    def test_order_of(self):
        assert order_of(FlexKey("b.f")) == "b.f"
        assert order_of(FlexKey("b.f").with_override(FlexKey("a.c"))) == "a.c"

    def test_nested_override_resolution(self):
        inner = FlexKey("c").with_override(FlexKey("a"))
        outer = FlexKey("z").with_override(inner)
        assert order_of(outer) == "a"


class TestCompose:
    def test_compose(self):
        key = compose(FlexKey("b.b"), FlexKey("e.f"))
        assert key.value == "b.b..e.f"
        assert key.is_composed

    def test_composed_has_no_parent(self):
        with pytest.raises(FlexKeyError):
            compose(FlexKey("b"), FlexKey("c")).parent()

    def test_compose_values(self):
        assert compose_values(["1994", "b.b"]) == "1994..b.b"

    def test_compose_empty_rejected(self):
        with pytest.raises(FlexKeyError):
            compose()

    def test_compose_order_extends_prefix(self):
        # A composed key sorts right after its first component's subtree,
        # consistent with major/minor ordering.
        assert compose(FlexKey("b.b"), FlexKey("e.f")) < compose(
            FlexKey("b.d"), FlexKey("e.b"))


class TestAtomGeneration:
    def test_sibling_atoms_monotone_unique(self):
        seq = [sibling_atom(i) for i in range(200)]
        assert seq == sorted(seq)
        assert len(set(seq)) == 200

    def test_sibling_atoms_iterator(self):
        assert list(sibling_atoms(3)) == ["b", "d", "f"]

    def test_rollover(self):
        assert sibling_atom(12) == "zb"
        assert sibling_atom(24) == "zzb"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sibling_atom(-1)

    def test_between_simple(self):
        assert atom_between("b", "d") == "c"

    def test_between_adjacent(self):
        mid = atom_between("b", "c")
        assert "b" < mid < "c"

    def test_between_requires_order(self):
        with pytest.raises(FlexKeyError):
            atom_between("d", "b")
        with pytest.raises(FlexKeyError):
            atom_between("b", "b")

    def test_after_before(self):
        assert atom_after("b") > "b"
        assert "" < atom_before("b") < "b"

    def test_before_smallest_rejected(self):
        with pytest.raises(FlexKeyError):
            atom_before("a")

    def test_atom_for_insert_bounds(self):
        assert atom_for_insert(None, None) == sibling_atom(0)
        assert atom_for_insert("b", None) > "b"
        assert atom_for_insert(None, "b") < "b"
        mid = atom_for_insert("b", "d")
        assert "b" < mid < "d"

    @given(atoms, atoms)
    def test_between_property(self, a, b):
        if a == b:
            return
        low, high = sorted((a, b))
        mid = atom_between(low, high)
        assert low < mid < high
        assert not mid.endswith("a")

    @given(atoms)
    def test_after_property(self, a):
        result = atom_after(a)
        assert result > a
        assert not result.endswith("a")

    @given(atoms)
    def test_before_property(self, a):
        result = atom_before(a)
        assert "" < result < a
        assert not result.endswith("a")

    @settings(max_examples=25)
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                    max_size=60))
    def test_skewed_insert_storm(self, positions):
        """Chapter 3.4.4: no relabeling even under skewed insertions."""
        atoms_list = ["b", "d"]
        for pos in positions:
            index = pos % (len(atoms_list) + 1)
            low = atoms_list[index - 1] if index > 0 else None
            high = atoms_list[index] if index < len(atoms_list) else None
            new = atom_for_insert(low, high)
            atoms_list.insert(index, new)
        assert atoms_list == sorted(atoms_list)
        assert len(set(atoms_list)) == len(atoms_list)


class TestSiblingKeyAllocator:
    def test_append_prepend_between(self):
        alloc = SiblingKeyAllocator(FlexKey("b"))
        first = alloc.append()
        second = alloc.append()
        assert first < second
        front = alloc.prepend()
        assert front < first
        mid = alloc.between(first.local(), second.local())
        assert first < mid < second

    def test_duplicate_registration_rejected(self):
        alloc = SiblingKeyAllocator(existing=["b"])
        with pytest.raises(ValueError):
            alloc._register("b")

    def test_release(self):
        alloc = SiblingKeyAllocator(FlexKey("b"))
        key = alloc.append()
        alloc.release(key.local())
        assert key.local() not in alloc.atoms
        alloc.release("nonexistent")  # no error
