"""The observability layer: metrics registry, tracing spans, EXPLAIN,
and the differential guarantee that none of it changes maintenance.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import (CostModel, Database, StorageManager, UpdateRequest,
                   ViewRegistry)
from repro.obs import (CollectingSink, Counter, Gauge, Histogram,
                       MetricsRegistry, Span, TraceSink, Tracer, disabled,
                       is_enabled, set_enabled)
from repro.workloads import xmark

from .helpers import random_batch

SITE = """<site><people>
<person id="person0"><name>Ada</name>
 <address><city>Oslo</city></address></person>
<person id="person1"><name>Grace</name>
 <address><city>Paris</city></address></person>
<person id="person2"><name>Alan</name>
 <address><city>Oslo</city></address></person>
</people></site>"""


def _city_db() -> Database:
    db = Database()
    db.load("site.xml", SITE)
    db.create_view("by-city", xmark.CITY_HEADCOUNT_QUERY)
    return db


class TestMetricPrimitives:
    def test_counter_and_gauge(self):
        counter, gauge = Counter(), Gauge()
        counter.inc()
        counter.inc(4)
        gauge.set(7)
        gauge.dec(2)
        assert counter.export() == 5
        assert gauge.export() == 5

    def test_disabled_flag_freezes_metrics(self):
        counter, histogram = Counter(), Histogram()
        with disabled():
            assert not is_enabled()
            counter.inc()
            histogram.observe(1.0)
        assert is_enabled()
        assert counter.export() == 0
        assert histogram.count == 0

    def test_histogram_exact_aggregates(self):
        histogram = Histogram()
        for value in [2.0, 8.0, 4.0, 6.0]:
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 20.0
        assert histogram.min == 2.0
        assert histogram.max == 8.0

    def test_histogram_quantiles_interpolate(self):
        histogram = Histogram()
        for value in range(101):          # 0..100, fits the reservoir
            histogram.observe(float(value))
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) == 100.0
        assert histogram.quantile(0.5) == pytest.approx(50.0)
        assert histogram.quantile(0.9) == pytest.approx(90.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_histogram_reservoir_is_deterministic(self):
        def fill():
            histogram = Histogram(capacity=32)
            for value in range(1000):
                histogram.observe(float(value))
            return histogram

        first, second = fill(), fill()
        assert first.samples == second.samples          # same LCG stream
        assert first.count == 1000
        assert len(first.samples) == 32
        # the reservoir keeps a spread, not just the first 32
        assert max(first.samples) > 100

    def test_registry_get_or_create_by_labels(self):
        metrics = MetricsRegistry()
        a = metrics.counter("hits", view="x")
        b = metrics.counter("hits", view="x")
        c = metrics.counter("hits", view="y")
        assert a is b and a is not c
        with pytest.raises(ValueError):
            metrics.gauge("hits")                       # kind mismatch

    def test_snapshot_runs_sync_hooks(self):
        metrics = MetricsRegistry()
        external = {"count": 3}
        metrics.add_sync_hook(
            lambda m: m.counter("external").set(external["count"]))
        snap = metrics.snapshot()
        assert snap["external"]["values"][""] == 3
        external["count"] = 9
        assert metrics.snapshot()["external"]["values"][""] == 9


class TestEngineMetrics:
    def test_database_metrics_snapshot_shape(self):
        with _city_db() as db:
            db.update("site.xml").at("/site/people/person[1]/name") \
                .replace_with("Renamed")
            snapshot = db.metrics()
            json.dumps(snapshot)                # JSON-serializable
            assert snapshot["router_classifications"]["values"][""] == 1
            assert snapshot["db_statements"]["values"][""] == 1
            assert snapshot["db_apply_seconds"]["kind"] == "histogram"
            view_flushes = snapshot["view_flushes"]["values"]
            assert view_flushes["view=by-city"] >= 1
            assert snapshot["view_extent_nodes"]["values"][
                "view=by-city"] > 0
            phase = snapshot["view_phase_seconds"]["values"]
            assert "phase=propagate,view=by-city" in phase
            assert snapshot["storage_mutations"]["values"][""] > 0
            # index and operator-state mirrors are present
            assert "index_range_scans" in snapshot
            assert "opstate_hits" in snapshot

    def test_subscriber_fanout_metrics(self):
        with _city_db() as db:
            events = []
            db.view("by-city").subscribe(events.append)
            db.update("site.xml").at("/site/people/person[1]/name") \
                .replace_with("Renamed")
            snapshot = db.metrics()
            assert events
            assert snapshot["subscriber_callbacks"]["values"][
                "view=by-city"] == len(events)
            assert snapshot["subscriber_callback_seconds"]["values"][
                "view=by-city"]["count"] == len(events)

    def test_render_prometheus_text_format(self):
        with _city_db() as db:
            db.update("site.xml").at("/site/people/person[1]/name") \
                .replace_with("Renamed")
            text = db.render_prometheus()
        assert "# TYPE repro_router_classifications counter" in text
        assert "repro_router_classifications 1" in text
        assert 'repro_view_flushes{view="by-city"}' in text
        # histograms render as summaries with quantile labels
        assert 'repro_db_apply_seconds{quantile="0.5"}' in text
        assert "repro_db_apply_seconds_count 1" in text
        for line in text.splitlines():
            assert line.startswith("#") or " " in line


class TestTracing:
    def test_span_nesting_under_multiview_batch(self):
        storage = StorageManager()
        xmark.register_site(storage, 12, seed=7)
        with ViewRegistry(storage) as registry:
            registry.register("seniors", xmark.SELECTION_QUERY)
            registry.register("sales", xmark.JOIN_QUERY)
            sink = CollectingSink()
            registry.add_trace_sink(sink)
            persons = storage.find_by_path(
                "site.xml", [("child", "site"), ("child", "people"),
                             ("child", "person")])
            registry.apply_updates([
                UpdateRequest.insert(
                    "site.xml", persons[-1],
                    xmark.new_person_xml(900, age=70), "after"),
                UpdateRequest.delete("site.xml", persons[0]),
            ])

            roots = sink.by_name("registry.apply_updates")
            assert len(roots) == 1
            root = roots[0]
            assert root.attrs["updates"] == 2
            assert root.parent_id is None

            flushes = sink.by_name("view.flush")
            assert {s.attrs["view"] for s in flushes} == {"seniors",
                                                          "sales"}
            for flush in flushes:
                assert flush.parent_id == root.span_id
                assert flush.depth == root.depth + 1
                assert flush.attrs["decision"] in ("propagate",
                                                   "recompute")
                assert flush.attrs["observed_seconds"] <= root.duration

            phases = sink.by_name("phase.propagate")
            assert phases
            flush_ids = {s.span_id for s in flushes}
            assert all(p.parent_id in flush_ids for p in phases)
            # children complete (and are delivered) before their parents
            order = [s.span_id for s in sink.spans]
            assert order.index(root.span_id) == len(order) - 1

    def test_tracer_inactive_without_sink(self):
        tracer = Tracer()
        assert not tracer.active
        span = tracer.span("noop")
        with span as inner:
            inner.set(ignored=True)       # no-op, no state accumulated
        sink = CollectingSink()
        tracer.add_sink(sink)
        assert tracer.active
        with disabled():
            assert not tracer.active
        with tracer.span("real", tag="x"):
            pass
        assert [s.name for s in sink.spans] == ["real"]
        assert isinstance(sink, TraceSink)  # protocol conformance
        assert isinstance(sink.spans[0], Span)


class TestExplain:
    def test_explain_join_aggregate_view(self):
        storage = StorageManager()
        xmark.register_site(storage, 10, seed=3)
        with Database(storage=storage) as db:
            db.create_view("headcount", xmark.CITY_HEADCOUNT_QUERY)
            db.update("site.xml") \
                .at("/site/people/person[1]/address/city") \
                .replace_with("Montevideo")
            text = db.explain("headcount")

        lines = text.splitlines()
        assert lines[0].startswith("view 'headcount'")
        assert "policy=immediate" in lines[0]
        assert "extent_nodes=" in lines[0]
        assert any(line.startswith("query:") for line in lines)
        assert any(line.startswith("maintenance: flushes=1")
                   for line in lines)
        assert any(line.startswith("timings: validate=")
                   for line in lines)
        assert any(line.startswith("cost model: recompute=")
                   for line in lines)
        # the plan tree is annotated with live full/delta counters; the
        # compiled instruction listings follow the operator tree
        tail = lines[lines.index("plan:") + 1:]
        first_listing = next(i for i, line in enumerate(tail)
                             if line.startswith("compiled plan ["))
        plan_lines, listing_lines = tail[:first_listing], \
            tail[first_listing:]
        assert len(plan_lines) > 3
        assert all("full: runs=" in line and "Δ: runs=" in line
                   for line in plan_lines)
        assert any("├─" in line or "└─" in line for line in plan_lines)
        # materialization ran every operator at least once in full mode
        assert "runs=0" not in plan_lines[0].split("Δ:")[0]
        # the join+aggregate plan keeps persistent operator state
        assert any("state: served=" in line for line in plan_lines)
        # one listing per compiled mode, instructions carrying counters
        headers = [line for line in listing_lines
                   if line.startswith("compiled plan [")]
        assert [h.split("]")[0] for h in headers] == \
            ["compiled plan [full", "compiled plan [delta"]
        assert any(" <- " in line and "runs=" in line
                   for line in listing_lines)

    def test_explain_unknown_view_raises(self):
        with Database() as db:
            with pytest.raises(KeyError):
                db.explain("nope")


class TestDisabledDifferential:
    def test_disabled_observability_identical_extents(self):
        """The paranoia check: enabled vs disabled observability must
        produce byte-identical view extents over a mixed random stream
        (observability reads the engine, never steers it)."""

        class _NeverRecompute(CostModel):
            """Pin flush decisions: the stock cost model chooses
            propagate-vs-recompute from wall-clock observations, which
            host load could flip between the two runs."""

            def should_recompute(self, trees: int) -> bool:
                return False

        def run(enabled: bool) -> list[str]:
            previous = set_enabled(enabled)
            try:
                storage = StorageManager()
                xmark.register_site(storage, 15, seed=6)
                with ViewRegistry(storage) as registry:
                    registry.register("by-city",
                                      xmark.PERSONS_BY_CITY_QUERY,
                                      cost_model=_NeverRecompute())
                    registry.register("sales", xmark.JOIN_QUERY,
                                      policy=3,
                                      cost_model=_NeverRecompute())
                    rng = random.Random(11)
                    extents = []
                    for step in range(12):
                        batch = random_batch(
                            rng, storage, step,
                            ("insert_person", "delete_person",
                             "modify_city", "modify_name"))
                        registry.apply_updates(batch)
                        extents.append(registry.query("by-city"))
                        extents.append(registry.query("sales"))
                    return extents
            finally:
                set_enabled(previous)

        assert run(True) == run(False)
