"""Consistency tests for the incremental structural index.

The contract under test: after ANY interleaving of the storage mutation
primitives, the indexed navigation fast paths (``children`` /
``descendants`` / ``find_by_path`` / ``tag_path``) return exactly what
the walk-based unindexed fallbacks return.  The fallbacks re-derive
answers from the node tree on every call, so they are the oracle.
"""

import random

import pytest

from repro.flexkeys import FlexKey, order_of
from repro.storage import StorageError, StorageManager, StructuralIndex
from repro.workloads import xmark
from repro.xmlmodel import XmlDocument, XmlNode, parse_fragment

TAGS = ["person", "name", "city", "interest", "profile", "note", "nope"]

PATHS = [
    [("descendant", "city")],
    [("descendant", "person"), ("descendant", "city")],
    [("descendant", "site"), ("descendant", "interest")],
    [("child", "site"), ("child", "people"), ("child", "person")],
    [("child", "site"), ("descendant", "name")],
]


def build_site(num_persons: int = 12) -> StorageManager:
    storage = StorageManager()
    xmark.register_site(storage, num_persons, seed=7)
    return storage


def live_element_keys(storage: StorageManager) -> list[FlexKey]:
    root = storage.root_key("site.xml")
    return [root] + storage.descendants_unindexed(root)


def assert_storage_consistent(storage: StorageManager) -> None:
    """Every fast path equals its walk-based oracle."""
    root = storage.root_key("site.xml")
    keys = live_element_keys(storage)
    for tag in TAGS + [None]:
        assert storage.descendants(root, tag) \
            == storage.descendants_unindexed(root, tag), tag
    for key in keys:
        for tag in (None, "city", "person", "interest"):
            assert storage.children(key, tag) \
                == storage.children_unindexed(key, tag), (key, tag)
        assert storage.descendants(key, "city") \
            == storage.descendants_unindexed(key, "city"), key
        assert storage.tag_path(key) == _walk_tag_path(storage, key), key
    for steps in PATHS:
        assert storage.find_by_path("site.xml", steps) \
            == storage.find_by_path_unindexed("site.xml", steps), steps


def _walk_tag_path(storage, key):
    tags = []
    node = storage.node(key)
    while node is not None:
        if node.is_element:
            tags.append(node.tag)
        node = node.parent
    return tuple(reversed(tags))


class TestRandomInterleavings:
    """Random insert/delete/replace streams keep both paths identical."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_mutation_stream(self, seed):
        rng = random.Random(seed)
        storage = build_site(10)
        root = storage.root_key("site.xml")
        fragment_counter = 0
        for step in range(60):
            keys = live_element_keys(storage)
            op = rng.choice(["insert", "insert", "delete", "replace_text",
                             "replace_attribute"])
            if op == "insert":
                parent = rng.choice(keys)
                fragment_counter += 1
                fragment = parse_fragment(
                    f'<note id="n{fragment_counter}">'
                    f'<city>Quincy</city>note text</note>')[0]
                children = storage.children(parent)
                if children and rng.random() < 0.6:
                    anchor = rng.choice(children)
                    if rng.random() < 0.5:
                        storage.insert_fragment(parent, fragment,
                                                after=anchor)
                    else:
                        storage.insert_fragment(parent, fragment,
                                                before=anchor)
                else:
                    storage.insert_fragment(parent, fragment)
            elif op == "delete":
                candidates = [k for k in keys if k != root]
                if candidates:
                    storage.delete_subtree(rng.choice(candidates))
            elif op == "replace_text":
                storage.replace_text(rng.choice(keys), f"text-{step}")
            else:
                storage.replace_attribute(rng.choice(keys), "mark",
                                          str(step))
            if step % 10 == 9:
                assert_storage_consistent(storage)
        assert_storage_consistent(storage)

    def test_extended_atoms_stay_in_range(self):
        """Repeated same-anchor inserts force extended sibling atoms
        ("we can always create new gaps"); the prefix-range scans must
        keep seeing every key exactly once."""
        storage = build_site(3)
        root = storage.root_key("site.xml")
        people = storage.children(root, "people")[0]
        anchor = storage.children(people, "person")[0]
        for i in range(25):
            storage.insert_fragment(
                people, XmlNode.element("person", {"id": f"x{i}"}),
                after=anchor)
        assert_storage_consistent(storage)
        got = storage.children(people, "person")
        assert got == storage.children_unindexed(people, "person")
        assert [k.value for k in got] \
            == sorted(k.value for k in got)


class TestFindByPathDedupe:
    def test_overlapping_descendant_steps_no_duplicates(self):
        storage = StorageManager()
        storage.register(XmlDocument.from_string(
            "nest.xml", "<a><b><b><c/></b></b><c/></a>"))
        # Step 1 puts both b elements (an ancestor and its descendant) on
        # the frontier; both reach the same inner c.
        result = storage.find_by_path(
            "nest.xml", [("descendant", "b"), ("descendant", "c")])
        assert len(result) == 1
        result = storage.find_by_path_unindexed(
            "nest.xml", [("descendant", "b"), ("descendant", "c")])
        assert len(result) == 1

    def test_results_in_document_order(self):
        storage = build_site(6)
        for steps in PATHS:
            keys = storage.find_by_path("site.xml", steps)
            assert [k.value for k in keys] \
                == sorted(k.value for k in keys), steps
            assert len({k.value for k in keys}) == len(keys), steps


class TestIndexUnits:
    def test_unindexed_manager_has_no_index(self):
        storage = StorageManager(indexed=False)
        xmark.register_site(storage, 3)
        assert not storage.indexed and storage.index is None
        root = storage.root_key("site.xml")
        assert storage.descendants(root, "city") \
            == storage.descendants_unindexed(root, "city")

    def test_unknown_key_still_raises(self):
        storage = build_site(3)
        with pytest.raises(StorageError):
            storage.descendants(FlexKey("zz.zz"), "city")
        with pytest.raises(StorageError):
            storage.children(FlexKey("zz.zz"), "city")

    def test_deleted_key_rejected_like_unindexed(self):
        storage = build_site(3)
        root = storage.root_key("site.xml")
        victim = storage.descendants(root, "person")[0]
        storage.delete_subtree(victim)
        with pytest.raises(StorageError):
            storage.descendants(victim, "city")

    def test_index_stats_track_mutations(self):
        storage = build_site(3)
        stats = storage.index.stats()
        before = stats["indexed_elements"]
        root = storage.root_key("site.xml")
        victim = storage.descendants(root, "person")[0]
        dropped = len([n for n in storage.node(victim).iter_subtree()
                       if n.is_element])
        storage.delete_subtree(victim)
        assert storage.index.stats()["indexed_elements"] \
            == before - dropped

    def test_interned_keys_are_reused(self):
        storage = build_site(3)
        root = storage.root_key("site.xml")
        first = storage.descendants(root, "city")
        second = storage.descendants(root, "city")
        assert all(a is b for a, b in zip(first, second))

    def test_structural_index_is_exported(self):
        from repro.storage.index import StructuralIndex as module_cls
        assert module_cls is StructuralIndex
        assert isinstance(StorageManager().index, StructuralIndex)


class TestFlexKeyMemoization:
    def test_atoms_cached_per_instance(self):
        key = FlexKey("b.cd.ef")
        assert key.atoms is key.atoms
        assert key.atoms == ("b", "cd", "ef")

    def test_order_token_follows_override_chain(self):
        base = FlexKey("b.c")
        override = FlexKey("z.z", override=FlexKey("a.a"))
        key = base.with_override(override)
        assert order_of(key) == "a.a"
        assert key.order_token() == "a.a"
        # identity (value) is unchanged by the override
        assert key.value == "b.c"
        assert key < FlexKey("b.b")  # compares by overriding order

    def test_tag_path_cache_survives_unrelated_updates(self):
        storage = build_site(4)
        root = storage.root_key("site.xml")
        city = storage.descendants(root, "city")[0]
        path = storage.tag_path(city)
        assert path == ("site", "people", "person", "address", "city")
        people = storage.children(root, "people")[0]
        storage.insert_fragment(
            people, parse_fragment(xmark.new_person_xml(99))[0])
        assert storage.tag_path(city) == path
