"""ChaosProxy: a fault-injecting TCP proxy for the serving layer.

``tests/faults.py`` injects the classic storage failure modes at the
filesystem seam; this module is its twin at the *network* seam.  A
:class:`ChaosProxy` sits between a real :class:`ReproClient` and a real
:class:`ViewServer` (nothing mocked, real sockets on both sides) and
injects:

* **connection drops** — :meth:`sever_all` cuts every live link at an
  arbitrary moment (mid-frame included), and ``sever_after_chunks``
  cuts each link on its own after N forwarded chunks;
* **frame truncation** — a severed link can first forward a prefix of
  its final chunk (``truncate_on_sever``), so the victim sees a torn
  frame, not just EOF;
* **frame splitting** — ``split_frames`` forwards in small random
  slices, exercising every partial-feed path in ``FrameDecoder``;
* **delays** — ``delay`` sleeps (jittered) before each forward;
* **blackholes** — :meth:`blackhole` swallows traffic silently in both
  directions (connections stay up, bytes vanish), which is what makes
  clients *time out* rather than observe an error;
* **refusal / retargeting** — :meth:`refuse` turns away new
  connections (a dead server), :meth:`retarget` points new connections
  at a different port (a server restarted elsewhere, invisible to the
  client behind its stable proxy address).

Everything random draws from one seeded ``random.Random`` so a failing
schedule replays exactly.
"""

from __future__ import annotations

import random
import socket
import threading
import time

__all__ = ["ChaosProxy"]


class _Link:
    """One proxied connection: two pump threads, one shared teardown."""

    def __init__(self, proxy: "ChaosProxy", client_sock, server_sock):
        self.proxy = proxy
        self.client_sock = client_sock
        self.server_sock = server_sock
        self._closed = False
        self._lock = threading.Lock()
        self._chunks = 0
        self._threads = [
            threading.Thread(target=self._pump,
                             args=(client_sock, server_sock, "c2s"),
                             daemon=True, name="chaos-c2s"),
            threading.Thread(target=self._pump,
                             args=(server_sock, client_sock, "s2c"),
                             daemon=True, name="chaos-s2c"),
        ]

    def start(self) -> None:
        for thread in self._threads:
            thread.start()

    def _pump(self, src, dst, direction) -> None:
        proxy = self.proxy
        try:
            while True:
                data = src.recv(16384)
                if not data:
                    break
                if (proxy.blackhole_c2s if direction == "c2s"
                        else proxy.blackhole_s2c):
                    continue            # bytes vanish; links stay up
                if proxy.delay:
                    time.sleep(proxy.delay
                               * (0.5 + proxy._draw().random()))
                with self._lock:
                    self._chunks += 1
                    cut = (proxy.sever_after_chunks
                           and self._chunks >= proxy.sever_after_chunks)
                if cut:
                    if proxy.truncate_on_sever and len(data) > 1:
                        # a torn frame: forward a prefix, then die
                        keep = 1 + proxy._draw().randrange(len(data) - 1)
                        dst.sendall(data[:keep])
                    proxy.severed += 1
                    break
                if proxy.split_frames:
                    view = memoryview(data)
                    while view:
                        step = 1 + proxy._draw().randrange(
                            min(len(view), 7))
                        dst.sendall(view[:step])
                        view = view[step:]
                else:
                    dst.sendall(data)
                proxy.bytes_forwarded += len(data)
        except OSError:
            pass
        finally:
            self.close()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for sock in (self.client_sock, self.server_sock):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self.proxy._forget(self)


class ChaosProxy:
    """A TCP proxy in front of one server, with fault knobs.

    Connect clients to ``(proxy.host, proxy.port)``; each accepted
    connection is bridged to the current target.  All knobs apply
    immediately to live links (and to future ones).
    """

    def __init__(self, target_port: int, *,
                 target_host: str = "127.0.0.1", seed: int = 0):
        self.target_host = target_host
        self.target_port = target_port
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        # fault knobs (plain attributes; toggled from the test thread)
        self.delay = 0.0
        self.split_frames = False
        self.blackhole_c2s = False
        self.blackhole_s2c = False
        self.refusing = False
        self.sever_after_chunks = 0
        self.truncate_on_sever = False
        # observability for assertions
        self.accepted = 0
        self.refused = 0
        self.severed = 0
        self.bytes_forwarded = 0
        self._links: set[_Link] = set()
        self._lock = threading.Lock()
        self._closed = False
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(128)
        self.host, self.port = self._listener.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="chaos-accept")
        self._accept_thread.start()

    def _draw(self) -> random.Random:
        # Random is not thread-safe across pumps; hand each draw a
        # child generator seeded deterministically from the parent.
        with self._rng_lock:
            return random.Random(self._rng.getrandbits(32))

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client_sock, _ = self._listener.accept()
            except OSError:
                return
            if self.refusing or self._closed:
                self.refused += 1
                try:
                    client_sock.close()
                except OSError:
                    pass
                continue
            try:
                server_sock = socket.create_connection(
                    (self.target_host, self.target_port), timeout=5.0)
            except OSError:
                self.refused += 1
                try:
                    client_sock.close()
                except OSError:
                    pass
                continue
            self.accepted += 1
            link = _Link(self, client_sock, server_sock)
            with self._lock:
                self._links.add(link)
            link.start()

    def _forget(self, link: _Link) -> None:
        with self._lock:
            self._links.discard(link)

    # -- controls (called from the test thread) ------------------------------------------

    def sever_all(self) -> int:
        """Cut every live link right now; returns how many died."""
        with self._lock:
            links = list(self._links)
        for link in links:
            self.severed += 1
            link.close()
        return len(links)

    def blackhole(self, on: bool = True,
                  direction: str = "both") -> None:
        """Silently swallow traffic on all links.  ``direction`` is
        ``"c2s"``, ``"s2c"`` or ``"both"`` — an s2c-only blackhole is
        how a request *applies* but its reply is lost, the scenario
        idempotency tokens exist for."""
        if direction in ("c2s", "both"):
            self.blackhole_c2s = on
        if direction in ("s2c", "both"):
            self.blackhole_s2c = on

    def refuse(self, on: bool = True) -> None:
        """Turn away new connections (existing links unaffected)."""
        self.refusing = on

    def retarget(self, port: int, host: str = "127.0.0.1") -> None:
        """Point *new* connections at a different backend — the shape
        of a server restarted on another port behind a stable VIP."""
        self.target_host = host
        self.target_port = port

    @property
    def live_links(self) -> int:
        with self._lock:
            return len(self._links)

    def stop(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        self.sever_all()
        self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()
