"""Multi-view maintenance: routing, policies, cost fallback, consistency.

Every consistency assertion uses the paper's criterion — a view's extent
must serialize identically (content and order) to recomputation over the
current sources.
"""

import pytest

from repro import StorageManager, UpdateRequest, ViewRegistry
from repro.multiview import CostModel, DEFERRED, threshold
from repro.multiview.router import SharedValidationRouter
from repro.updates.sapt import Sapt
from repro.workloads import bib as bibload
from repro.workloads import xmark

from .helpers import books_of, closed_auctions_of as auctions_of, persons_of


def multiview_storage(num_persons: int = 20) -> StorageManager:
    storage = StorageManager()
    bibload.register_running_example(storage)
    xmark.register_site(storage, num_persons)
    return storage


def standard_registry(num_persons: int = 20,
                      **policies) -> tuple[StorageManager, ViewRegistry]:
    """A registry with one bib view and three site views."""
    storage = multiview_storage(num_persons)
    registry = ViewRegistry(storage)
    registry.register("ygroup", bibload.YEAR_GROUP_QUERY,
                      policy=policies.get("ygroup", "immediate"))
    registry.register("seniors", xmark.SELECTION_QUERY,
                      policy=policies.get("seniors", "immediate"))
    registry.register("sales", xmark.JOIN_QUERY,
                      policy=policies.get("sales", "immediate"))
    registry.register("profiles", xmark.ORDER_QUERY_1,
                      policy=policies.get("profiles", "immediate"))
    return storage, registry


def assert_all_consistent(registry: ViewRegistry) -> None:
    for name in registry.names():
        got = registry.query(name)
        want = registry.recompute_xml(name)
        assert got == want, (
            f"view {name} diverged from recomputation\n"
            f" got: {got}\nwant: {want}")


def ages_of(storage):
    return storage.find_by_path(
        "site.xml",
        [("child", "site"), ("child", "people"), ("child", "person"),
         ("child", "profile"), ("child", "age")])


class TestInterleavedStream:
    def test_four_views_interleaved_updates_all_consistent(self):
        storage, registry = standard_registry()
        persons = persons_of(storage)
        auctions = auctions_of(storage)
        books = books_of(storage)
        updates = [
            UpdateRequest.insert("bib.xml", books[-1],
                                 bibload.NEW_BOOK_FRAGMENT, "after"),
            UpdateRequest.insert("site.xml", persons[-1],
                                 xmark.new_person_xml(1, city="Cairo",
                                                      age=61), "after"),
            UpdateRequest.delete("site.xml", persons[0]),
            UpdateRequest.delete("site.xml", persons[4]),
            UpdateRequest.insert("site.xml", auctions[0],
                                 xmark.new_closed_auction_xml(7, "person3"),
                                 "before"),
            UpdateRequest.delete("bib.xml", books[0]),
            UpdateRequest.insert("site.xml", persons[7],
                                 xmark.new_person_xml(2, age=19), "before"),
            UpdateRequest.delete("site.xml", auctions[3]),
            # name is exposed content (no predicate): a plain modify
            UpdateRequest.modify(
                "site.xml",
                storage.children(persons[8], "name")[0], "Renamed 8"),
        ]
        report = registry.apply_updates(updates)
        # Shared validation: each request classified exactly once.
        assert report.classifications == len(updates)
        assert report.updates == len(updates)
        assert_all_consistent(registry)

    def test_predicate_modifies_first_class(self):
        """Modifies that feed a predicate propagate as first-class
        retract/assert pairs — nothing is decomposed."""
        storage, registry = standard_registry()
        ages = ages_of(storage)
        persons = persons_of(storage)
        updates = [
            # age feeds the selection view's predicate
            UpdateRequest.modify("site.xml", ages[3], "77"),
            UpdateRequest.insert("site.xml", persons[-1],
                                 xmark.new_person_xml(5, age=50), "after"),
            UpdateRequest.modify("site.xml", ages[8], "12"),
        ]
        report = registry.apply_updates(updates)
        # both predicate modifies probed the router and hit
        assert registry.router.stats.predicate_checks >= 2
        assert registry.router.stats.predicate_modifies >= 2
        assert report.updates == len(updates)
        assert_all_consistent(registry)

    def test_legacy_decomposition_flag_removed(self):
        """The modify_decomposition escape hatch is gone; the registry
        rejects the old keyword instead of silently ignoring it."""
        storage = multiview_storage()
        with pytest.raises(TypeError, match="modify_decomposition"):
            ViewRegistry(storage, modify_decomposition=True)


class TestRouting:
    def test_update_routed_only_to_relevant_views(self):
        storage, registry = standard_registry()
        books = books_of(storage)
        report = registry.apply_updates([UpdateRequest.insert(
            "bib.xml", books[-1], bibload.NEW_BOOK_FRAGMENT, "after")])
        assert report.routed == 1
        assert registry.view("ygroup").stats.routed_trees == 1
        for site_view in ("seniors", "sales", "profiles"):
            assert registry.view(site_view).stats.routed_trees == 0
            assert registry.view(site_view).report.batches == 0
        assert_all_consistent(registry)

    def test_irrelevant_everywhere_hits_storage_exactly_once(self):
        storage, registry = standard_registry()
        before = {name: registry.to_xml(name) for name in registry.names()}
        # An author fragment sits below bib's binding-only /bib/book path
        # and inside no site view's documents: irrelevant to every view.
        book = books_of(storage)[0]
        author = storage.children(book, "author")[0]
        report = registry.apply_updates([UpdateRequest.insert(
            "bib.xml", author, "<author><last>New</last></author>",
            "after")])
        assert report.irrelevant_everywhere == 1
        assert report.routed == 0
        assert report.storage_ops == 1
        for name, xml in before.items():
            assert registry.to_xml(name) == xml  # nothing propagated
        assert_all_consistent(registry)

    def test_router_matches_per_view_validation(self):
        storage, registry = standard_registry()
        targets = ([("bib.xml", key) for key in books_of(storage)[:2]]
                   + [("site.xml", key) for key in persons_of(storage)[:3]]
                   + [("site.xml", key) for key in auctions_of(storage)[:2]]
                   + [("site.xml", key) for key in ages_of(storage)[:2]])
        for document, target in targets:
            routed = registry.router.route(storage, document, target).views
            expected = {
                name for name in registry.names()
                if registry.view(name).pipeline.sapt.is_relevant(
                    storage, document, target)}
            assert routed == expected, (document, target)

    def test_unregister_stops_routing(self):
        storage, registry = standard_registry()
        registry.unregister("profiles")
        assert "profiles" not in registry
        assert len(registry) == 3
        persons = persons_of(storage)
        report = registry.apply_updates([UpdateRequest.insert(
            "site.xml", persons[-1], xmark.new_person_xml(3), "after")])
        assert report.classifications == 1
        assert "profiles" not in report.views
        assert_all_consistent(registry)

    def test_duplicate_name_rejected(self):
        _storage, registry = standard_registry()
        with pytest.raises(ValueError):
            registry.register("ygroup", bibload.YEAR_GROUP_QUERY)

    def test_unmaterialized_view_rejects_updates(self):
        storage = multiview_storage()
        registry = ViewRegistry(storage)
        registry.register("seniors", xmark.SELECTION_QUERY,
                          materialize=False)
        persons = persons_of(storage)
        with pytest.raises(RuntimeError, match="materialize"):
            registry.apply_updates([UpdateRequest.insert(
                "site.xml", persons[-1], xmark.new_person_xml(1, age=70),
                "after")])

    def test_close_detaches_storage_listener(self):
        storage, registry = standard_registry()
        registry.close()
        registry.close()  # idempotent
        counted_before = registry._storage_ops
        storage.replace_text(
            storage.children(persons_of(storage)[0], "name")[0], "x")
        assert registry._storage_ops == counted_before  # no longer counting


class TestDeferredPolicy:
    def test_deferred_view_flushes_on_read(self):
        storage, registry = standard_registry(seniors=DEFERRED)
        stale = registry.to_xml("seniors")
        persons = persons_of(storage)
        registry.apply_updates([UpdateRequest.insert(
            "site.xml", persons[-1], xmark.new_person_xml(1, age=70),
            "after")])
        view = registry.view("seniors")
        assert view.pending_trees() == 1
        assert registry.to_xml("seniors") == stale  # not yet propagated
        assert registry.query("seniors") == registry.recompute_xml("seniors")
        assert view.pending_trees() == 0
        assert view.stats.flushes == 1
        assert_all_consistent(registry)

    def test_immediate_views_unaffected_by_neighbour_deferral(self):
        storage, registry = standard_registry(seniors=DEFERRED)
        persons = persons_of(storage)
        registry.apply_updates([UpdateRequest.insert(
            "site.xml", persons[-1], xmark.new_person_xml(2, age=66),
            "after")])
        # profiles is immediate: already refreshed without a read.
        assert (registry.to_xml("profiles")
                == registry.recompute_xml("profiles"))

    def test_delete_is_a_barrier_for_deferred_views(self):
        storage, registry = standard_registry(seniors=DEFERRED)
        persons = persons_of(storage)
        registry.apply_updates([UpdateRequest.insert(
            "site.xml", persons[-1], xmark.new_person_xml(4, age=55),
            "after")])
        assert registry.view("seniors").pending_trees() == 1
        registry.apply_updates([
            UpdateRequest.delete("site.xml", persons[2])])
        # The queued insert and the delete both propagated before the
        # subtree left storage.
        assert registry.view("seniors").pending_trees() == 0
        assert (registry.to_xml("seniors")
                == registry.recompute_xml("seniors"))
        assert_all_consistent(registry)

    def test_nested_insert_covered_by_pending_insert(self):
        storage, registry = standard_registry(profiles=DEFERRED)
        persons = persons_of(storage)
        first = registry.apply_updates([UpdateRequest.insert(
            "site.xml", persons[-1], xmark.new_person_xml(6), "after")])
        new_person = storage.find_by_path(
            "site.xml", [("child", "site"), ("child", "people"),
                         ("child", "person")])[-1]
        profile = storage.children(new_person, "profile")[0]
        # An interest inside the still-pending person: the queued insert
        # reads final storage at flush time, so this must not be queued
        # again (it would double-count).
        registry.apply_updates([UpdateRequest.insert(
            "site.xml", profile, '<interest category="category1"/>',
            "into")])
        assert registry.view("profiles").pending_trees() == 1
        assert (registry.query("profiles")
                == registry.recompute_xml("profiles"))
        assert_all_consistent(registry)


class TestThresholdPolicy:
    def test_flushes_when_pending_reaches_bound(self):
        storage, registry = standard_registry(seniors=threshold(3))
        view = registry.view("seniors")
        persons = persons_of(storage)
        for index in range(2):
            registry.apply_updates([UpdateRequest.insert(
                "site.xml", persons[-1],
                xmark.new_person_xml(index, age=60 + index), "after")])
        assert view.pending_trees() == 2
        assert view.stats.flushes == 0
        registry.apply_updates([UpdateRequest.insert(
            "site.xml", persons[-1], xmark.new_person_xml(9, age=45),
            "after")])
        assert view.pending_trees() == 0
        assert view.stats.flushes == 1
        assert (registry.to_xml("seniors")
                == registry.recompute_xml("seniors"))
        assert_all_consistent(registry)


class TestCountSignedDrainDiscipline:
    """Cross-batch count-signed trees (inserts and modify pairs) in one
    deferred queue re-derive against *final* storage at flush time, so
    through a shared group or join key one queued tree absorbs another's
    contribution and the derivation counts silently inflate — invisible
    in the XML until a retraction under-removes and leaves a stale
    duplicate.  The registry must drain queued signed trees before a new
    signed mutation lands (for entangled views; per-item linear views
    keep batching).  These are the minimized repros that found the bug.
    """

    @pytest.fixture(autouse=True)
    def force_incremental(self, monkeypatch):
        # The cost model's recompute fallback masks the bug (and its
        # wall-clock calibration made the failures flaky): pin every
        # flush to the incremental path.
        monkeypatch.setattr(CostModel, "should_recompute",
                            lambda self, trees: False)

    @staticmethod
    def grouped_registry():
        storage = StorageManager()
        xmark.register_site(storage, 12, seed=7)
        registry = ViewRegistry(storage)
        registry.register("bycity", xmark.PERSONS_BY_CITY_QUERY,
                          policy=DEFERRED)
        return storage, registry

    @staticmethod
    def city_of(storage, person):
        address = storage.children(person, "address")[0]
        return storage.children(address, "city")[0]

    def test_queued_insert_not_absorbed_by_later_pair(self):
        storage, registry = self.grouped_registry()
        persons = persons_of(storage)
        registry.apply_updates([UpdateRequest.insert(
            "site.xml", storage.children(persons[3], "address")[0],
            "<city>Worcester</city>", "into")])
        city = self.city_of(storage, persons[5])
        registry.apply_updates([UpdateRequest.modify(
            "site.xml", city, "Worcester")])
        # The retraction under-removes if the queued insert's flush
        # absorbed the pair's assert half.
        registry.apply_updates([UpdateRequest.modify(
            "site.xml", city, "Paris")])
        assert registry.query("bycity") == registry.recompute_xml("bycity")

    def test_queued_inserts_not_double_counted_across_batches(self):
        storage, registry = self.grouped_registry()
        persons = persons_of(storage)
        registry.apply_updates([UpdateRequest.insert(
            "site.xml", storage.children(persons[4], "address")[0],
            "<city>Tokyo</city>", "into")])
        registry.apply_updates([UpdateRequest.insert(
            "site.xml", persons[-1],
            '<person id="np1"><name>New Person</name><address>'
            '<street>1 New St</street><city>Tokyo</city>'
            '<country>United States</country></address></person>',
            "after")])
        registry.apply_updates([UpdateRequest.delete(
            "site.xml", persons[4])])
        assert registry.query("bycity") == registry.recompute_xml("bycity")

    def test_queued_pair_not_absorbed_by_later_pair(self):
        storage, registry = self.grouped_registry()
        persons = persons_of(storage)
        first = self.city_of(storage, persons[2])
        second = self.city_of(storage, persons[7])
        registry.apply_updates([UpdateRequest.modify(
            "site.xml", first, "Atlantis")])
        registry.apply_updates([UpdateRequest.modify(
            "site.xml", second, "Atlantis")])
        registry.apply_updates([UpdateRequest.modify(
            "site.xml", first, "Lima")])
        assert registry.query("bycity") == registry.recompute_xml("bycity")

    def test_queued_pairs_consistent_under_delete_barrier(self):
        storage, registry = self.grouped_registry()
        persons = persons_of(storage)
        registry.apply_updates([UpdateRequest.modify(
            "site.xml", self.city_of(storage, persons[2]), "Atlantis")])
        registry.apply_updates([UpdateRequest.modify(
            "site.xml", self.city_of(storage, persons[7]), "Atlantis")])
        registry.apply_updates([UpdateRequest.delete(
            "site.xml", persons[2])])
        assert registry.query("bycity") == registry.recompute_xml("bycity")

    def test_entanglement_classifier(self):
        storage, registry = standard_registry()
        assert not registry.view("seniors").entangled    # selection
        assert not registry.view("profiles").entangled   # projection
        assert registry.view("ygroup").entangled         # group-by
        assert registry.view("sales").entangled          # join


class TestCostBasedFallback:
    def test_flush_falls_back_to_recompute_when_incremental_loses(self):
        storage = multiview_storage()
        registry = ViewRegistry(storage)
        # Calibrate so any pending tree looks more expensive than a full
        # recomputation: per-tree cost huge, recompute cost ~zero.
        registry.register(
            "seniors", xmark.SELECTION_QUERY,
            cost_model=CostModel(recompute_seconds=0.0,
                                 per_tree_seconds=1.0, alpha=1e-9))
        persons = persons_of(storage)
        registry.apply_updates([UpdateRequest.insert(
            "site.xml", persons[-1], xmark.new_person_xml(1, age=71),
            "after")])
        view = registry.view("seniors")
        assert view.stats.recomputes == 1
        assert view.report.recomputed
        assert view.report.batches == 0  # nothing propagated incrementally
        assert_all_consistent(registry)

    def test_recompute_after_delete_barrier_sees_final_storage(self):
        storage = multiview_storage()
        registry = ViewRegistry(storage)
        registry.register(
            "seniors", xmark.SELECTION_QUERY,
            cost_model=CostModel(recompute_seconds=0.0,
                                 per_tree_seconds=1.0, alpha=1e-9))
        persons = persons_of(storage)
        registry.apply_updates([
            UpdateRequest.delete("site.xml", persons[1]),
            UpdateRequest.delete("site.xml", persons[2]),
        ])
        view = registry.view("seniors")
        assert view.stats.recomputes == 1
        assert (registry.to_xml("seniors")
                == registry.recompute_xml("seniors"))

    def test_uncalibrated_model_stays_incremental(self):
        model = CostModel()
        assert not model.should_recompute(10_000)
        model.observe_recompute(0.5)
        assert not model.should_recompute(10_000)  # per-tree still unknown
        model.observe_propagation(10, 1.0)
        assert model.should_recompute(6)   # 6 * 0.1 > 0.5
        assert not model.should_recompute(4)

    def test_ewma_calibration(self):
        model = CostModel(alpha=0.5)
        model.observe_propagation(10, 1.0)
        assert model.per_tree_seconds == pytest.approx(0.1)
        model.observe_propagation(10, 2.0)
        assert model.per_tree_seconds == pytest.approx(0.15)
        model.observe_recompute(1.0)
        model.observe_recompute(3.0)
        assert model.recompute_seconds == pytest.approx(2.0)


class TestSharedRouterUnit:
    def test_interned_paths_shared_between_identical_views(self):
        storage = multiview_storage()
        router = SharedValidationRouter()
        from repro.translate import translate_query
        plan_a = translate_query(xmark.SELECTION_QUERY)
        plan_b = translate_query(xmark.SELECTION_QUERY)
        router.subscribe("a", Sapt.from_plan(plan_a.prepare()))
        router.subscribe("b", Sapt.from_plan(plan_b.prepare()))
        person = persons_of(storage)[0]
        result = router.route(storage, "site.xml", person)
        assert result.views == {"a", "b"}
        assert router.stats.classifications == 1
        # identical path sets intern into the same entries
        entries = router._index["site.xml"]
        assert all(entry.any_views == {"a", "b"} for entry in entries)

    def test_unsubscribed_view_removed_from_index(self):
        storage = multiview_storage()
        router = SharedValidationRouter()
        from repro.translate import translate_query
        plan = translate_query(xmark.SELECTION_QUERY).prepare()
        router.subscribe("only", Sapt.from_plan(plan))
        router.unsubscribe("only")
        person = persons_of(storage)[0]
        assert router.route(storage, "site.xml", person).views == frozenset()
