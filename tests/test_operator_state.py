"""Persistent operator-state correctness (the cross-run cache layer).

The store must be *observationally invisible*: a view maintained with
persistent per-operator state enabled produces byte-identical extents to
full recomputation (the paper's correctness oracle) and to the same view
maintained stateless — under randomized mixed insert/delete/modify
streams, after forced invalidation, and across the shared registry.
"""

from __future__ import annotations

import random

import pytest

from repro import (MaterializedXQueryView, StorageManager, UpdateRequest,
                   ViewRegistry)
from repro.engine.opstate import subplan_signature
from repro.workloads import xmark
from repro.xat import AtomicItem, GroupBy, NavigateUnnest, Path, Source, \
    XatTuple
from repro.xat.grouping import compute_aggregate, merge_member_items

from .helpers import (assert_consistent, closed_auctions_of, persons_of,
                      random_batch, run_differential)


def fresh_view(query: str, n: int = 30, operator_state: bool = True,
               seed: int = 42):
    storage = StorageManager()
    xmark.register_site(storage, n, seed=seed)
    view = MaterializedXQueryView(storage, query,
                                  operator_state=operator_state)
    view.materialize()
    return storage, view


#: the historical mixed-stream update space of this module, now expressed
#: through the shared differential-harness mutators
ORACLE_MUTATORS = ("insert_person", "insert_auction", "delete_person",
                   "delete_auction", "modify_name")


def random_update(rng: random.Random, storage: StorageManager,
                  step: int) -> UpdateRequest:
    """One randomized insert / delete / modify against site.xml (a
    single-update batch drawn from the shared mutator pool)."""
    while True:
        batch = random_batch(rng, storage, step, ORACLE_MUTATORS,
                             max_size=1)
        if batch:
            return batch[0]


MAINTAINED_QUERIES = [("join", xmark.JOIN_QUERY),
                      ("group-by-city", xmark.PERSONS_BY_CITY_QUERY)]


class TestRandomizedOracle:
    """Maintained extent == recompute_xml() under mixed random streams
    (driven through the shared :func:`tests.helpers.run_differential`
    harness)."""

    @pytest.mark.parametrize("name,query", MAINTAINED_QUERIES)
    def test_single_updates(self, name, query):
        run_differential(101, 30, ORACLE_MUTATORS, query,
                         num_persons=30, site_seed=42, batch_max=1)

    @pytest.mark.parametrize("name,query", MAINTAINED_QUERIES)
    def test_batched_updates(self, name, query):
        run_differential(202, 10, ORACLE_MUTATORS, query,
                         num_persons=30, site_seed=42, batch_max=4)

    @pytest.mark.parametrize("name,query", MAINTAINED_QUERIES)
    def test_forced_invalidation(self, name, query):
        """Dropping every cached table mid-stream must be harmless: the
        store rebuilds lazily and the extent never diverges."""
        rng = random.Random(303)
        storage, view = fresh_view(query)
        for step in range(20):
            if step % 5 == 3:
                view.state_store.invalidate_all()
            view.apply_updates([random_update(rng, storage, step)])
            assert_consistent(view)
        assert view.state_store.stats.invalidations >= 3

    @pytest.mark.parametrize("name,query", MAINTAINED_QUERIES)
    def test_matches_stateless_maintenance(self, name, query):
        """Store on vs store off: byte-identical maintained extents."""
        run_differential(404, 15, ORACLE_MUTATORS, query,
                         num_persons=30, site_seed=42, batch_max=1,
                         operator_state=True,
                         twin={"operator_state": False})


class TestStoreActivity:

    def test_join_sides_served_and_patched(self):
        """Alternating person/auction inserts keep both side entries warm:
        the untouched side serves from cache, the touched side patches."""
        storage, view = fresh_view(xmark.JOIN_QUERY)
        for step in range(6):
            anchor = (persons_of(storage)[-1] if step % 2 == 0
                      else closed_auctions_of(storage)[-1])
            fragment = (xmark.new_person_xml(step) if step % 2 == 0
                        else xmark.new_closed_auction_xml(step, "person1"))
            report = view.apply_updates(
                [UpdateRequest.insert("site.xml", anchor, fragment,
                                      "after")])
            assert_consistent(view)
        stats = view.state_store.stats
        assert stats.hits > 0
        assert stats.patches > 0
        assert report.state_hits > 0  # surfaced per maintenance pass

    def test_flat_maintenance_cost_counters(self):
        """Steady state serves without recomputation: after warm-up, a
        batch costs hits/patches, never misses."""
        storage, view = fresh_view(xmark.JOIN_QUERY)
        anchor = persons_of(storage)[-1]
        view.apply_updates([UpdateRequest.insert(
            "site.xml", anchor, xmark.new_person_xml(0), "after")])
        misses_before = view.state_store.stats.misses
        for step in range(1, 5):
            view.apply_updates([UpdateRequest.insert(
                "site.xml", anchor, xmark.new_person_xml(step), "after")])
        assert view.state_store.stats.misses == misses_before
        assert_consistent(view)

    def test_direct_storage_mutation_invalidates(self):
        """A mutation outside maintenance (no delta run to patch from)
        must not leave a stale serve behind.

        Bypassing the V-P-A pipeline never updates the extent — stateless
        maintenance diverges from the recompute oracle identically — but
        the *next* maintenance pass must read current storage, so the
        store-enabled view has to stay byte-identical to a stateless twin
        across the out-of-band write.
        """
        from repro.xmlmodel import parse_fragment

        views = {}
        for label, enabled in (("stateful", True), ("stateless", False)):
            storage, view = fresh_view(xmark.JOIN_QUERY,
                                       operator_state=enabled)
            anchor = persons_of(storage)[-1]
            view.apply_updates([UpdateRequest.insert(
                "site.xml", anchor, xmark.new_person_xml(0), "after")])
            auctions_parent = storage.parent_key(
                closed_auctions_of(storage)[-1])
            storage.insert_fragment(
                auctions_parent,
                parse_fragment(
                    xmark.new_closed_auction_xml(99, "person2"))[0])
            view.apply_updates([UpdateRequest.insert(
                "site.xml", anchor, xmark.new_person_xml(1), "after")])
            views[label] = view
        assert views["stateful"].to_xml() == views["stateless"].to_xml()
        # The out-of-band auction insert invalidated the cached side.
        assert views["stateful"].state_store.stats.invalidations >= 1


def assert_no_dead_keys(view) -> None:
    """No cached tuple may reference a key that left storage — a stale
    reference would crash (or silently corrupt) a later probe."""
    storage = view.storage
    for entry in view.state_store.entries():
        if not entry.valid or entry.table is None:
            continue
        for tup in entry.table.tuples:
            for cell in tup.cells.values():
                items = (cell if isinstance(cell, list)
                         else [cell] if cell is not None else [])
                for item in items:
                    key = (getattr(item, "key", None)
                           or getattr(item, "source_key", None))
                    assert key is None or storage.has_node(key), (
                        f"dead key {key} cached in {entry.signature[:60]}")


class TestCacheLiveness:

    def test_no_dead_keys_after_mixed_stream(self):
        """Delete staging/commit must purge every reference to the
        deleted subtrees from the persisted tables and indexes."""
        rng = random.Random(606)
        storage, view = fresh_view(xmark.JOIN_QUERY)
        for step in range(25):
            batch = random_batch(rng, storage, step, ORACLE_MUTATORS,
                                 max_size=3)
            view.apply_updates(batch)
            assert_consistent(view)
            assert_no_dead_keys(view)


class TestRegistrySharing:

    def test_structurally_equal_views_share_entries(self):
        storage = StorageManager()
        xmark.register_site(storage, 30)
        with ViewRegistry(storage) as registry:
            registry.register("a", xmark.JOIN_QUERY)
            registry.register("b", xmark.JOIN_QUERY)
            anchor = persons_of(storage)[-1]
            registry.apply_updates([UpdateRequest.insert(
                "site.xml", anchor, xmark.new_person_xml(0), "after")])
            registry.apply_updates([UpdateRequest.insert(
                "site.xml", anchor, xmark.new_person_xml(1), "after")])
            # Both views' auction sides resolve to one shared entry.
            assert registry.state_store.entry_count() == 1
            assert registry.query("a") == registry.recompute_xml("a")
            assert registry.query("b") == registry.recompute_xml("b")

    def test_mixed_policies_over_shared_store(self):
        rng = random.Random(505)
        storage = StorageManager()
        xmark.register_site(storage, 30)
        with ViewRegistry(storage) as registry:
            registry.register("now", xmark.JOIN_QUERY)
            registry.register("later", xmark.PERSONS_BY_CITY_QUERY,
                              policy="deferred")
            for step in range(15):
                registry.apply_updates(
                    [random_update(rng, storage, step)])
                assert registry.query("now") == \
                    registry.recompute_xml("now")
                assert registry.query("later") == \
                    registry.recompute_xml("later")

    def test_disabled_store(self):
        storage = StorageManager()
        xmark.register_site(storage, 20)
        with ViewRegistry(storage, operator_state=False) as registry:
            registry.register("v", xmark.JOIN_QUERY)
            assert registry.state_store is None
            anchor = persons_of(storage)[-1]
            registry.apply_updates([UpdateRequest.insert(
                "site.xml", anchor, xmark.new_person_xml(0), "after")])
            assert registry.query("v") == registry.recompute_xml("v")

    def test_close_detaches_listener(self):
        storage = StorageManager()
        xmark.register_site(storage, 10)
        registry = ViewRegistry(storage)
        registry.register("v", xmark.JOIN_QUERY)
        store = registry.state_store
        registry.close()
        registry.close()  # idempotent
        assert store._attached is False


class TestSignatures:

    def test_same_query_same_signature(self):
        from repro.translate import translate_query
        a = translate_query(xmark.JOIN_QUERY).prepare()
        b = translate_query(xmark.JOIN_QUERY).prepare()
        assert subplan_signature(a) == subplan_signature(b)

    def test_different_queries_differ(self):
        from repro.translate import translate_query
        a = translate_query(xmark.JOIN_QUERY).prepare()
        b = translate_query(xmark.SELECTION_QUERY).prepare()
        assert subplan_signature(a) != subplan_signature(b)


class TestAntiProjection:
    """ANTI ("state minus roots") = scalar coverage drops the tuple,
    collection coverage filters members — probe and table must agree."""

    def _spec(self, storage, root_key):
        from repro.xat import DeltaSpec
        from repro.xat.base import DeltaRoot
        return DeltaSpec("site.xml", (DeltaRoot(root_key, "insert"),),
                         "insert")

    def test_project_tuple_filters_collection_members(self):
        from repro.engine.opstate import _project_tuple
        storage = StorageManager()
        xmark.register_site(storage, 3)
        person = persons_of(storage)[0]
        other = persons_of(storage)[1]
        spec = self._spec(storage, person)
        from repro.xat.table import NodeItem
        tup = XatTuple({"$p": NodeItem(other),
                        "$c": [NodeItem(person), NodeItem(other)]})
        projected = _project_tuple(tup, spec)
        assert projected is not None  # scalar cell not covered
        kept = projected["$c"]
        assert [i.key for i in kept] == [other]

    def test_project_tuple_drops_on_scalar_coverage(self):
        from repro.engine.opstate import _project_tuple
        storage = StorageManager()
        xmark.register_site(storage, 3)
        person = persons_of(storage)[0]
        spec = self._spec(storage, person)
        from repro.xat.table import NodeItem
        tup = XatTuple({"$p": NodeItem(person)})
        assert _project_tuple(tup, spec) is None


class TestStateHooks:
    """Unit coverage of the per-operator patch rules."""

    def test_merge_member_items_counts(self):
        a = AtomicItem("x", count=1)
        b = AtomicItem("y", count=1)
        merged = merge_member_items([a, b], [AtomicItem("y", count=-1),
                                             AtomicItem("z", count=2)])
        values = {item.value: item.count for item in merged}
        assert values == {"x": 1, "z": 2}

    def test_merge_member_items_rejects_unmatched_negative(self):
        assert merge_member_items([], [AtomicItem("x", count=-1)]) is None

    def test_groupby_agg_state_apply(self):
        plan = GroupBy(
            NavigateUnnest(Source("d.xml", "$S"), "$S",
                           Path.parse("/r/i"), "$i"),
            ("$g",), agg=("sum", "$v", "$out"))
        plan.prepare()
        old = compute_aggregate("sum", [XatTuple(
            {"$v": AtomicItem("10", count=1)})], "$v", None)
        existing = XatTuple({"$g": AtomicItem("k"),
                             "$out": AtomicItem(old.value(), agg=old)})
        delta_state = compute_aggregate("sum", [XatTuple(
            {"$v": AtomicItem("5", count=1)})], "$v", None)
        dt = XatTuple({"$g": AtomicItem("k"),
                       "$out": AtomicItem(delta_state.value(),
                                          agg=delta_state)})
        verb, merged = plan.state_apply(existing, dt, None)
        assert verb == "replace"
        out = merged["$out"]
        assert out.value == "15"

    def test_groupby_agg_removes_emptied_group(self):
        plan = GroupBy(
            NavigateUnnest(Source("d.xml", "$S"), "$S",
                           Path.parse("/r/i"), "$i"),
            ("$g",), agg=("count", "$v", "$out"))
        plan.prepare()
        old = compute_aggregate("count", [XatTuple(
            {"$v": AtomicItem("10", source_key=None, count=1)})],
            "$v", None)
        existing = XatTuple({"$g": AtomicItem("k"),
                             "$out": AtomicItem(old.value(), agg=old)},
                            count=1)
        gone = compute_aggregate("count", [XatTuple(
            {"$v": AtomicItem("10", source_key=None, count=1)},
            count=-1)], "$v", None)
        dt = XatTuple({"$g": AtomicItem("k"),
                       "$out": AtomicItem(gone.value(), agg=gone)},
                      count=-1)
        verb, _merged = plan.state_apply(existing, dt, None)
        assert verb == "remove"
