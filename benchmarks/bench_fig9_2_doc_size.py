"""Fig 9.2: varying source document size (Section 9.2).

For the selection view (Query 1) and the join view (Query 2): incremental
maintenance of a fixed-size insert batch vs full recomputation, as the
source document grows; plus the V-P-A breakdown of the maintenance cost.
"""

from bench_common import (materialized_view, ms, persons, print_table,
                          ratio, scales, time_call, xmark)
from repro import UpdateRequest

BATCH_SIZE = 4
QUERIES = [("Query 1 (selection)", xmark.SELECTION_QUERY),
           ("Query 2 (join)", xmark.JOIN_QUERY)]


def measure(query: str, num_persons: int):
    storage, view = materialized_view(query, num_persons)
    anchors = persons(storage)
    updates = [UpdateRequest.insert(
        "site.xml", anchors[-1], xmark.new_person_xml(i), "after")
        for i in range(BATCH_SIZE)]
    report = view.apply_updates(updates)
    recompute = time_call(lambda: view.recompute_xml(), repeat=2)
    return report, recompute


def figure_rows(query: str):
    rows = []
    for n in scales():
        report, recompute = measure(query, n)
        rows.append([n, ms(report.total_seconds), ms(recompute),
                     f"{recompute / max(report.total_seconds, 1e-9):6.1f}x"])
    return rows


def breakdown_rows(query: str, num_persons: int):
    report, _ = measure(query, num_persons)
    total = report.total_seconds
    return [[phase, ms(value), ratio(value, total)]
            for phase, value in [("validate", report.validate_seconds),
                                 ("propagate", report.propagate_seconds),
                                 ("apply", report.apply_seconds)]]


def test_maintenance_beats_recompute_selection():
    report, recompute = measure(xmark.SELECTION_QUERY, 200)
    assert report.total_seconds < recompute, (report.total_seconds, recompute)


def test_maintenance_beats_recompute_join():
    report, recompute = measure(xmark.JOIN_QUERY, 200)
    assert report.total_seconds < recompute, (report.total_seconds, recompute)


def test_result_stays_correct():
    storage, view = materialized_view(xmark.JOIN_QUERY, 100)
    anchors = persons(storage)
    view.apply_updates([UpdateRequest.insert(
        "site.xml", anchors[-1], xmark.new_person_xml(1), "after")])
    assert view.to_xml() == view.recompute_xml()


def test_benchmark_incremental_insert(benchmark):
    def run():
        storage, view = materialized_view(xmark.JOIN_QUERY, 100)
        anchors = persons(storage)
        view.apply_updates([UpdateRequest.insert(
            "site.xml", anchors[-1], xmark.new_person_xml(1), "after")])

    benchmark(run)


if __name__ == "__main__":
    for name, query in QUERIES:
        print_table(
            f"Fig 9.2 (top): varying document size — {name}, "
            f"{BATCH_SIZE}-insert batch",
            ["persons", "maintain (ms)", "recompute (ms)", "speedup"],
            figure_rows(query))
        largest = scales()[-1]
        print_table(
            f"Fig 9.2 (bottom): V-P-A breakdown — {name} at {largest}",
            ["phase", "cost (ms)", "of total"],
            breakdown_rows(query, largest))
    from bench_common import save_json

    save_json("fig9_2_doc_size")
