"""Shared machinery for the semantic-identifier figures (Figs 4.9-4.10).

The paper reports the overhead of generating semantic identifiers relative
to query execution time, and its breakdown (id composition vs order-prefix
assignment), for a navigation-light and a construction-heavy query.
"""

from __future__ import annotations

from bench_common import (Engine, Profiler, fresh_site, ms, print_table,
                          ratio, scales, time_call, translate_query)

#: Query 1 of Fig 4.8 (flavour): grouping view with moderate construction.
SEMID_QUERY_1 = """<result>{
for $c in distinct-values(doc("site.xml")/site/people/person/address/city)
return <city-group name="{$c}">{
 for $p in doc("site.xml")/site/people/person
 where $c = $p/address/city
 return <entry>{$p/name}</entry>
}</city-group>}</result>"""

#: Query 2 of Fig 4.8 (flavour): construction-heavy restructuring.
SEMID_QUERY_2 = """<result>
{<customers>{
 for $p in doc("site.xml")/site/people/person
 return <customer><location>{$p/address/city}</location>{$p/name}</customer>
}</customers>}
{<open_bids>{
 for $oa in doc("site.xml")/site/open_auctions/open_auction
 return <bid>{$oa/reserve}{$oa/initial}</bid>
}</open_bids>}
</result>"""


def measure_semid_cost(query: str, num_persons: int) -> dict[str, float]:
    storage = fresh_site(num_persons)
    engine = Engine(storage)
    plan = translate_query(query)
    profiler = Profiler(enabled=True)
    execution = time_call(lambda: engine.query(plan, profiler=profiler),
                          repeat=2)
    semid = profiler.totals.get("semantic_id", 0.0) / 2
    prefixes = profiler.totals.get("overriding_order", 0.0) / 2
    return {"execution": execution, "semantic_id": semid,
            "order_prefix": prefixes, "total": semid + prefixes}


def figure_rows(query: str) -> list[list[str]]:
    rows = []
    for n in scales():
        m = measure_semid_cost(query, n)
        rows.append([n, ms(m["execution"]), ms(m["total"]),
                     ratio(m["total"], m["execution"])])
    return rows


def print_figure(figure: str, name: str, query: str) -> None:
    print_table(
        f"Fig {figure}(a): semantic-id overhead vs execution — {name}",
        ["persons", "exec (ms)", "semid (ms)", "semid/exec"],
        figure_rows(query))
    largest = scales()[-1]
    m = measure_semid_cost(query, largest)
    print_table(
        f"Fig {figure}(b): semantic-id cost breakdown at {largest} persons",
        ["component", "cost (ms)", "of exec"],
        [["id composition", ms(m["semantic_id"]),
          ratio(m["semantic_id"], m["execution"])],
         ["order prefixes", ms(m["order_prefix"]),
          ratio(m["order_prefix"], m["execution"])]])


def assert_semid_overhead_small(query: str, num_persons: int = 100,
                                limit: float = 0.55) -> None:
    m = measure_semid_cost(query, num_persons)
    assert m["total"] <= limit * m["execution"] + 0.004, (
        f"semantic-id cost {m['total']:.4f}s exceeds {limit:.0%} of "
        f"execution {m['execution']:.4f}s")
