"""Fig 9.6: deleting an entire grouped fragment (Section 9.5, Query 3).

Deleting every person of one city removes the city's whole
``persons-list`` fragment from the grouped view.  The Deep Union
disconnects the fragment *at its root* — the apply phase does O(1) work
for the fragment regardless of its size — instead of deleting descendants
one by one (the [LD00] strategy the paper compares against) or
recomputing.
"""

from bench_common import (materialized_view, ms, persons, print_table,
                          scales, time_call, xmark)
from repro import UpdateRequest

QUERY = xmark.PERSONS_BY_CITY_QUERY


def _city_members(storage, city: str):
    members = []
    for person in persons(storage):
        address = storage.children(person, "address")[0]
        if storage.text(storage.children(address, "city")[0]) == city:
            members.append(person)
    return members


def _largest_city(storage):
    cities = {}
    for person in persons(storage):
        address = storage.children(person, "address")[0]
        city = storage.text(storage.children(address, "city")[0])
        cities[city] = cities.get(city, 0) + 1
    return max(cities, key=cities.get)


def measure(num_persons: int):
    storage, view = materialized_view(QUERY, num_persons)
    city = _largest_city(storage)
    members = _city_members(storage, city)
    updates = [UpdateRequest.delete("site.xml", m) for m in members]
    report = view.apply_updates(updates)
    recompute = time_call(lambda: view.recompute_xml(), repeat=2)
    return city, len(members), report, recompute


def figure_rows():
    rows = []
    for n in scales():
        city, size, report, recompute = measure(n)
        rows.append([n, size, ms(report.total_seconds), ms(recompute),
                     report.fusion.removed_roots,
                     report.fusion.removed_nodes])
    return rows


def test_fragment_removed_at_root():
    _city, size, report, _ = measure(100)
    # One of the removed roots is the whole city-group fragment: far more
    # nodes vanish than roots are disconnected.
    assert report.fusion.removed_roots <= size + 2
    assert report.fusion.removed_nodes > report.fusion.removed_roots

    storage, view = materialized_view(QUERY, 100)
    city = _largest_city(storage)
    members = _city_members(storage, city)
    view.apply_updates([UpdateRequest.delete("site.xml", m)
                        for m in members])
    assert f'name="{city}"' not in view.to_xml()
    assert view.to_xml() == view.recompute_xml()


def test_apply_phase_is_negligible():
    """The headline of Fig 9.6: the *apply* phase disconnects the whole
    fragment at its root — its cost is tiny and independent of the
    fragment size (no per-descendant deletion)."""
    _city, size, report, recompute = measure(150)
    assert size >= 5
    assert report.apply_seconds < 0.2 * report.total_seconds + 0.002
    assert report.apply_seconds < 0.5 * recompute


def test_benchmark_fragment_delete(benchmark):
    benchmark(lambda: measure(100))


if __name__ == "__main__":
    print_table(
        "Fig 9.6: deleting the largest city's persons-list fragment",
        ["persons", "frag size", "maintain (ms)", "recompute (ms)",
         "roots cut", "nodes gone"],
        figure_rows())
    from bench_common import save_json

    save_json("fig9_6_fragment_delete")
