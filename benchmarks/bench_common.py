"""Shared setup for the benchmark modules."""

from __future__ import annotations

import argparse
import json
import sys

from repro import MaterializedXQueryView, Profiler, StorageManager
from repro.bench.harness import (ms, print_table, ratio, recorded_tables,
                                 scales, time_call)
from repro.engine import Engine
from repro.translate import translate_query
from repro.workloads import xmark

__all__ = ["Engine", "MaterializedXQueryView", "Profiler", "StorageManager",
           "fresh_site", "materialized_view", "ms", "persons", "auctions",
           "print_table", "ratio", "save_json", "scales", "time_call",
           "translate_query", "xmark"]


def fresh_site(num_persons: int, seed: int = 42,
               indexed: bool = True) -> StorageManager:
    storage = StorageManager(indexed=indexed)
    xmark.register_site(storage, num_persons, seed=seed)
    return storage


def materialized_view(query: str, num_persons: int, seed: int = 42,
                      indexed: bool = True) -> tuple[StorageManager,
                                                     MaterializedXQueryView]:
    storage = fresh_site(num_persons, seed=seed, indexed=indexed)
    view = MaterializedXQueryView(storage, query)
    view.materialize()
    return storage, view


def persons(storage: StorageManager):
    return storage.find_by_path(
        "site.xml",
        [("child", "site"), ("child", "people"), ("child", "person")])


def auctions(storage: StorageManager):
    return storage.find_by_path(
        "site.xml",
        [("child", "site"), ("child", "closed_auctions"),
         ("child", "closed_auction")])


# -- machine-readable output -------------------------------------------------------
#
# Every figure script accepts a shared ``--json PATH`` flag when run as a
# script: the tables it prints (recorded by ``print_table``) are persisted
# as JSON so sweeps can be archived and diffed instead of only printed.

def json_output_path(argv=None) -> str | None:
    """The ``--json PATH`` flag value, tolerating unknown arguments."""
    parser = argparse.ArgumentParser(add_help=False)
    parser.add_argument("--json", default=None, metavar="PATH")
    args, _unknown = parser.parse_known_args(
        sys.argv[1:] if argv is None else argv)
    return args.json


def save_json(benchmark: str, extra: dict | None = None,
              argv=None) -> str | None:
    """Persist every table printed so far to the ``--json`` path (if any).

    Call at the end of a figure script's ``__main__`` block; a no-op when
    the flag is absent, so plain console runs are unchanged.
    """
    path = json_output_path(argv)
    if not path:
        return None
    payload = {"benchmark": benchmark, "tables": recorded_tables()}
    if extra:
        payload.update(extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\n[results saved to {path}]")
    return path
