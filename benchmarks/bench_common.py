"""Shared setup for the benchmark modules."""

from __future__ import annotations

from repro import MaterializedXQueryView, Profiler, StorageManager
from repro.bench.harness import ms, print_table, ratio, scales, time_call
from repro.engine import Engine
from repro.translate import translate_query
from repro.workloads import xmark

__all__ = ["Engine", "MaterializedXQueryView", "Profiler", "StorageManager",
           "fresh_site", "materialized_view", "ms", "persons", "auctions",
           "print_table", "ratio", "scales", "time_call", "translate_query",
           "xmark"]


def fresh_site(num_persons: int, seed: int = 42) -> StorageManager:
    storage = StorageManager()
    xmark.register_site(storage, num_persons, seed=seed)
    return storage


def materialized_view(query: str, num_persons: int,
                      seed: int = 42) -> tuple[StorageManager,
                                               MaterializedXQueryView]:
    storage = fresh_site(num_persons, seed=seed)
    view = MaterializedXQueryView(storage, query)
    view.materialize()
    return storage, view


def persons(storage: StorageManager):
    return storage.find_by_path(
        "site.xml",
        [("child", "site"), ("child", "people"), ("child", "person")])


def auctions(storage: StorageManager):
    return storage.find_by_path(
        "site.xml",
        [("child", "site"), ("child", "closed_auctions"),
         ("child", "closed_auction")])
