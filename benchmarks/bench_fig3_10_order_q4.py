"""Fig 3.10: cost of handling order — construction order (Query 4) (Section 3.5)."""

from bench_common import fresh_site, translate_query, xmark
from order_cost import (assert_order_overhead_small, measure_order_cost,
                        print_figure)

QUERY = xmark.ORDER_QUERY_4


def test_order_overhead_is_small():
    assert_order_overhead_small(QUERY)


def test_benchmark_query_execution(benchmark):
    from bench_common import Engine

    storage = fresh_site(100)
    plan = translate_query(QUERY)
    engine = Engine(storage)
    benchmark(lambda: engine.query(plan))


def figure_rows():
    from order_cost import figure_rows as rows

    return rows(QUERY)


if __name__ == "__main__":
    print_figure("3.10", "construction order (Query 4)", QUERY)
    from bench_common import save_json

    save_json("fig3_10_order_q4")
