"""Fig 9.3: varying view selectivity (Section 9.3).

The selection view's predicate (``age > X``) is swept so the view retains
~75/50/25/5 percent of the persons; maintenance cost of one insert batch is
compared against recomputation at each selectivity.
"""

from bench_common import (materialized_view, ms, persons, print_table,
                          scales, time_call, xmark)
from repro import UpdateRequest

#: (label, age threshold) — ages are uniform in [18, 78).
SELECTIVITIES = [("~100%", "0"), ("~66%", "38"), ("~33%", "58"),
                 ("~8%", "73")]

QUERY_TEMPLATE = """<result>{
for $p in doc("site.xml")/site/people/person
where $p/profile/age > "%s"
return <senior>{$p/name} {$p/address/city}</senior>
}</result>"""


def measure(threshold: str, num_persons: int):
    storage, view = materialized_view(QUERY_TEMPLATE % threshold,
                                      num_persons)
    anchors = persons(storage)
    updates = [UpdateRequest.insert(
        "site.xml", anchors[-1], xmark.new_person_xml(i, age=80), "after")
        for i in range(3)]
    report = view.apply_updates(updates)
    recompute = time_call(lambda: view.recompute_xml(), repeat=2)
    return report, recompute


def figure_rows(num_persons: int):
    rows = []
    for label, threshold in SELECTIVITIES:
        report, recompute = measure(threshold, num_persons)
        rows.append([label, ms(report.total_seconds), ms(recompute),
                     f"{recompute / max(report.total_seconds, 1e-9):6.1f}x"])
    return rows


def test_maintenance_cheap_across_selectivities():
    for _label, threshold in SELECTIVITIES:
        report, recompute = measure(threshold, 150)
        assert report.total_seconds < recompute


def test_benchmark_low_selectivity_maintenance(benchmark):
    def run():
        storage, view = materialized_view(QUERY_TEMPLATE % "73", 100)
        anchors = persons(storage)
        view.apply_updates([UpdateRequest.insert(
            "site.xml", anchors[-1], xmark.new_person_xml(1, age=80),
            "after")])

    benchmark(run)


if __name__ == "__main__":
    largest = scales()[-1]
    print_table(
        f"Fig 9.3: varying query selectivity at {largest} persons",
        ["selectivity", "maintain (ms)", "recompute (ms)", "speedup"],
        figure_rows(largest))
    from bench_common import save_json

    save_json("fig9_3_selectivity")
