"""Perf suite: indexed vs unindexed storage across XMark scaling factors.

Runs the fig-3/fig-9 style scenarios twice — through the incremental
:class:`repro.storage.StructuralIndex` fast paths and through the
walk-based unindexed fallbacks — and emits one machine-readable
``BENCH_perf_suite.json``:

* **navigation_descendant** (fig 9.2 regime, descendant-heavy): ``//``
  location paths and whole-document descendant scans, where the index
  turns an O(document) tree walk into a binary search plus a slice;
* **navigation_child_paths** (fig 3 regime): child-step-only paths;
* **selectivity** (fig 9.3 regime): descendant scans over tags of
  decreasing match frequency at the largest document size;
* **view_maintenance_insert** (fig 9.2 maintenance): end-to-end
  incremental maintenance of the join view under an insert batch;
* **join_maintenance**: the operator-state payoff (Chapter 7's promise):
  steady-state per-batch maintenance seconds of the join view at a fixed
  insert-batch size, with the persistent
  :class:`repro.engine.OperatorStateStore` vs cold (stateless) — the
  persistent series must stay flat in document size while the cold one
  grows, and both extents must match the recomputation oracle
  (``join_maintenance.ok`` in the JSON gates CI);
* **modify_heavy**: modify-dominated batches of predicate-feeding city
  modifies through the persons-by-city view — the incremental path
  (first-class retract/assert pairs, cost model pinned to never
  recompute) vs the full-recomputation fallback (cost model pinned to
  always recompute); the gate (``modify_heavy.ok``) requires both
  extents to match the recompute oracle at every scale and the
  incremental per-batch cost to stay no worse than recomputation at
  document sizes large enough to judge;
* **cold_start_vs_restore**: the durability payoff — rebuilding a
  session (parse the document, materialize every view, re-apply the
  update history) vs reopening its durable directory
  (``Database(durable_path=...)``: checkpoint restore plus WAL-tail
  replay).  Both sides must serve identical view XML, and at the
  largest scale the restore must be strictly faster than the cold
  start (``cold_start_vs_restore.ok`` gates CI);
* **update_overhead**: the honest cost of index upkeep — raw
  insert+delete batches against indexed vs unindexed storage;
* **api_overhead**: the cost of the :class:`repro.api.Database` facade —
  the same logical insert+delete stream driven through ``Database.batch``
  (path-addressed statements, resolved at flush) vs directly through
  ``ViewRegistry.apply_updates`` with pre-resolved FlexKeys.  The facade
  passes (``api_overhead.ok``) when it stays under 5% relative overhead
  *or* under 100 microseconds of absolute cost per statement — the
  operator-state store collapsed per-batch maintenance to O(batch), so
  the ratio now compares the facade against near-constant work and the
  absolute per-statement bound is the stable claim.  The observability
  layer (``repro.obs``) runs in its shipping, *enabled* state here — the
  gate covers the instrumented engine, not a stripped one;
* **observability_overhead**: the instrumentation tax in isolation —
  the same facade workload with the metrics/tracing layer enabled vs
  force-disabled (``repro.obs.set_enabled(False)``), pair-timed like the
  facade comparison.  Informational (the gated claim is ``api_overhead``
  with instrumentation on); the target is the ≤2% always-on budget;
* **server_fanout**: the serving layer under push fan-out — one writer
  session streams update batches through :class:`repro.server.ViewServer`
  over real sockets while 1 → 100 → 1000 subscribers hold push
  subscriptions on the same view; records updates/s, pushed frames/s and
  end-of-run delivery lag, and gates (``server_fanout.ok``) on every
  subscriber receiving the full gap-free delta sequence.

Every navigation scenario also diffs the two paths' results; the suite
refuses to report a speedup for answers that disagree
(``consistency_ok``).

Run ``python benchmarks/bench_perf_suite.py`` (with ``PYTHONPATH=src``)
from the repo root; ``--scales 20,40`` shrinks the sweep for CI smoke
runs, ``--json PATH`` redirects the output file, and
``--metrics-json PATH`` additionally dumps the ``Database.metrics()``
snapshot collected during the observability run (the CI metrics-smoke
artifact), and ``--fanout 1,4`` shrinks the server_fanout subscriber
ladder.
"""

from __future__ import annotations

import argparse
import gc
import json
import selectors
import shutil
import socket
import statistics
import tempfile
import threading

import time

from bench_common import (fresh_site, materialized_view, ms, persons,
                          print_table, scales, time_call, xmark)

from repro import (CostModel, MaterializedXQueryView, UpdateRequest,
                   ViewRegistry)
from repro.api import Database
from repro.obs import set_enabled
from repro.server import ReproClient, start_in_thread
from repro.server.protocol import FrameDecoder, encode_frame
from repro.xmlmodel import parse_fragment


class _NeverRecompute(CostModel):
    """Pin a view to the incremental path regardless of observations."""

    def should_recompute(self, trees: int) -> bool:
        return False


class _AlwaysRecompute(CostModel):
    """Pin a view to full recomputation at every flush."""

    def should_recompute(self, trees: int) -> bool:
        return True

#: Descendant-heavy location paths (the fig 9.2-style navigation load).
NAV_DESCENDANT_PATHS = [
    ("//city", [("descendant", "city")]),
    ("//interest", [("descendant", "interest")]),
    ("//date", [("descendant", "date")]),
    ("//person//age", [("descendant", "person"), ("descendant", "age")]),
]

#: Whole-document descendant scans bundled into the same workload.
NAV_DESCENDANT_TAGS = ["person", "city", "interest", "education", "date"]

#: Child-step-only paths (the fig 3-style query navigation load).
NAV_CHILD_PATHS = [
    ("/site/people/person/profile/age",
     [("child", "site"), ("child", "people"), ("child", "person"),
      ("child", "profile"), ("child", "age")]),
    ("/site/people/person/address/city",
     [("child", "site"), ("child", "people"), ("child", "person"),
      ("child", "address"), ("child", "city")]),
    ("/site/closed_auctions/closed_auction/date",
     [("child", "site"), ("child", "closed_auctions"),
      ("child", "closed_auction"), ("child", "date")]),
]

#: Tags of decreasing match frequency for the fig 9.3-style sweep.
SELECTIVITY_TAGS = ["interest", "person", "city", "initial", "people"]

UPDATE_BATCH = 8
MAINTENANCE_BATCH = 4
API_BATCH = 10
#: informational ratio target, and the gated absolute per-statement cost.
#: The facade's relative overhead is measured against view maintenance
#: that the operator-state store made O(batch) instead of O(document)
#: (work units dropped ~6x), so the stable facade claim is absolute: each
#: path-addressed statement may add at most this many seconds over the
#: pre-resolved direct stream.
API_OVERHEAD_TARGET = 0.05
API_STATEMENT_OVERHEAD_TARGET = 100e-6

#: A descendant-heavy view: its V-P-A maintenance navigates ``//`` paths
#: from the document root, the regime where range scans replace walks.
DESC_VIEW_QUERY = """<result>{
for $c in doc("site.xml")//city
return <c>{$c}</c>
}</result>"""

MAINTENANCE_QUERIES = [("join", xmark.JOIN_QUERY),
                       ("descendant-city", DESC_VIEW_QUERY)]


# -- workloads (indexed / unindexed run the same calls) ----------------------------

def run_paths(storage, paths, indexed: bool):
    find = (storage.find_by_path if indexed
            else storage.find_by_path_unindexed)
    results = []
    for _label, steps in paths:
        results.append(find("site.xml", steps))
    return results


def run_descendant_scans(storage, tags, indexed: bool):
    root = storage.root_key("site.xml")
    scan = storage.descendants if indexed else storage.descendants_unindexed
    return [scan(root, tag) for tag in tags]


def _series_entry(num_persons: int, indexed_s: float, unindexed_s: float,
                  **extra) -> dict:
    entry = {"persons": num_persons,
             "indexed_seconds": indexed_s,
             "unindexed_seconds": unindexed_s,
             "speedup": unindexed_s / indexed_s if indexed_s > 0 else None}
    entry.update(extra)
    return entry


def measure_navigation(scenario_paths, desc_tags, scale_list, repeat: int
                       ) -> tuple[list[dict], bool]:
    series = []
    consistent = True
    for n in scale_list:
        storage = fresh_site(n)
        fast = run_paths(storage, scenario_paths, True)
        slow = run_paths(storage, scenario_paths, False)
        fast += run_descendant_scans(storage, desc_tags, True)
        slow += run_descendant_scans(storage, desc_tags, False)
        consistent = consistent and fast == slow
        indexed_s = time_call(
            lambda: (run_paths(storage, scenario_paths, True),
                     run_descendant_scans(storage, desc_tags, True)),
            repeat=repeat)
        unindexed_s = time_call(
            lambda: (run_paths(storage, scenario_paths, False),
                     run_descendant_scans(storage, desc_tags, False)),
            repeat=repeat)
        series.append(_series_entry(
            n, indexed_s, unindexed_s,
            matches=sum(len(r) for r in fast)))
    return series, consistent


def measure_selectivity(num_persons: int, repeat: int
                        ) -> tuple[list[dict], bool]:
    storage = fresh_site(num_persons)
    root = storage.root_key("site.xml")
    total_elements = len(storage.descendants(root)) + 1
    series = []
    consistent = True
    for tag in SELECTIVITY_TAGS:
        fast = storage.descendants(root, tag)
        slow = storage.descendants_unindexed(root, tag)
        consistent = consistent and fast == slow
        indexed_s = time_call(lambda: storage.descendants(root, tag),
                              repeat=repeat)
        unindexed_s = time_call(
            lambda: storage.descendants_unindexed(root, tag), repeat=repeat)
        series.append(_series_entry(
            num_persons, indexed_s, unindexed_s, tag=tag, matches=len(fast),
            selectivity=len(fast) / total_elements))
    return series, consistent


def measure_maintenance(scale_list, repeat: int) -> list[dict]:
    def maintain_once(query: str, n: int, indexed: bool) -> float:
        storage, view = materialized_view(query, n, indexed=indexed)
        anchors = persons(storage)
        updates = [UpdateRequest.insert(
            "site.xml", anchors[-1], xmark.new_person_xml(i), "after")
            for i in range(MAINTENANCE_BATCH)]
        return view.apply_updates(updates).total_seconds

    series = []
    for n in scale_list:
        for query_name, query in MAINTENANCE_QUERIES:
            timings = {indexed: min(maintain_once(query, n, indexed)
                                    for _ in range(repeat))
                       for indexed in (True, False)}
            series.append(_series_entry(n, timings[True], timings[False],
                                        query=query_name,
                                        batch=MAINTENANCE_BATCH))
    return series


JOIN_MAINT_BATCH = 4

#: flatness target of the ISSUE acceptance: persistent per-batch time may
#: vary by at most this factor across the 50→400-person sweep
JOIN_MAINT_FLAT_TARGET = 2.0


#: the join-maintenance execution arms: the shipping configuration
#: (delta-plan VM + persistent operator state), the stateless VM, and
#: the per-tuple tree interpreter the compiled gate is judged against
JOIN_MAINT_ARMS = (
    ("persistent", {"operator_state": True}),
    ("cold", {"operator_state": False}),
    ("interpreter", {"operator_state": False, "compiled": False}),
)


def measure_join_maintenance(scale_list, repeat: int) -> list[dict]:
    """Steady-state join-view maintenance across the execution arms.

    One measured unit is an insert batch of ``JOIN_MAINT_BATCH`` persons
    propagated through the join view; the inserted persons are deleted
    again (untimed for the series, but also maintained — keeping the
    operator state warm across cycles).  The first cycle is an untimed
    warm-up that populates the persistent side's cached tables; cold
    views re-derive their side tables every batch, which is the
    O(document) regime this scenario exposes.

    Three arms run per scale: ``persistent`` (the shipping config —
    delta-plan VM over the persistent operator-state store), ``cold``
    (VM, stateless) and ``interpreter`` (the per-tuple tree interpreter,
    stateless — the pre-compilation execution engine).  Besides the
    min-of-N wall time each arm records the *median per-batch propagate
    phase* (``MaintenanceReport.propagate_seconds``), which isolates the
    execution engine from the shared storage-mutation cost; the compiled
    ≥5x gate compares those medians.
    """
    series = []
    for n in scale_list:
        entry = {"persons": n, "batch": JOIN_MAINT_BATCH}
        xml = {}
        for label, options in JOIN_MAINT_ARMS:
            storage = fresh_site(n)
            view = MaterializedXQueryView(storage, xmark.JOIN_QUERY,
                                          **options)
            view.materialize()
            anchor = persons(storage)[-1]

            def insert_batch():
                return view.apply_updates([
                    UpdateRequest.insert("site.xml", anchor,
                                         xmark.new_person_xml(9000 + i),
                                         "after")
                    for i in range(JOIN_MAINT_BATCH)])

            def restore():
                view.apply_updates([
                    UpdateRequest.delete("site.xml", key)
                    for key in persons(storage)[n:]])

            insert_batch()   # warm-up populates the operator state
            restore()
            best = float("inf")
            propagates = []
            # Sub-ms units under host contention need more cycles than
            # the document-scaled scenarios: the gate compares two
            # minima across a sweep, so each must actually be a minimum.
            for _ in range(max(repeat * 2, 7)):
                started = time.perf_counter()
                report = insert_batch()
                best = min(best, time.perf_counter() - started)
                propagates.append(report.propagate_seconds)
                restore()
            entry[f"{label}_seconds"] = best
            entry[f"{label}_propagate_seconds"] = \
                statistics.median(propagates)
            xml[label] = view.to_xml()
            entry.setdefault("consistency_ok", True)
            entry["consistency_ok"] = (entry["consistency_ok"]
                                       and xml[label]
                                       == view.recompute_xml())
            view.close()
        entry["consistency_ok"] = (entry["consistency_ok"]
                                   and xml["persistent"] == xml["cold"]
                                   and xml["persistent"]
                                   == xml["interpreter"])
        entry["speedup"] = (entry["cold_seconds"]
                            / entry["persistent_seconds"]
                            if entry["persistent_seconds"] > 0 else None)
        entry["compiled_speedup"] = (
            entry["interpreter_propagate_seconds"]
            / entry["persistent_propagate_seconds"]
            if entry["persistent_propagate_seconds"] > 0 else None)
        series.append(entry)
    return series


#: the compiled-execution acceptance: at the judge scale the delta-plan
#: VM's per-batch propagate median must beat the tree interpreter's by
#: at least this factor
COMPILED_SPEEDUP_TARGET = 5.0
COMPILED_JUDGE_SCALE = 400


def _compiled_speedup_gate(series: list[dict]) -> tuple:
    """(worst judged compiled speedup | None, gate verdict).

    Judged only at scales where a batch clearly outruns timer jitter
    (``COMPILED_JUDGE_SCALE``); smoke sweeps below it return
    ``(None, True)`` — consistency alone gates there.
    """
    judged = [entry["compiled_speedup"] for entry in series
              if entry["persons"] >= COMPILED_JUDGE_SCALE
              and entry["compiled_speedup"] is not None]
    if not judged:
        return None, True
    worst = min(judged)
    return worst, worst >= COMPILED_SPEEDUP_TARGET


def join_maintenance_gate(series: list[dict]) -> dict:
    """The CI gate: persistent per-batch time must not grow superlinearly
    with document size (and must stay under the flatness target on the
    full sweep), the compiled VM must beat the tree interpreter by
    ``COMPILED_SPEEDUP_TARGET`` on per-batch propagate medians at the
    judge scale, with every consistency check green."""
    first, last = series[0], series[-1]
    flat_ratio = (last["persistent_seconds"] / first["persistent_seconds"]
                  if first["persistent_seconds"] > 0 else float("inf"))
    scale_ratio = last["persons"] / first["persons"]
    consistency = all(entry["consistency_ok"] for entry in series)
    compiled_speedup, compiled_ok = _compiled_speedup_gate(series)
    # Smoke runs sweep a narrow range where sub-ms jitter dominates; the
    # flatness target only binds once the sweep spans the full 8x range.
    # A single-scale run has no growth to judge: consistency alone gates.
    if scale_ratio <= 1.0:
        target = None
        ok = consistency
    else:
        target = (JOIN_MAINT_FLAT_TARGET if scale_ratio >= 8.0
                  else scale_ratio)
        ok = consistency and flat_ratio < target
    return {"flat_ratio": flat_ratio,
            "scale_ratio": scale_ratio,
            "target": target,
            "compiled_speedup": compiled_speedup,
            "compiled_target": COMPILED_SPEEDUP_TARGET,
            "compiled_judge_scale": COMPILED_JUDGE_SCALE,
            "consistency_ok": consistency,
            "ok": ok and compiled_ok}


MODIFY_HEAVY_BATCH = 6

#: the incremental per-batch cost must stay no worse than full
#: recomputation (min-of-N timings); only judged at document sizes
#: where a batch outruns sub-ms timer jitter
MODIFY_HEAVY_TARGET = 1.0
MODIFY_HEAVY_JUDGE_SCALE = 100


#: the modify-heavy execution arms: (label, cost model, registry options)
MODIFY_HEAVY_ARMS = (
    ("incremental", _NeverRecompute, {}),
    ("recompute", _AlwaysRecompute, {}),
    ("interpreter", _NeverRecompute,
     {"operator_state": False, "compiled": False}),
)


def measure_modify_heavy(scale_list, repeat: int) -> list[dict]:
    """Modify-dominated batches: incremental pairs vs full recomputation.

    One measured unit is a batch of ``MODIFY_HEAVY_BATCH`` city-text
    modifies — each feeds ``distinct-values``/``order by`` and the
    persons-by-city grouping, so every one is an *insufficient* modify
    that travels as a first-class retract/assert pair.  The incremental
    arm pins the cost model to never recompute; the oracle arm pins it
    to always recompute — the fallback the incremental path must beat.
    Cities rotate per round so every batch genuinely moves groups.  All
    extents are checked against the recomputation oracle after the
    timed rounds.

    A third arm (``interpreter``) replays the incremental stream on the
    per-tuple tree interpreter with no operator state — the
    pre-compilation execution engine.  The incremental and interpreter
    arms also record median per-batch *propagate* seconds (cumulative
    ``MaintenanceReport.propagate_seconds`` diffed per flush), which the
    compiled ≥5x gate compares.
    """
    city_path = [("child", "site"), ("child", "people"),
                 ("child", "person"), ("child", "address"),
                 ("child", "city")]
    series = []
    for n in scale_list:
        entry = {"persons": n, "batch": MODIFY_HEAVY_BATCH}
        for label, model, options in MODIFY_HEAVY_ARMS:
            storage = fresh_site(n)
            registry = ViewRegistry(storage, **options)
            registry.register("by-city", xmark.PERSONS_BY_CITY_QUERY,
                              cost_model=model())
            targets = storage.find_by_path(
                "site.xml", city_path)[:MODIFY_HEAVY_BATCH]

            def modify_batch(round_index: int):
                return [UpdateRequest.modify(
                    "site.xml", key,
                    xmark.CITIES[(round_index + i) % len(xmark.CITIES)])
                    for i, key in enumerate(targets)]

            report = registry.apply_updates(modify_batch(0))  # warm-up
            # The registry report's propagate clock is cumulative per
            # view: per-batch phase cost is the diff between flushes.
            propagated = report.views["by-city"].propagate_seconds
            best = float("inf")
            propagates = []
            for round_index in range(1, max(repeat * 2, 6)):
                batch = modify_batch(round_index)
                started = time.perf_counter()
                report = registry.apply_updates(batch)
                best = min(best, time.perf_counter() - started)
                cumulative = report.views["by-city"].propagate_seconds
                propagates.append(cumulative - propagated)
                propagated = cumulative
            entry[f"{label}_seconds"] = best
            if label != "recompute":
                entry[f"{label}_propagate_seconds"] = \
                    statistics.median(propagates)
            entry[f"{label}_consistent"] = (
                registry.to_xml("by-city")
                == registry.recompute_xml("by-city"))
            registry.close()
        # A zero recompute measurement would be a broken timer; inf
        # keeps the gate comparison and the table printable — and
        # failing.
        entry["ratio"] = (entry["incremental_seconds"]
                          / entry["recompute_seconds"]
                          if entry["recompute_seconds"] > 0
                          else float("inf"))
        entry["compiled_speedup"] = (
            entry["interpreter_propagate_seconds"]
            / entry["incremental_propagate_seconds"]
            if entry["incremental_propagate_seconds"] > 0 else None)
        series.append(entry)
    return series


def modify_heavy_gate(series: list[dict]) -> dict:
    """CI gate: every arm must match the oracle at every scale, the
    incremental path must cost no more per batch than recomputation at
    every judged document size, and the delta-plan VM must beat the tree
    interpreter by ``COMPILED_SPEEDUP_TARGET`` on per-batch propagate
    medians at the compiled judge scale.  Smoke sweeps below the judge
    scales have batches in the timer-jitter regime: consistency alone
    gates there (``worst_ratio``/``compiled_speedup`` are then null)."""
    consistency = all(entry["incremental_consistent"]
                      and entry["recompute_consistent"]
                      and entry["interpreter_consistent"]
                      for entry in series)
    judged = [entry["ratio"] for entry in series
              if entry["persons"] >= MODIFY_HEAVY_JUDGE_SCALE]
    worst_ratio = max(judged) if judged else None
    compiled_speedup, compiled_ok = _compiled_speedup_gate(series)
    ok = (consistency
          and (worst_ratio is None or worst_ratio <= MODIFY_HEAVY_TARGET)
          and compiled_ok)
    return {"worst_ratio": worst_ratio,
            "target": MODIFY_HEAVY_TARGET,
            "judge_scale": MODIFY_HEAVY_JUDGE_SCALE,
            "compiled_speedup": compiled_speedup,
            "compiled_target": COMPILED_SPEEDUP_TARGET,
            "compiled_judge_scale": COMPILED_JUDGE_SCALE,
            "consistency_ok": consistency,
            "ok": ok}


#: the scripted update history both sides re-create: checkpointed
#: batches, then batches that live only in the WAL tail at crash time
RESTORE_WARM_BATCHES = 2
RESTORE_TAIL_BATCHES = 2
RESTORE_BATCH = 4

RESTORE_VIEWS = [("join", xmark.JOIN_QUERY),
                 ("bycity", xmark.PERSONS_BY_CITY_QUERY)]


def _restore_history_batches(db: Database, offset: int, count: int):
    """Apply ``count`` deterministic person-insert batches."""
    for index in range(count):
        anchor = persons(db.storage)[-1]
        db.registry.apply_updates([
            UpdateRequest.insert(
                "site.xml", anchor,
                xmark.new_person_xml(7000 + offset * RESTORE_BATCH
                                     * 100 + index * RESTORE_BATCH + i),
                "after")
            for i in range(RESTORE_BATCH)])


def measure_cold_vs_restore(scale_list, repeat: int) -> list[dict]:
    """Session restart cost: cold rebuild vs durable-directory restore.

    The durable side is prepared once per scale — load, materialize,
    ``RESTORE_WARM_BATCHES`` batches, an explicit checkpoint,
    ``RESTORE_TAIL_BATCHES`` more batches, then a crash (no close, so
    the tail stays WAL-only).  Each timed restore opens a fresh copy of
    that directory (recovery truncates torn state in place, so copies
    keep the repeats identical); each timed cold start re-parses the
    document, re-materializes both views and re-applies the whole
    history.  Both sides must serve identical XML for every view.
    """
    series = []
    for n in scale_list:
        site_xml = xmark.generate_site(n, seed=1)

        def cold_once() -> Database:
            db = Database()
            db.load("site.xml", site_xml)
            for view_name, query in RESTORE_VIEWS:
                db.create_view(view_name, query)
            _restore_history_batches(db, 0, RESTORE_WARM_BATCHES)
            _restore_history_batches(db, 1, RESTORE_TAIL_BATCHES)
            return db

        with tempfile.TemporaryDirectory(prefix="bench-restore-") as tmp:
            base = f"{tmp}/base"
            db = Database(durable_path=base, fsync="off")
            db.load("site.xml", site_xml)
            for view_name, query in RESTORE_VIEWS:
                db.create_view(view_name, query)
            _restore_history_batches(db, 0, RESTORE_WARM_BATCHES)
            db.checkpoint()
            _restore_history_batches(db, 1, RESTORE_TAIL_BATCHES)
            reference = {name: db.read(name) for name in db.views()}
            del db                                  # crash: tail stays WAL

            restore_s = float("inf")
            restored_xml = None
            for index in range(repeat):
                copy = f"{tmp}/copy{index}"
                shutil.copytree(base, copy)
                started = time.perf_counter()
                rdb = Database(durable_path=copy, fsync="off")
                restore_s = min(restore_s,
                                time.perf_counter() - started)
                if restored_xml is None:
                    restored_xml = {name: rdb.read(name)
                                    for name in rdb.views()}
                    replayed = rdb.durability.last_recovery \
                                  .wal_records_replayed
                rdb.registry.close()                # no close-checkpoint

        cold_s = float("inf")
        cold_xml = None
        for _ in range(repeat):
            started = time.perf_counter()
            cdb = cold_once()
            cold_s = min(cold_s, time.perf_counter() - started)
            if cold_xml is None:
                cold_xml = {name: cdb.read(name) for name in cdb.views()}
            cdb.close()

        series.append({
            "persons": n,
            "cold_seconds": cold_s,
            "restore_seconds": restore_s,
            "wal_records_replayed": replayed,
            "speedup": cold_s / restore_s if restore_s > 0 else None,
            "consistency_ok": (restored_xml == reference
                               and cold_xml == reference)})
    return series


def cold_vs_restore_gate(series: list[dict]) -> dict:
    """CI gate: identical XML on both sides at every scale, and at the
    largest scale the restore strictly beats the cold rebuild."""
    consistency = all(entry["consistency_ok"] for entry in series)
    largest = series[-1]
    ok = consistency and (largest["restore_seconds"]
                          < largest["cold_seconds"])
    return {"persons": largest["persons"],
            "cold_seconds": largest["cold_seconds"],
            "restore_seconds": largest["restore_seconds"],
            "speedup": largest["speedup"],
            "consistency_ok": consistency,
            "ok": ok}


def measure_update_overhead(scale_list, repeat: int) -> list[dict]:
    """Index upkeep cost: an insert+delete batch returns storage to its
    initial state, so the same manager is timed repeatedly."""
    series = []
    fragments_xml = [xmark.new_person_xml(i) for i in range(UPDATE_BATCH)]
    for n in scale_list:
        timings = {}
        for indexed in (True, False):
            storage = fresh_site(n, indexed=indexed)
            people = storage.find_by_path(
                "site.xml", [("child", "site"), ("child", "people")])[0]

            def work():
                inserted = [storage.insert_fragment(
                    people, parse_fragment(xml)[0])
                    for xml in fragments_xml]
                for key in inserted:
                    storage.delete_subtree(key)

            timings[indexed] = time_call(work, repeat=repeat)
        series.append(_series_entry(n, timings[True], timings[False],
                                    batch=UPDATE_BATCH))
    return series


def measure_api_overhead(scale_list, repeat: int) -> list[dict]:
    """Facade cost: the same logical insert+delete stream — one run of
    ``API_BATCH`` person inserts, then one run deleting them — driven
    through ``Database.batch`` (path-addressed, resolved at flush) and
    directly through ``ViewRegistry.apply_updates`` with pre-resolved
    keys, against a two-view (selection + join) registry.  Each work
    unit returns storage to its initial state, so the same session is
    timed repeatedly.

    Scales below 100 persons are skipped: there a work unit finishes in
    a few milliseconds and the ratio is dominated by timer jitter rather
    than by facade cost.  The scales actually measured are recorded in
    the series.  Views are pinned to the incremental path (a
    never-recompute cost model) so both sides do identical maintenance
    work and the measured delta is the facade alone."""
    fragments = [xmark.new_person_xml(9000 + i, age=70)
                 for i in range(API_BATCH)]
    views = [("seniors", xmark.SELECTION_QUERY),
             ("sales", xmark.JOIN_QUERY)]
    # Work units are a few milliseconds and host noise has heavy tails
    # (pairwise ratios can spike 2-4x); the median needs many more pairs
    # than the document-scaled scenarios need repeats.
    repeat = max(repeat * 5, 15)
    api_scales = [n for n in scale_list if n >= 100] or [max(scale_list)]
    series = []
    for n in api_scales:
        storage = fresh_site(n)
        registry = ViewRegistry(storage)
        for view_name, query in views:
            registry.register(view_name, query,
                              cost_model=_NeverRecompute())

        def direct_work():
            anchor = persons(storage)[-1]
            registry.apply_updates([
                UpdateRequest.insert("site.xml", anchor, fragment, "after")
                for fragment in fragments])
            registry.apply_updates([
                UpdateRequest.delete("site.xml", key)
                for key in persons(storage)[n:]])

        db = Database(storage=fresh_site(n))
        for view_name, query in views:
            db.create_view(view_name, query,
                           cost_model=_NeverRecompute())

        def api_work():
            with db.batch():
                for fragment in fragments:
                    db.update("site.xml") \
                        .at(f"/site/people/person[{n}]") \
                        .insert(fragment, position="after")
            with db.batch():
                for i in range(API_BATCH):
                    db.update("site.xml") \
                        .at(f"/site/people/person[{n + 1 + i}]").delete()

        direct_work()   # warm caches before timing, so neither side
        api_work()      # pays setup in its best
        # Time the two sides in adjacent pairs and take the *median of
        # pairwise ratios*: host-level slow phases hit both units of a
        # pair, so the ratio cancels drift that would dominate a
        # min-of-N comparison of independently timed sides.  The order
        # inside a pair alternates (periodic noise decorrelates) and the
        # cyclic GC is paused so collection pauses triggered by one
        # side's allocations don't land on the other's clock.
        ratios = []
        direct_times = []
        api_times = []
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for index in range(repeat):
                if index % 2:
                    api_t = time_call(api_work, repeat=1)
                    direct_t = time_call(direct_work, repeat=1)
                else:
                    direct_t = time_call(direct_work, repeat=1)
                    api_t = time_call(api_work, repeat=1)
                direct_times.append(direct_t)
                api_times.append(api_t)
                ratios.append(api_t / direct_t)
                gc.collect()
        finally:
            if gc_was_enabled:
                gc.enable()
        registry.close()
        db.close()
        series.append({"persons": n, "batch": API_BATCH,
                       "direct_seconds": statistics.median(direct_times),
                       "api_seconds": statistics.median(api_times),
                       "overhead": statistics.median(ratios) - 1.0,
                       "statements": 2 * API_BATCH,
                       "per_statement_seconds": max(
                           0.0,
                           (statistics.median(api_times)
                            - statistics.median(direct_times))
                           / (2 * API_BATCH))})
    return series


#: always-on instrumentation budget (informational; the gated claim is
#: ``api_overhead``, which already runs with the layer enabled)
OBS_OVERHEAD_TARGET = 0.02


def measure_observability(num_persons: int, repeat: int
                          ) -> tuple[dict, dict]:
    """The instrumentation tax in isolation: one facade workload, the
    metrics/tracing layer enabled (the shipping default — counters
    mirrored, histograms observed, no trace sink attached) vs
    force-disabled through ``repro.obs.set_enabled(False)``.

    Timed in adjacent enabled/disabled pairs with alternating order and
    the cyclic GC paused, exactly like the facade comparison, because
    the expected delta (a few percent at most) is smaller than host
    drift.  Returns the series entry and the ``Database.metrics()``
    snapshot collected at the end of the enabled run — the payload the
    ``--metrics-json`` flag persists for the CI metrics-smoke artifact.
    """
    n = num_persons
    fragments = [xmark.new_person_xml(9500 + i, age=70)
                 for i in range(API_BATCH)]
    db = Database(storage=fresh_site(n))
    for view_name, query in [("seniors", xmark.SELECTION_QUERY),
                             ("sales", xmark.JOIN_QUERY)]:
        db.create_view(view_name, query, cost_model=_NeverRecompute())

    def work():
        with db.batch():
            for fragment in fragments:
                db.update("site.xml") \
                    .at(f"/site/people/person[{n}]") \
                    .insert(fragment, position="after")
        with db.batch():
            for i in range(API_BATCH):
                db.update("site.xml") \
                    .at(f"/site/people/person[{n + 1 + i}]").delete()

    def timed(flag: bool) -> float:
        previous = set_enabled(flag)
        try:
            return time_call(work, repeat=1)
        finally:
            set_enabled(previous)

    work()   # warm caches outside the timed pairs
    pairs = max(repeat * 5, 15)
    enabled_times, disabled_times, ratios = [], [], []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for index in range(pairs):
            if index % 2:
                off = timed(False)
                on = timed(True)
            else:
                on = timed(True)
                off = timed(False)
            enabled_times.append(on)
            disabled_times.append(off)
            ratios.append(on / off)
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    snapshot = db.metrics()
    db.close()
    entry = {"persons": n, "batch": API_BATCH,
             "enabled_seconds": statistics.median(enabled_times),
             "disabled_seconds": statistics.median(disabled_times),
             "overhead": statistics.median(ratios) - 1.0}
    return entry, snapshot


#: fan-out levels of the serving-layer benchmark (1 -> 100 -> 1000
#: subscribers; clamped to what the process fd limit can actually hold)
FANOUT_LEVELS = [1, 100, 1000]
FANOUT_UPDATES = 20

FANOUT_DOC = "<data><row><name>seed</name></row></data>"
FANOUT_QUERY = '<r>{for $x in doc("data.xml")/data/row return $x}</r>'


def _fanout_capacity(requested: int) -> int:
    """Raise the fd soft limit as far as allowed and clamp the
    subscriber count: each subscriber costs two descriptors (both
    socket ends live in this process)."""
    try:
        import resource
    except ImportError:                        # non-POSIX: stay modest
        return min(requested, 64)
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < hard:
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE, (hard, hard))
            soft = hard
        except (ValueError, OSError):
            pass
    return max(1, min(requested, (soft - 128) // 2))


def measure_server_fanout(levels, updates: int = FANOUT_UPDATES
                          ) -> list[dict]:
    """The serving layer under push fan-out: one writer, S subscribers.

    Per level: a served database with the identity rows view (pinned
    incremental so every refresh pushes a real delta), ``S`` raw-socket
    subscribers drained by a single ``selectors`` thread, and a control
    client issuing ``updates`` single-insert batches.  Reported:
    acknowledged updates/sec over the whole window (issue first update
    -> every subscriber holds every delta), the total pushed-frame
    rate, and how far delivery trailed the last update ack.  A level
    only counts as delivered when every subscriber saw every sequence
    number in order with no gaps — the benchmark doubles as a fan-out
    correctness check.
    """
    series = []
    for requested in levels:
        count = _fanout_capacity(requested)
        db = Database()
        db.load("data.xml", FANOUT_DOC)
        db.create_view("rows", FANOUT_QUERY,
                       cost_model=_NeverRecompute())
        handle = start_in_thread(db, own_db=True)
        selector = selectors.DefaultSelector()
        sockets = []
        try:
            for _ in range(count):
                sock = socket.create_connection((handle.host,
                                                 handle.port))
                sock.sendall(encode_frame(
                    {"id": 1, "op": "subscribe", "view": "rows",
                     "limit": 1_000_000}))
                decoder = FrameDecoder()
                subscribed = False
                while not subscribed:
                    for frame in decoder.feed(sock.recv(65536)):
                        subscribed = subscribed or frame.get("id") == 1
                sock.setblocking(False)
                selector.register(sock, selectors.EVENT_READ,
                                  {"decoder": decoder, "last": 0,
                                   "gap": False})
                sockets.append(sock)

            done = threading.Event()
            remaining = [count]

            def drain():
                while not done.is_set():
                    for key, _ in selector.select(timeout=0.2):
                        try:
                            data = key.fileobj.recv(1 << 20)
                        except (BlockingIOError, OSError):
                            continue
                        if not data:
                            continue
                        state = key.data
                        for frame in state["decoder"].feed(data):
                            if frame.get("type") != "delta":
                                continue
                            if frame["sequence"] != state["last"] + 1:
                                state["gap"] = True
                            state["last"] = frame["sequence"]
                            if state["last"] == updates:
                                remaining[0] -= 1
                                if remaining[0] == 0:
                                    done.set()

            drainer = threading.Thread(target=drain, daemon=True)
            with ReproClient(handle.host, handle.port) as control:
                started = time.perf_counter()
                drainer.start()
                for index in range(updates):
                    control.update([
                        'for $d in document("data.xml")/data update $d '
                        f'insert <row><name>u{index}</name></row> '
                        'into $d'])
                acked = time.perf_counter()
                done.wait(timeout=120)
                finished = time.perf_counter()
            drainer.join(timeout=5)
            elapsed = finished - started
            delivered_ok = done.is_set() and not any(
                key.data["gap"] for key in selector.get_map().values())
            series.append({
                "subscribers": count,
                "requested": requested,
                "updates": updates,
                "updates_per_second": (updates / elapsed
                                       if elapsed > 0 else None),
                "frames_per_second": (count * updates / elapsed
                                      if elapsed > 0 else None),
                "delivery_lag_seconds": finished - acked,
                "delivered_ok": delivered_ok})
        finally:
            for sock in sockets:
                sock.close()
            selector.close()
            handle.stop()
    return series


def server_fanout_gate(series: list[dict]) -> dict:
    """CI gate: complete, in-order, gap-free delivery to every
    subscriber at every fan-out level.  Throughput numbers are recorded
    but not thresholded — hosts vary too much; completeness does not."""
    delivered = all(entry["delivered_ok"] for entry in series)
    largest = series[-1]
    return {"levels": [entry["subscribers"] for entry in series],
            "max_subscribers": largest["subscribers"],
            "updates_per_second": largest["updates_per_second"],
            "frames_per_second": largest["frames_per_second"],
            "delivered_ok": delivered,
            "ok": delivered}


RECONNECT_ROUNDS = 5
RECONNECT_BATCH = 4
#: resume-latency gate: median drop -> caught-up time per round.  The
#: client's reconnect backoff starts at 20ms, so a healthy resume lands
#: in tens of milliseconds; the bound only exists to catch regressions
#: into retry storms or replay stalls, not to benchmark the host.
RECONNECT_RESUME_TARGET = 2.0


def measure_reconnect_resume(rounds: int = RECONNECT_ROUNDS,
                             batch: int = RECONNECT_BATCH) -> list[dict]:
    """Serving resilience: severed subscriber, backlog replay, retried
    mutation — timed over ``rounds`` forced disconnects.

    One resilient client (``reconnect=True``) holds a push subscription
    while a separate writer session mutates the view.  Each round: the
    writer streams ``batch`` live updates (drained), the client's TCP
    connection is severed (``drop_connection``), the writer issues
    ``batch`` more updates the subscriber *misses*, and the client
    itself retries one tokened mutation through the reconnect.  The
    measured unit is drop -> fully caught up (reconnect handshake,
    ``from_sequence`` backlog replay, and live delivery of the retried
    mutation's own push).  Delivery is checked exactly-once: every
    sequence number covered exactly once (replayed frames expand their
    explicit ``from_sequence`` range), and every acked mutation holds a
    distinct ``applied_index``.
    """
    db = Database()
    db.load("data.xml", FANOUT_DOC)
    db.create_view("rows", FANOUT_QUERY, cost_model=_NeverRecompute())
    handle = start_in_thread(db, own_db=True)
    covered: list[int] = []
    acked: list[int] = []
    latencies: list[float] = []

    def drain_until(subscription, upto: int) -> None:
        while not covered or max(covered) < upto:
            frame = subscription.get(timeout=30)
            start = frame.get("from_sequence", frame["sequence"])
            covered.extend(range(start, frame["sequence"] + 1))

    try:
        client = ReproClient(handle.host, handle.port, reconnect=True,
                             timeout=10.0, max_retries=20, backoff=0.02,
                             backoff_cap=0.25, retry_window=30.0,
                             client_id="bench-resume")
        subscription = client.subscribe("rows")
        sequence = 0
        with ReproClient(handle.host, handle.port) as writer:
            for round_index in range(rounds):
                for index in range(batch):
                    reply = writer.update([
                        'for $d in document("data.xml")/data update $d '
                        f'insert <row><name>live{round_index}.{index}'
                        '</name></row> into $d'])
                    acked.append(reply["applied_index"])
                    sequence += 1
                drain_until(subscription, sequence)
                started = time.perf_counter()
                client.drop_connection()
                for index in range(batch):
                    reply = writer.update([
                        'for $d in document("data.xml")/data update $d '
                        f'insert <row><name>miss{round_index}.{index}'
                        '</name></row> into $d'])
                    acked.append(reply["applied_index"])
                    sequence += 1
                # a tokened mutation retried through the reconnect
                reply = client.update([
                    'for $d in document("data.xml")/data update $d '
                    f'insert <row><name>retry{round_index}</name></row> '
                    'into $d'])
                acked.append(reply["applied_index"])
                sequence += 1
                drain_until(subscription, sequence)
                latencies.append(time.perf_counter() - started)
        reconnects = client.reconnects
        client.close()
    finally:
        handle.stop()
    duplicates = len(covered) - len(set(covered))
    return [{"rounds": rounds, "batch": batch,
             "resume_median_seconds": statistics.median(latencies),
             "resume_max_seconds": max(latencies),
             "reconnects": reconnects,
             "duplicates": duplicates,
             "coverage_ok": sorted(set(covered))
             == list(range(1, sequence + 1)),
             "acked_unique_ok": len(set(acked)) == len(acked)}]


def reconnect_resume_gate(series: list[dict]) -> dict:
    """CI gate: exactly-once delivery across every forced disconnect
    (zero duplicates, full explicit coverage, distinct mutation
    tickets) and a resume latency clear of retry-storm territory."""
    entry = series[0]
    delivery = (entry["duplicates"] == 0 and entry["coverage_ok"]
                and entry["acked_unique_ok"])
    ok = delivery and (entry["resume_median_seconds"]
                       < RECONNECT_RESUME_TARGET)
    return {"rounds": entry["rounds"],
            "resume_median_seconds": entry["resume_median_seconds"],
            "resume_max_seconds": entry["resume_max_seconds"],
            "target_seconds": RECONNECT_RESUME_TARGET,
            "reconnects": entry["reconnects"],
            "duplicates": entry["duplicates"],
            "delivery_ok": delivery,
            "ok": ok}


def run_suite(scale_list, repeat: int = 3,
              fanout_levels=None) -> dict:
    # The facade and instrumentation comparisons run first: their paired
    # ratios are the most noise-sensitive measurements in the suite, and
    # the document sweeps below leave a large heap behind that skews
    # small-unit timings.
    api_series = measure_api_overhead(scale_list, repeat)
    obs_scale = max([n for n in scale_list if n >= 100]
                    or [max(scale_list)])
    obs_entry, metrics_snapshot = measure_observability(obs_scale, repeat)
    join_series = measure_join_maintenance(scale_list, repeat)
    modify_series = measure_modify_heavy(scale_list, repeat)
    restore_series = measure_cold_vs_restore(scale_list, repeat)
    nav_desc, ok_desc = measure_navigation(
        NAV_DESCENDANT_PATHS, NAV_DESCENDANT_TAGS, scale_list, repeat)
    nav_child, ok_child = measure_navigation(
        NAV_CHILD_PATHS, [], scale_list, repeat)
    selectivity, ok_sel = measure_selectivity(scale_list[-1], repeat)
    fanout_series = measure_server_fanout(fanout_levels or FANOUT_LEVELS)
    reconnect_series = measure_reconnect_resume()
    scenarios = [
        {"name": "navigation_descendant",
         "style": "fig 9.2 regime: descendant-heavy navigation vs doc size",
         "series": nav_desc},
        {"name": "navigation_child_paths",
         "style": "fig 3 regime: child-step location paths vs doc size",
         "series": nav_child},
        {"name": "selectivity",
         "style": "fig 9.3 regime: descendant scans by tag selectivity",
         "series": selectivity},
        {"name": "view_maintenance_insert",
         "style": "fig 9.2 maintenance: insert batch, per view query",
         "series": measure_maintenance(scale_list, repeat)},
        {"name": "join_maintenance",
         "style": "operator state: join-view batch maintenance, "
                  "persistent vs cold",
         "series": join_series},
        {"name": "modify_heavy",
         "style": "incremental first-class modify pairs vs full "
                  "recomputation, modify-dominated batches",
         "series": modify_series},
        {"name": "cold_start_vs_restore",
         "style": "durability payoff: cold session rebuild vs "
                  "checkpoint restore + WAL-tail replay",
         "series": restore_series},
        {"name": "update_overhead",
         "style": "index upkeep: raw insert+delete batch",
         "series": measure_update_overhead(scale_list, repeat)},
        {"name": "api_overhead",
         "style": "session facade: Database.batch vs direct "
                  "ViewRegistry.apply_updates",
         "series": api_series},
        {"name": "observability_overhead",
         "style": "instrumentation tax: repro.obs enabled vs "
                  "set_enabled(False), same facade workload",
         "series": [obs_entry]},
        {"name": "server_fanout",
         "style": "serving layer: one writer, N push subscribers over "
                  "real sockets",
         "series": fanout_series},
        {"name": "reconnect_resume",
         "style": "serving resilience: forced disconnects, backlog "
                  "replay, idempotent retried mutations",
         "series": reconnect_series},
    ]
    headline = nav_desc[-1]
    max_overhead = max(entry["overhead"] for entry in api_series)
    max_per_statement = max(entry["per_statement_seconds"]
                            for entry in api_series)
    join_gate = join_maintenance_gate(join_series)
    modify_gate = modify_heavy_gate(modify_series)
    restore_gate = cold_vs_restore_gate(restore_series)
    fanout_gate = server_fanout_gate(fanout_series)
    reconnect_gate = reconnect_resume_gate(reconnect_series)
    return {
        "suite": "perf_suite",
        "description": "indexed StructuralIndex fast paths vs walk-based "
                       "unindexed fallbacks across XMark scaling factors, "
                       "plus the Database facade overhead, the persistent "
                       "operator-state maintenance gate and the compiled "
                       "delta-plan VM vs tree-interpreter gate",
        "scales": list(scale_list),
        "repeat": repeat,
        "consistency_ok": (ok_desc and ok_child and ok_sel
                           and join_gate["consistency_ok"]
                           and modify_gate["consistency_ok"]
                           and restore_gate["consistency_ok"]
                           and fanout_gate["delivered_ok"]
                           and reconnect_gate["delivery_ok"]),
        "scenarios": scenarios,
        "headline": {"scenario": "navigation_descendant",
                     "persons": headline["persons"],
                     "speedup": headline["speedup"]},
        "api_overhead": {"target": API_OVERHEAD_TARGET,
                         "max_overhead": max_overhead,
                         "statement_target":
                             API_STATEMENT_OVERHEAD_TARGET,
                         "max_per_statement_seconds":
                             max_per_statement,
                         "ok": (max_overhead < API_OVERHEAD_TARGET
                                or max_per_statement
                                < API_STATEMENT_OVERHEAD_TARGET)},
        "join_maintenance": join_gate,
        "modify_heavy": modify_gate,
        "cold_start_vs_restore": restore_gate,
        "server_fanout": fanout_gate,
        "reconnect_resume": reconnect_gate,
        "observability": {
            "instrumentation_enabled": True,
            "target": OBS_OVERHEAD_TARGET,
            "overhead": obs_entry["overhead"],
            "within_target": obs_entry["overhead"] < OBS_OVERHEAD_TARGET,
            "note": "api_overhead is measured and gated with the "
                    "repro.obs metrics/tracing layer in its shipping "
                    "(enabled) state; 'overhead' is the same workload "
                    "enabled vs repro.obs.set_enabled(False), "
                    "informational only",
        },
        "_metrics_snapshot": metrics_snapshot,
    }


def print_suite(result: dict) -> None:
    for scenario in result["scenarios"]:
        rows = []
        if scenario["name"] == "api_overhead":
            for entry in scenario["series"]:
                rows.append([entry["persons"], ms(entry["direct_seconds"]),
                             ms(entry["api_seconds"]),
                             f"{entry['overhead'] * 100:6.2f}%"])
            print_table(
                f"Perf suite: {scenario['name']} — {scenario['style']}",
                ["scale", "direct (ms)", "database (ms)", "overhead"], rows)
            continue
        if scenario["name"] == "join_maintenance":
            for entry in scenario["series"]:
                rows.append([entry["persons"],
                             ms(entry["persistent_seconds"]),
                             ms(entry["cold_seconds"]),
                             ms(entry["interpreter_seconds"]),
                             f"{entry['speedup']:6.1f}x",
                             f"{entry['compiled_speedup']:6.1f}x",
                             "ok" if entry["consistency_ok"]
                             else "MISMATCH"])
            print_table(
                f"Perf suite: {scenario['name']} — {scenario['style']}",
                ["scale", "persistent (ms)", "cold (ms)", "interp (ms)",
                 "speedup", "compiled", "consistency"], rows)
            continue
        if scenario["name"] == "modify_heavy":
            for entry in scenario["series"]:
                rows.append([entry["persons"],
                             ms(entry["incremental_seconds"]),
                             ms(entry["recompute_seconds"]),
                             ms(entry["interpreter_seconds"]),
                             f"{entry['ratio']:6.2f}x",
                             f"{entry['compiled_speedup']:6.1f}x",
                             "ok" if (entry["incremental_consistent"]
                                      and entry["recompute_consistent"]
                                      and entry["interpreter_consistent"])
                             else "MISMATCH"])
            print_table(
                f"Perf suite: {scenario['name']} — {scenario['style']}",
                ["scale", "incremental (ms)", "recompute (ms)",
                 "interp (ms)", "ratio", "compiled", "consistency"], rows)
            continue
        if scenario["name"] == "cold_start_vs_restore":
            for entry in scenario["series"]:
                rows.append([entry["persons"], ms(entry["cold_seconds"]),
                             ms(entry["restore_seconds"]),
                             f"{entry['speedup']:6.1f}x",
                             entry["wal_records_replayed"],
                             "ok" if entry["consistency_ok"]
                             else "MISMATCH"])
            print_table(
                f"Perf suite: {scenario['name']} — {scenario['style']}",
                ["scale", "cold (ms)", "restore (ms)", "speedup",
                 "tail records", "consistency"], rows)
            continue
        if scenario["name"] == "observability_overhead":
            for entry in scenario["series"]:
                rows.append([entry["persons"],
                             ms(entry["enabled_seconds"]),
                             ms(entry["disabled_seconds"]),
                             f"{entry['overhead'] * 100:6.2f}%"])
            print_table(
                f"Perf suite: {scenario['name']} — {scenario['style']}",
                ["scale", "enabled (ms)", "disabled (ms)", "overhead"],
                rows)
            continue
        if scenario["name"] == "server_fanout":
            for entry in scenario["series"]:
                rows.append([entry["subscribers"],
                             f"{entry['updates_per_second']:8.1f}",
                             f"{entry['frames_per_second']:10.0f}",
                             ms(entry["delivery_lag_seconds"]),
                             "ok" if entry["delivered_ok"]
                             else "INCOMPLETE"])
            print_table(
                f"Perf suite: {scenario['name']} — {scenario['style']}",
                ["subscribers", "updates/s", "frames/s", "lag (ms)",
                 "delivery"], rows)
            continue
        if scenario["name"] == "reconnect_resume":
            for entry in scenario["series"]:
                rows.append([entry["rounds"],
                             ms(entry["resume_median_seconds"]),
                             ms(entry["resume_max_seconds"]),
                             entry["reconnects"],
                             "ok" if (entry["duplicates"] == 0
                                      and entry["coverage_ok"]
                                      and entry["acked_unique_ok"])
                             else "BROKEN"])
            print_table(
                f"Perf suite: {scenario['name']} — {scenario['style']}",
                ["drops", "resume med (ms)", "resume max (ms)",
                 "reconnects", "exactly-once"], rows)
            continue
        for entry in scenario["series"]:
            label = entry.get("tag") or (
                f"{entry['persons']} {entry['query']}"
                if "query" in entry else entry["persons"])
            rows.append([label, ms(entry["indexed_seconds"]),
                         ms(entry["unindexed_seconds"]),
                         f"{entry['speedup']:6.1f}x"])
        print_table(f"Perf suite: {scenario['name']} — {scenario['style']}",
                    ["scale", "indexed (ms)", "unindexed (ms)", "speedup"],
                    rows)
    print(f"\nconsistency_ok: {result['consistency_ok']}")
    head = result["headline"]
    print(f"headline: {head['scenario']} at {head['persons']} persons — "
          f"{head['speedup']:.1f}x")
    api = result["api_overhead"]
    print(f"api_overhead: max {api['max_overhead'] * 100:.2f}% "
          f"(ratio target < {api['target'] * 100:.0f}%), "
          f"max {api['max_per_statement_seconds'] * 1e6:.0f} us/statement "
          f"(target < {api['statement_target'] * 1e6:.0f} us) — "
          f"{'ok' if api['ok'] else 'OVER TARGET'}")
    join = result["join_maintenance"]
    target_txt = ("consistency only" if join["target"] is None
                  else f"target < {join['target']:.1f}x")
    join_compiled_txt = (
        "compiled speedup judged above "
        f"{join['compiled_judge_scale']} persons only"
        if join["compiled_speedup"] is None
        else f"compiled {join['compiled_speedup']:.1f}x the interpreter "
             f"(target >= {join['compiled_target']:.0f}x)")
    print(f"join_maintenance: persistent per-batch time varies "
          f"{join['flat_ratio']:.2f}x over a {join['scale_ratio']:.0f}x "
          f"document sweep ({target_txt}), {join_compiled_txt} — "
          f"{'ok' if join['ok'] else 'SUPERLINEAR, SLOW OR INCONSISTENT'}")
    modify = result["modify_heavy"]
    ratio_txt = ("consistency only (sweep below judge scale)"
                 if modify["worst_ratio"] is None
                 else f"at worst {modify['worst_ratio']:.2f}x of full "
                      f"recomputation (target <= {modify['target']:.1f}x)")
    modify_compiled_txt = (
        "compiled speedup judged above "
        f"{modify['compiled_judge_scale']} persons only"
        if modify["compiled_speedup"] is None
        else f"compiled {modify['compiled_speedup']:.1f}x the interpreter "
             f"(target >= {modify['compiled_target']:.0f}x)")
    print(f"modify_heavy: incremental per-batch cost {ratio_txt}, "
          f"{modify_compiled_txt}, "
          f"consistency {'ok' if modify['consistency_ok'] else 'BROKEN'}"
          f" — {'ok' if modify['ok'] else 'OVER TARGET OR INCONSISTENT'}")
    restore = result["cold_start_vs_restore"]
    print(f"cold_start_vs_restore: at {restore['persons']} persons the "
          f"restore takes {ms(restore['restore_seconds'])} ms vs "
          f"{ms(restore['cold_seconds'])} ms cold "
          f"({restore['speedup']:.1f}x) — "
          f"{'ok' if restore['ok'] else 'RESTORE SLOWER OR INCONSISTENT'}")
    obs = result["observability"]
    print(f"observability: instrumentation enabled throughout; enabled "
          f"vs disabled overhead {obs['overhead'] * 100:.2f}% "
          f"(informational target < {obs['target'] * 100:.0f}%)")
    fanout = result["server_fanout"]
    print(f"server_fanout: at {fanout['max_subscribers']} subscribers "
          f"{fanout['updates_per_second']:.1f} updates/s, "
          f"{fanout['frames_per_second']:.0f} pushed frames/s — "
          f"{'ok' if fanout['ok'] else 'DELIVERY INCOMPLETE'}")
    resume = result["reconnect_resume"]
    print(f"reconnect_resume: {resume['rounds']} forced disconnects, "
          f"median resume {ms(resume['resume_median_seconds'])} ms "
          f"(target < {ms(resume['target_seconds'])} ms), "
          f"{resume['duplicates']} duplicate deliveries — "
          f"{'ok' if resume['ok'] else 'DUPLICATES OR SLOW RESUME'}")


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", default=None,
                        help="comma-separated person counts "
                             "(default: REPRO_BENCH_SCALE or 50,100,200,400)")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--json", default="BENCH_perf_suite.json",
                        metavar="PATH")
    parser.add_argument("--metrics-json", default=None, metavar="PATH",
                        help="also dump the Database.metrics() snapshot "
                             "from the observability run (CI artifact)")
    parser.add_argument("--fanout", default=None,
                        help="comma-separated subscriber counts for the "
                             "server_fanout scenario (default 1,100,1000)")
    args = parser.parse_args(argv)
    scale_list = ([int(part) for part in args.scales.split(",") if part]
                  if args.scales else scales())
    fanout_levels = ([int(part) for part in args.fanout.split(",") if part]
                     if args.fanout else None)
    result = run_suite(scale_list, repeat=args.repeat,
                       fanout_levels=fanout_levels)
    metrics_snapshot = result.pop("_metrics_snapshot")
    print_suite(result)
    with open(args.json, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(f"[results saved to {args.json}]")
    if args.metrics_json:
        with open(args.metrics_json, "w") as handle:
            json.dump(metrics_snapshot, handle, indent=2)
            handle.write("\n")
        print(f"[metrics snapshot saved to {args.metrics_json}]")
    return result


# -- tier-1 shape tests ---------------------------------------------------------------

def test_indexed_navigation_matches_unindexed():
    storage = fresh_site(40)
    assert run_paths(storage, NAV_DESCENDANT_PATHS, True) \
        == run_paths(storage, NAV_DESCENDANT_PATHS, False)
    assert run_paths(storage, NAV_CHILD_PATHS, True) \
        == run_paths(storage, NAV_CHILD_PATHS, False)
    assert run_descendant_scans(storage, NAV_DESCENDANT_TAGS, True) \
        == run_descendant_scans(storage, NAV_DESCENDANT_TAGS, False)


def test_indexed_descendant_navigation_faster():
    series, consistent = measure_navigation(
        NAV_DESCENDANT_PATHS, NAV_DESCENDANT_TAGS, [200], repeat=3)
    assert consistent
    # The sweep shows ~10x; any margin below 1x would mean the index lost.
    assert series[0]["indexed_seconds"] < series[0]["unindexed_seconds"], \
        series


def test_suite_emits_valid_json(tmp_path):
    path = tmp_path / "perf_suite.json"
    metrics_path = tmp_path / "metrics.json"
    main(["--scales", "10,20", "--repeat", "1", "--fanout", "1,4",
          "--json", str(path), "--metrics-json", str(metrics_path)])
    loaded = json.loads(path.read_text())
    assert loaded["suite"] == "perf_suite"
    assert loaded["consistency_ok"] is True
    assert {s["name"] for s in loaded["scenarios"]} >= {
        "navigation_descendant", "selectivity", "view_maintenance_insert",
        "join_maintenance", "modify_heavy", "cold_start_vs_restore",
        "api_overhead", "observability_overhead", "server_fanout",
        "reconnect_resume"}
    for scenario in loaded["scenarios"]:
        assert scenario["series"], scenario["name"]
    assert "max_overhead" in loaded["api_overhead"]
    assert loaded["join_maintenance"]["consistency_ok"] is True
    assert loaded["modify_heavy"]["consistency_ok"] is True
    # below the compiled judge scale the 5x gate abstains (null) but the
    # keys documenting it are always present
    for gate_name in ("join_maintenance", "modify_heavy"):
        assert loaded[gate_name]["compiled_target"] \
            == COMPILED_SPEEDUP_TARGET
        assert loaded[gate_name]["compiled_judge_scale"] \
            == COMPILED_JUDGE_SCALE
    assert loaded["observability"]["instrumentation_enabled"] is True
    assert loaded["server_fanout"]["ok"] is True
    assert loaded["server_fanout"]["max_subscribers"] >= 1
    assert loaded["reconnect_resume"]["ok"] is True
    assert loaded["reconnect_resume"]["duplicates"] == 0
    assert "_metrics_snapshot" not in loaded
    # the CI artifact: a live engine metrics snapshot from the suite run
    metrics = json.loads(metrics_path.read_text())
    assert metrics["db_statements"]["values"][""] > 0
    assert "view=seniors" in metrics["view_flushes"]["values"]


def test_modify_heavy_incremental_consistent():
    series = measure_modify_heavy([30], repeat=1)
    entry = series[0]
    assert entry["incremental_consistent"] is True
    assert entry["recompute_consistent"] is True
    assert entry["interpreter_consistent"] is True
    assert entry["incremental_seconds"] > 0
    assert entry["incremental_propagate_seconds"] > 0
    assert entry["interpreter_propagate_seconds"] > 0
    gate = modify_heavy_gate(series)
    assert gate["consistency_ok"] is True
    # 30 persons sits below the judge scales: consistency alone carries
    # the gate and no jittery sub-ms ratio or speedup is judged.
    assert gate["worst_ratio"] is None
    assert gate["compiled_speedup"] is None
    assert gate["ok"] is True, gate


def test_observability_overhead_measures_and_snapshots():
    entry, snapshot = measure_observability(20, repeat=1)
    assert entry["enabled_seconds"] > 0
    assert entry["disabled_seconds"] > 0
    json.dumps(snapshot)
    assert snapshot["db_statements"]["values"][""] > 0
    assert "view=sales" in snapshot["view_flushes"]["values"]


def test_join_maintenance_consistent_and_sane():
    series = measure_join_maintenance([30], repeat=1)
    assert series[0]["consistency_ok"] is True
    assert series[0]["persistent_seconds"] > 0
    assert series[0]["persistent_propagate_seconds"] > 0
    assert series[0]["interpreter_propagate_seconds"] > 0
    gate = join_maintenance_gate(series)
    assert gate["consistency_ok"] is True
    # A single-scale sweep has no growth to judge: consistency alone
    # must carry the gate (no spurious 1.0 < 1.0 failure).
    assert gate["ok"] is True
    assert gate["target"] is None
    assert gate["compiled_speedup"] is None


def test_cold_vs_restore_consistent_and_replays_tail():
    series = measure_cold_vs_restore([20], repeat=1)
    entry = series[0]
    assert entry["consistency_ok"] is True
    assert entry["wal_records_replayed"] == RESTORE_TAIL_BATCHES
    assert entry["restore_seconds"] > 0
    gate = cold_vs_restore_gate(series)
    assert gate["consistency_ok"] is True
    # No speed assertion at smoke scale: 20 persons is jitter territory;
    # the restore-beats-cold claim is gated on the full sweep's largest
    # scale by the suite run itself.


def test_server_fanout_delivers_gap_free():
    series = measure_server_fanout([1, 3], updates=5)
    assert [entry["subscribers"] for entry in series] == [1, 3]
    for entry in series:
        assert entry["delivered_ok"] is True, entry
        assert entry["updates"] == 5
        assert entry["updates_per_second"] > 0
        assert entry["frames_per_second"] > 0
    gate = server_fanout_gate(series)
    assert gate["ok"] is True
    assert gate["max_subscribers"] == 3


def test_reconnect_resume_exactly_once():
    series = measure_reconnect_resume(rounds=2, batch=2)
    entry = series[0]
    assert entry["duplicates"] == 0, entry
    assert entry["coverage_ok"] is True, entry
    assert entry["acked_unique_ok"] is True, entry
    assert entry["reconnects"] >= 2
    gate = reconnect_resume_gate(series)
    assert gate["delivery_ok"] is True
    assert gate["ok"] is True, gate


def test_api_batch_matches_direct_stream():
    """The facade and the direct stream it is benchmarked against must
    leave the view in identical states (else the overhead compares
    different work)."""
    n = 20
    fragments = [xmark.new_person_xml(9000 + i, age=70) for i in range(3)]

    storage = fresh_site(n)
    registry = ViewRegistry(storage)
    registry.register("seniors", xmark.SELECTION_QUERY)
    anchor = persons(storage)[-1]
    registry.apply_updates([
        UpdateRequest.insert("site.xml", anchor, fragment, "after")
        for fragment in fragments])

    db = Database(storage=fresh_site(n))
    db.create_view("seniors", xmark.SELECTION_QUERY)
    with db.batch():
        for fragment in fragments:
            db.update("site.xml").at(f"/site/people/person[{n}]") \
                .insert(fragment, position="after")
    assert db.read("seniors") == registry.query("seniors")


if __name__ == "__main__":
    main()
