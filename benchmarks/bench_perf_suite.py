"""Perf suite: indexed vs unindexed storage across XMark scaling factors.

Runs the fig-3/fig-9 style scenarios twice — through the incremental
:class:`repro.storage.StructuralIndex` fast paths and through the
walk-based unindexed fallbacks — and emits one machine-readable
``BENCH_perf_suite.json``:

* **navigation_descendant** (fig 9.2 regime, descendant-heavy): ``//``
  location paths and whole-document descendant scans, where the index
  turns an O(document) tree walk into a binary search plus a slice;
* **navigation_child_paths** (fig 3 regime): child-step-only paths;
* **selectivity** (fig 9.3 regime): descendant scans over tags of
  decreasing match frequency at the largest document size;
* **view_maintenance_insert** (fig 9.2 maintenance): end-to-end
  incremental maintenance of the join view under an insert batch;
* **update_overhead**: the honest cost of index upkeep — raw
  insert+delete batches against indexed vs unindexed storage;
* **api_overhead**: the cost of the :class:`repro.api.Database` facade —
  the same logical insert+delete stream driven through ``Database.batch``
  (path-addressed statements, resolved at flush) vs directly through
  ``ViewRegistry.apply_updates`` with pre-resolved FlexKeys.  The facade
  targets <5% overhead (``api_overhead.ok`` in the JSON).

Every navigation scenario also diffs the two paths' results; the suite
refuses to report a speedup for answers that disagree
(``consistency_ok``).

Run ``python benchmarks/bench_perf_suite.py`` (with ``PYTHONPATH=src``)
from the repo root; ``--scales 20,40`` shrinks the sweep for CI smoke
runs and ``--json PATH`` redirects the output file.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics

from bench_common import (fresh_site, materialized_view, ms, persons,
                          print_table, scales, time_call, xmark)

from repro import CostModel, UpdateRequest, ViewRegistry
from repro.api import Database
from repro.xmlmodel import parse_fragment

#: Descendant-heavy location paths (the fig 9.2-style navigation load).
NAV_DESCENDANT_PATHS = [
    ("//city", [("descendant", "city")]),
    ("//interest", [("descendant", "interest")]),
    ("//date", [("descendant", "date")]),
    ("//person//age", [("descendant", "person"), ("descendant", "age")]),
]

#: Whole-document descendant scans bundled into the same workload.
NAV_DESCENDANT_TAGS = ["person", "city", "interest", "education", "date"]

#: Child-step-only paths (the fig 3-style query navigation load).
NAV_CHILD_PATHS = [
    ("/site/people/person/profile/age",
     [("child", "site"), ("child", "people"), ("child", "person"),
      ("child", "profile"), ("child", "age")]),
    ("/site/people/person/address/city",
     [("child", "site"), ("child", "people"), ("child", "person"),
      ("child", "address"), ("child", "city")]),
    ("/site/closed_auctions/closed_auction/date",
     [("child", "site"), ("child", "closed_auctions"),
      ("child", "closed_auction"), ("child", "date")]),
]

#: Tags of decreasing match frequency for the fig 9.3-style sweep.
SELECTIVITY_TAGS = ["interest", "person", "city", "initial", "people"]

UPDATE_BATCH = 8
MAINTENANCE_BATCH = 4
API_BATCH = 10
API_OVERHEAD_TARGET = 0.05

#: A descendant-heavy view: its V-P-A maintenance navigates ``//`` paths
#: from the document root, the regime where range scans replace walks.
DESC_VIEW_QUERY = """<result>{
for $c in doc("site.xml")//city
return <c>{$c}</c>
}</result>"""

MAINTENANCE_QUERIES = [("join", xmark.JOIN_QUERY),
                       ("descendant-city", DESC_VIEW_QUERY)]


# -- workloads (indexed / unindexed run the same calls) ----------------------------

def run_paths(storage, paths, indexed: bool):
    find = (storage.find_by_path if indexed
            else storage.find_by_path_unindexed)
    results = []
    for _label, steps in paths:
        results.append(find("site.xml", steps))
    return results


def run_descendant_scans(storage, tags, indexed: bool):
    root = storage.root_key("site.xml")
    scan = storage.descendants if indexed else storage.descendants_unindexed
    return [scan(root, tag) for tag in tags]


def _series_entry(num_persons: int, indexed_s: float, unindexed_s: float,
                  **extra) -> dict:
    entry = {"persons": num_persons,
             "indexed_seconds": indexed_s,
             "unindexed_seconds": unindexed_s,
             "speedup": unindexed_s / indexed_s if indexed_s > 0 else None}
    entry.update(extra)
    return entry


def measure_navigation(scenario_paths, desc_tags, scale_list, repeat: int
                       ) -> tuple[list[dict], bool]:
    series = []
    consistent = True
    for n in scale_list:
        storage = fresh_site(n)
        fast = run_paths(storage, scenario_paths, True)
        slow = run_paths(storage, scenario_paths, False)
        fast += run_descendant_scans(storage, desc_tags, True)
        slow += run_descendant_scans(storage, desc_tags, False)
        consistent = consistent and fast == slow
        indexed_s = time_call(
            lambda: (run_paths(storage, scenario_paths, True),
                     run_descendant_scans(storage, desc_tags, True)),
            repeat=repeat)
        unindexed_s = time_call(
            lambda: (run_paths(storage, scenario_paths, False),
                     run_descendant_scans(storage, desc_tags, False)),
            repeat=repeat)
        series.append(_series_entry(
            n, indexed_s, unindexed_s,
            matches=sum(len(r) for r in fast)))
    return series, consistent


def measure_selectivity(num_persons: int, repeat: int
                        ) -> tuple[list[dict], bool]:
    storage = fresh_site(num_persons)
    root = storage.root_key("site.xml")
    total_elements = len(storage.descendants(root)) + 1
    series = []
    consistent = True
    for tag in SELECTIVITY_TAGS:
        fast = storage.descendants(root, tag)
        slow = storage.descendants_unindexed(root, tag)
        consistent = consistent and fast == slow
        indexed_s = time_call(lambda: storage.descendants(root, tag),
                              repeat=repeat)
        unindexed_s = time_call(
            lambda: storage.descendants_unindexed(root, tag), repeat=repeat)
        series.append(_series_entry(
            num_persons, indexed_s, unindexed_s, tag=tag, matches=len(fast),
            selectivity=len(fast) / total_elements))
    return series, consistent


def measure_maintenance(scale_list, repeat: int) -> list[dict]:
    def maintain_once(query: str, n: int, indexed: bool) -> float:
        storage, view = materialized_view(query, n, indexed=indexed)
        anchors = persons(storage)
        updates = [UpdateRequest.insert(
            "site.xml", anchors[-1], xmark.new_person_xml(i), "after")
            for i in range(MAINTENANCE_BATCH)]
        return view.apply_updates(updates).total_seconds

    series = []
    for n in scale_list:
        for query_name, query in MAINTENANCE_QUERIES:
            timings = {indexed: min(maintain_once(query, n, indexed)
                                    for _ in range(repeat))
                       for indexed in (True, False)}
            series.append(_series_entry(n, timings[True], timings[False],
                                        query=query_name,
                                        batch=MAINTENANCE_BATCH))
    return series


def measure_update_overhead(scale_list, repeat: int) -> list[dict]:
    """Index upkeep cost: an insert+delete batch returns storage to its
    initial state, so the same manager is timed repeatedly."""
    series = []
    fragments_xml = [xmark.new_person_xml(i) for i in range(UPDATE_BATCH)]
    for n in scale_list:
        timings = {}
        for indexed in (True, False):
            storage = fresh_site(n, indexed=indexed)
            people = storage.find_by_path(
                "site.xml", [("child", "site"), ("child", "people")])[0]

            def work():
                inserted = [storage.insert_fragment(
                    people, parse_fragment(xml)[0])
                    for xml in fragments_xml]
                for key in inserted:
                    storage.delete_subtree(key)

            timings[indexed] = time_call(work, repeat=repeat)
        series.append(_series_entry(n, timings[True], timings[False],
                                    batch=UPDATE_BATCH))
    return series


def measure_api_overhead(scale_list, repeat: int) -> list[dict]:
    """Facade cost: the same logical insert+delete stream — one run of
    ``API_BATCH`` person inserts, then one run deleting them — driven
    through ``Database.batch`` (path-addressed, resolved at flush) and
    directly through ``ViewRegistry.apply_updates`` with pre-resolved
    keys, against a two-view (selection + join) registry.  Each work
    unit returns storage to its initial state, so the same session is
    timed repeatedly.

    Scales below 100 persons are skipped: there a work unit finishes in
    a few milliseconds and the ratio is dominated by timer jitter rather
    than by facade cost.  The scales actually measured are recorded in
    the series.  Views are pinned to the incremental path (a
    never-recompute cost model) so both sides do identical maintenance
    work and the measured delta is the facade alone."""

    class _NeverRecompute(CostModel):
        def should_recompute(self, trees: int) -> bool:
            return False

    fragments = [xmark.new_person_xml(9000 + i, age=70)
                 for i in range(API_BATCH)]
    views = [("seniors", xmark.SELECTION_QUERY),
             ("sales", xmark.JOIN_QUERY)]
    # Work units are a few milliseconds and host noise has heavy tails
    # (pairwise ratios can spike 2-4x); the median needs many more pairs
    # than the document-scaled scenarios need repeats.
    repeat = max(repeat * 5, 15)
    api_scales = [n for n in scale_list if n >= 100] or [max(scale_list)]
    series = []
    for n in api_scales:
        storage = fresh_site(n)
        registry = ViewRegistry(storage)
        for view_name, query in views:
            registry.register(view_name, query,
                              cost_model=_NeverRecompute())

        def direct_work():
            anchor = persons(storage)[-1]
            registry.apply_updates([
                UpdateRequest.insert("site.xml", anchor, fragment, "after")
                for fragment in fragments])
            registry.apply_updates([
                UpdateRequest.delete("site.xml", key)
                for key in persons(storage)[n:]])

        db = Database(storage=fresh_site(n))
        for view_name, query in views:
            db.create_view(view_name, query,
                           cost_model=_NeverRecompute())

        def api_work():
            with db.batch():
                for fragment in fragments:
                    db.update("site.xml") \
                        .at(f"/site/people/person[{n}]") \
                        .insert(fragment, position="after")
            with db.batch():
                for i in range(API_BATCH):
                    db.update("site.xml") \
                        .at(f"/site/people/person[{n + 1 + i}]").delete()

        direct_work()   # warm caches before timing, so neither side
        api_work()      # pays setup in its best
        # Time the two sides in adjacent pairs and take the *median of
        # pairwise ratios*: host-level slow phases hit both units of a
        # pair, so the ratio cancels drift that would dominate a
        # min-of-N comparison of independently timed sides.  The order
        # inside a pair alternates (periodic noise decorrelates) and the
        # cyclic GC is paused so collection pauses triggered by one
        # side's allocations don't land on the other's clock.
        ratios = []
        direct_times = []
        api_times = []
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for index in range(repeat):
                if index % 2:
                    api_t = time_call(api_work, repeat=1)
                    direct_t = time_call(direct_work, repeat=1)
                else:
                    direct_t = time_call(direct_work, repeat=1)
                    api_t = time_call(api_work, repeat=1)
                direct_times.append(direct_t)
                api_times.append(api_t)
                ratios.append(api_t / direct_t)
                gc.collect()
        finally:
            if gc_was_enabled:
                gc.enable()
        registry.close()
        db.close()
        series.append({"persons": n, "batch": API_BATCH,
                       "direct_seconds": statistics.median(direct_times),
                       "api_seconds": statistics.median(api_times),
                       "overhead": statistics.median(ratios) - 1.0})
    return series


def run_suite(scale_list, repeat: int = 3) -> dict:
    # The facade comparison runs first: its paired ratios are the most
    # noise-sensitive measurement in the suite, and the document sweeps
    # below leave a large heap behind that skews small-unit timings.
    api_series = measure_api_overhead(scale_list, repeat)
    nav_desc, ok_desc = measure_navigation(
        NAV_DESCENDANT_PATHS, NAV_DESCENDANT_TAGS, scale_list, repeat)
    nav_child, ok_child = measure_navigation(
        NAV_CHILD_PATHS, [], scale_list, repeat)
    selectivity, ok_sel = measure_selectivity(scale_list[-1], repeat)
    scenarios = [
        {"name": "navigation_descendant",
         "style": "fig 9.2 regime: descendant-heavy navigation vs doc size",
         "series": nav_desc},
        {"name": "navigation_child_paths",
         "style": "fig 3 regime: child-step location paths vs doc size",
         "series": nav_child},
        {"name": "selectivity",
         "style": "fig 9.3 regime: descendant scans by tag selectivity",
         "series": selectivity},
        {"name": "view_maintenance_insert",
         "style": "fig 9.2 maintenance: insert batch, per view query",
         "series": measure_maintenance(scale_list, repeat)},
        {"name": "update_overhead",
         "style": "index upkeep: raw insert+delete batch",
         "series": measure_update_overhead(scale_list, repeat)},
        {"name": "api_overhead",
         "style": "session facade: Database.batch vs direct "
                  "ViewRegistry.apply_updates",
         "series": api_series},
    ]
    headline = nav_desc[-1]
    max_overhead = max(entry["overhead"] for entry in api_series)
    return {
        "suite": "perf_suite",
        "description": "indexed StructuralIndex fast paths vs walk-based "
                       "unindexed fallbacks across XMark scaling factors, "
                       "plus the Database facade overhead",
        "scales": list(scale_list),
        "repeat": repeat,
        "consistency_ok": ok_desc and ok_child and ok_sel,
        "scenarios": scenarios,
        "headline": {"scenario": "navigation_descendant",
                     "persons": headline["persons"],
                     "speedup": headline["speedup"]},
        "api_overhead": {"target": API_OVERHEAD_TARGET,
                         "max_overhead": max_overhead,
                         "ok": max_overhead < API_OVERHEAD_TARGET},
    }


def print_suite(result: dict) -> None:
    for scenario in result["scenarios"]:
        rows = []
        if scenario["name"] == "api_overhead":
            for entry in scenario["series"]:
                rows.append([entry["persons"], ms(entry["direct_seconds"]),
                             ms(entry["api_seconds"]),
                             f"{entry['overhead'] * 100:6.2f}%"])
            print_table(
                f"Perf suite: {scenario['name']} — {scenario['style']}",
                ["scale", "direct (ms)", "database (ms)", "overhead"], rows)
            continue
        for entry in scenario["series"]:
            label = entry.get("tag") or (
                f"{entry['persons']} {entry['query']}"
                if "query" in entry else entry["persons"])
            rows.append([label, ms(entry["indexed_seconds"]),
                         ms(entry["unindexed_seconds"]),
                         f"{entry['speedup']:6.1f}x"])
        print_table(f"Perf suite: {scenario['name']} — {scenario['style']}",
                    ["scale", "indexed (ms)", "unindexed (ms)", "speedup"],
                    rows)
    print(f"\nconsistency_ok: {result['consistency_ok']}")
    head = result["headline"]
    print(f"headline: {head['scenario']} at {head['persons']} persons — "
          f"{head['speedup']:.1f}x")
    api = result["api_overhead"]
    print(f"api_overhead: max {api['max_overhead'] * 100:.2f}% "
          f"(target < {api['target'] * 100:.0f}%) — "
          f"{'ok' if api['ok'] else 'OVER TARGET'}")


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", default=None,
                        help="comma-separated person counts "
                             "(default: REPRO_BENCH_SCALE or 50,100,200,400)")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--json", default="BENCH_perf_suite.json",
                        metavar="PATH")
    args = parser.parse_args(argv)
    scale_list = ([int(part) for part in args.scales.split(",") if part]
                  if args.scales else scales())
    result = run_suite(scale_list, repeat=args.repeat)
    print_suite(result)
    with open(args.json, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(f"[results saved to {args.json}]")
    return result


# -- tier-1 shape tests ---------------------------------------------------------------

def test_indexed_navigation_matches_unindexed():
    storage = fresh_site(40)
    assert run_paths(storage, NAV_DESCENDANT_PATHS, True) \
        == run_paths(storage, NAV_DESCENDANT_PATHS, False)
    assert run_paths(storage, NAV_CHILD_PATHS, True) \
        == run_paths(storage, NAV_CHILD_PATHS, False)
    assert run_descendant_scans(storage, NAV_DESCENDANT_TAGS, True) \
        == run_descendant_scans(storage, NAV_DESCENDANT_TAGS, False)


def test_indexed_descendant_navigation_faster():
    series, consistent = measure_navigation(
        NAV_DESCENDANT_PATHS, NAV_DESCENDANT_TAGS, [200], repeat=3)
    assert consistent
    # The sweep shows ~10x; any margin below 1x would mean the index lost.
    assert series[0]["indexed_seconds"] < series[0]["unindexed_seconds"], \
        series


def test_suite_emits_valid_json(tmp_path):
    path = tmp_path / "perf_suite.json"
    main(["--scales", "10,20", "--repeat", "1", "--json", str(path)])
    loaded = json.loads(path.read_text())
    assert loaded["suite"] == "perf_suite"
    assert loaded["consistency_ok"] is True
    assert {s["name"] for s in loaded["scenarios"]} >= {
        "navigation_descendant", "selectivity", "view_maintenance_insert",
        "api_overhead"}
    for scenario in loaded["scenarios"]:
        assert scenario["series"], scenario["name"]
    assert "max_overhead" in loaded["api_overhead"]


def test_api_batch_matches_direct_stream():
    """The facade and the direct stream it is benchmarked against must
    leave the view in identical states (else the overhead compares
    different work)."""
    n = 20
    fragments = [xmark.new_person_xml(9000 + i, age=70) for i in range(3)]

    storage = fresh_site(n)
    registry = ViewRegistry(storage)
    registry.register("seniors", xmark.SELECTION_QUERY)
    anchor = persons(storage)[-1]
    registry.apply_updates([
        UpdateRequest.insert("site.xml", anchor, fragment, "after")
        for fragment in fragments])

    db = Database(storage=fresh_site(n))
    db.create_view("seniors", xmark.SELECTION_QUERY)
    with db.batch():
        for fragment in fragments:
            db.update("site.xml").at(f"/site/people/person[{n}]") \
                .insert(fragment, position="after")
    assert db.read("seniors") == registry.query("seniors")


if __name__ == "__main__":
    main()
