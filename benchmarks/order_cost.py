"""Shared machinery for the order-cost figures (Figs 3.7-3.10).

The paper reports, per input size, (a) the order-handling cost relative to
total execution and (b) a breakdown of that cost into the Order Schema
computation, Overriding Order key assignment, and the final (partial) sort.
"""

from __future__ import annotations

from bench_common import (Engine, Profiler, fresh_site, ms, print_table,
                          ratio, scales, time_call, translate_query)

ORDER_LABELS = ("order_schema", "overriding_order", "final_sort")


def measure_order_cost(query: str, num_persons: int) -> dict[str, float]:
    """One measurement: execution seconds + per-concern order costs."""
    storage = fresh_site(num_persons)
    engine = Engine(storage)

    # Order Schema computation happens at plan preparation time and does
    # not depend on the data size (only on the number of operators).
    plan_holder = {}

    def prepare():
        plan_holder["plan"] = translate_query(query)

    order_schema_cost = time_call(prepare, repeat=3)
    plan = plan_holder["plan"]

    profiler = Profiler(enabled=True)
    execution = time_call(lambda: engine.query(plan, profiler=profiler),
                          repeat=2)
    # profiler accumulated over both repeats: halve for a per-run figure
    overriding = profiler.totals.get("overriding_order", 0.0) / 2
    final_sort = profiler.totals.get("final_sort", 0.0) / 2
    return {
        "execution": execution,
        "order_schema": order_schema_cost,
        "overriding_order": overriding,
        "final_sort": final_sort,
        "order_total": order_schema_cost + overriding + final_sort,
    }


def figure_rows(query: str) -> list[list[str]]:
    rows = []
    for n in scales():
        m = measure_order_cost(query, n)
        rows.append([n, ms(m["execution"]), ms(m["order_total"]),
                     ratio(m["order_total"], m["execution"])])
    return rows


def breakdown_rows(query: str, num_persons: int) -> list[list[str]]:
    m = measure_order_cost(query, num_persons)
    return [[label, ms(m[label]), ratio(m[label], m["execution"])]
            for label in ORDER_LABELS]


def print_figure(figure: str, query_name: str, query: str) -> None:
    print_table(
        f"Fig {figure}(a): order cost vs execution — {query_name}",
        ["persons", "exec (ms)", "order (ms)", "order/exec"],
        figure_rows(query))
    largest = scales()[-1]
    print_table(
        f"Fig {figure}(b): order cost breakdown at {largest} persons",
        ["component", "cost (ms)", "of exec"],
        breakdown_rows(query, largest))


def assert_order_overhead_small(query: str, num_persons: int = 100,
                                limit: float = 0.35) -> None:
    """The figure's shape: order handling is a small fraction of execution."""
    m = measure_order_cost(query, num_persons)
    assert m["order_total"] <= limit * m["execution"] + 0.002, (
        f"order cost {m['order_total']:.4f}s exceeds {limit:.0%} of "
        f"execution {m['execution']:.4f}s")
