"""Fig 9.5: varying delete-update size for Query 1 and Query 2 (Section 9.5).

Batches of 1..N fragment deletions propagated through the counting
machinery in one delta pass, against recomputation.
"""

from bench_common import (materialized_view, ms, persons, print_table,
                          scales, time_call, xmark)
from repro import UpdateRequest

BATCH_SIZES = [1, 2, 4, 8]
QUERIES = [("Query 1 (selection)", xmark.SELECTION_QUERY),
           ("Query 2 (join)", xmark.JOIN_QUERY)]


def measure(query: str, batch: int, num_persons: int):
    storage, view = materialized_view(query, num_persons)
    targets = persons(storage)[:batch]
    updates = [UpdateRequest.delete("site.xml", t) for t in targets]
    report = view.apply_updates(updates)
    recompute = time_call(lambda: view.recompute_xml(), repeat=2)
    return report, recompute


def figure_rows(query: str, num_persons: int):
    rows = []
    for batch in BATCH_SIZES:
        report, recompute = measure(query, batch, num_persons)
        rows.append([batch, ms(report.total_seconds), ms(recompute)])
    return rows


def test_delete_maintenance_beats_recompute():
    for _name, query in QUERIES:
        report, recompute = measure(query, 4, 150)
        assert report.total_seconds < recompute, (_name,)


def test_delete_batch_correct():
    storage, view = materialized_view(xmark.JOIN_QUERY, 100)
    targets = persons(storage)[:4]
    view.apply_updates([UpdateRequest.delete("site.xml", t)
                        for t in targets])
    assert view.to_xml() == view.recompute_xml()


def test_benchmark_delete_batch(benchmark):
    def run():
        measure(xmark.SELECTION_QUERY, 4, 100)

    benchmark(run)


if __name__ == "__main__":
    largest = scales()[-1]
    for name, query in QUERIES:
        print_table(
            f"Fig 9.5: varying delete size — {name} at {largest} persons",
            ["batch", "maintain (ms)", "recompute (ms)"],
            figure_rows(query, largest))
    from bench_common import save_json

    save_json("fig9_5_delete_size")
