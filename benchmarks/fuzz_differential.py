"""Time-budgeted differential fuzz for CI (and local smoke runs).

Drives the shared randomized harness (:func:`tests.helpers.run_differential`)
over every mutator kind — person/auction churn, join-key collection growth
(second ``<city>`` cells, nested same-tag person inserts) and city/name
text modifies — against the views that historically diverged, with the
operator-state store enabled and disabled.  Every batch is checked
against the recompute oracle, so a future divergence fails the build
instead of landing in ROADMAP as an open item.  ``--compiled`` (the
default) runs every leg on the delta-plan VM; ``--no-compiled`` pins
the sweep to the tree interpreter — CI runs one schedule of each.

Run from the repo root::

    PYTHONPATH=src python benchmarks/fuzz_differential.py \
        --seeds 1,2,3 --steps 30 --budget 300

The budget is a soft wall-clock cap: the sweep stops scheduling new legs
once it is exhausted (already-running legs finish), printing how much was
covered — CI stays bounded even on slow runners, while at least the
first legs always run to completion.
"""

from __future__ import annotations

import argparse
import pathlib
import random
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from tests.helpers import ALL_MUTATORS, random_batch, \
    run_differential  # noqa: E402
from repro.api import Database  # noqa: E402
from repro.workloads import xmark  # noqa: E402

#: the views the fuzz sweeps: the two historical ROADMAP divergences,
#: the join and selection views (predicate re-routing through Select),
#: and the per-group aggregate view (pair re-routing through AggState).
FUZZ_VIEWS = {
    "order-query-2": xmark.ORDER_QUERY_2,
    "persons-by-city": xmark.PERSONS_BY_CITY_QUERY,
    "join": xmark.JOIN_QUERY,
    "selection": xmark.SELECTION_QUERY,
    "city-headcount": xmark.CITY_HEADCOUNT_QUERY,
}


def run_crash_churn(seed: int, steps: int, crash_every: int,
                    num_persons: int = 20, compiled: bool = True) -> int:
    """Durable-session churn: apply random batches against a durable
    :class:`Database`, "kill" the process every ``crash_every`` rounds
    (drop the session with no close, so no final checkpoint), recover
    from the directory, and oracle-check every view after each batch
    and each recovery.  Returns the number of updates applied."""
    with tempfile.TemporaryDirectory(prefix="crash-churn-") as path:
        def open_db() -> Database:
            db = Database(durable_path=path, fsync="always",
                          checkpoint_every=32, compiled=compiled)
            if not db.views():                 # first open: seed the dir
                db.load("site.xml",
                        xmark.generate_site(num_persons, seed=1))
                db.create_view("join", xmark.JOIN_QUERY)
                db.create_view("persons-by-city",
                               xmark.PERSONS_BY_CITY_QUERY,
                               policy="deferred")
            return db

        db = open_db()
        rng = random.Random(seed)
        updates = 0
        for step in range(steps):
            batch = random_batch(rng, db.storage, step, ALL_MUTATORS)
            if batch:
                db.registry.apply_updates(batch)
                updates += len(batch)
            for name in db.views():
                got = db.read(name)
                want = db.registry.recompute_xml(name)
                if got != want:
                    raise AssertionError(
                        f"crash_churn seed={seed} step={step}: view "
                        f"{name} diverged from recomputation\n"
                        f" got: {got}\nwant: {want}")
            if crash_every and (step + 1) % crash_every == 0:
                del db                          # kill -9 analogue
                db = open_db()
        db.close()
        return updates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", default="1,2,3",
                        help="comma-separated rng seeds (default 1,2,3)")
    parser.add_argument("--steps", type=int, default=30,
                        help="mixed batches per leg (default 30)")
    parser.add_argument("--persons", type=int, default=20)
    parser.add_argument("--budget", type=float, default=300.0,
                        help="soft wall-clock budget in seconds")
    parser.add_argument("--views", default=None,
                        help="comma-separated view names "
                             f"(default: all of {', '.join(FUZZ_VIEWS)})")
    parser.add_argument("--compiled", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="run every leg on the compiled delta-plan "
                             "VM (--no-compiled pins the sweep to the "
                             "tree interpreter)")
    parser.add_argument("--crash-every", type=int, default=5,
                        help="crash_churn legs kill+recover the durable "
                             "session every N rounds (0 disables the "
                             "crash_churn schedule; default 5)")
    args = parser.parse_args(argv)
    seeds = [int(part) for part in args.seeds.split(",") if part]
    names = ([name for name in args.views.split(",") if name]
             if args.views else list(FUZZ_VIEWS))

    started = time.monotonic()
    legs_run = 0
    legs_skipped = 0
    updates = 0
    for seed in seeds:
        for name in names:
            for operator_state in (True, False):
                if time.monotonic() - started > args.budget:
                    legs_skipped += 1
                    continue
                updates += run_differential(
                    seed, args.steps, ALL_MUTATORS, FUZZ_VIEWS[name],
                    num_persons=args.persons, site_seed=1,
                    operator_state=operator_state,
                    compiled=args.compiled)
                legs_run += 1
                print(f"ok   seed={seed} view={name} "
                      f"operator_state={operator_state} "
                      f"compiled={args.compiled}")
    if args.crash_every:
        for seed in seeds:
            if time.monotonic() - started > args.budget:
                legs_skipped += 1
                continue
            updates += run_crash_churn(seed, args.steps, args.crash_every,
                                       num_persons=args.persons,
                                       compiled=args.compiled)
            legs_run += 1
            print(f"ok   seed={seed} schedule=crash_churn "
                  f"crash_every={args.crash_every}")
    elapsed = time.monotonic() - started
    print(f"\ndifferential fuzz: {legs_run} legs, {updates} updates, "
          f"{elapsed:.1f}s"
          + (f" ({legs_skipped} legs skipped over budget)"
             if legs_skipped else ""))
    if legs_run == 0:
        print("budget exhausted before any leg ran", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
