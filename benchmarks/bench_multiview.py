"""Multi-view maintenance: shared validation routing vs per-view checks.

With N registered views, the naive Validate phase runs every view's SAPT
relevancy check per update — N tag-path walks and N path-set scans.  The
:class:`repro.multiview.SharedValidationRouter` classifies each update
once against one interned path index.  This module measures both on the
same update-target stream across a growing view count and emits a JSON
result (run as a script) showing shared routing winning, plus an
end-to-end registry maintenance timing.
"""

import json

from bench_common import (StorageManager, auctions, ms, persons,
                          print_table, scales, time_call, translate_query,
                          xmark)

from repro import UpdateRequest, ViewRegistry
from repro.multiview.router import SharedValidationRouter
from repro.updates.sapt import Sapt
from repro.workloads import bib as bibload

#: The view definitions a registry instance maintains, in registration
#: order; slices of this list give the N-view workloads.
VIEW_QUERIES = [
    ("profiles", xmark.ORDER_QUERY_1),
    ("cities", xmark.ORDER_QUERY_2),
    ("sale-dates", xmark.ORDER_QUERY_3),
    ("customers-bids", xmark.ORDER_QUERY_4),
    ("by-city", xmark.PERSONS_BY_CITY_QUERY),
    ("seniors", xmark.SELECTION_QUERY),
    ("sales", xmark.JOIN_QUERY),
]


def build_storage(num_persons: int) -> StorageManager:
    storage = StorageManager()
    xmark.register_site(storage, num_persons)
    bibload.register_running_example(storage)
    return storage


def build_sapts(num_views: int) -> list[tuple[str, Sapt]]:
    sapts = []
    for name, query in VIEW_QUERIES[:num_views]:
        sapts.append((name, Sapt.from_plan(translate_query(query).prepare())))
    return sapts


def classification_targets(storage: StorageManager) -> list:
    """A mixed stream of update targets: binding roots, value leaves,
    predicate leaves and subtrees irrelevant to every view."""
    targets = []
    targets += [("site.xml", key) for key in persons(storage)]
    targets += [("site.xml", key) for key in storage.find_by_path(
        "site.xml", [("child", "site"), ("child", "people"),
                     ("child", "person"), ("child", "profile"),
                     ("child", "age")])]
    targets += [("site.xml", key) for key in auctions(storage)]
    targets += [("bib.xml", key) for key in storage.find_by_path(
        "bib.xml", [("child", "bib"), ("child", "book"),
                    ("child", "author")])]
    return targets


def measure_routing(num_persons: int, num_views: int
                    ) -> tuple[float, float, int]:
    """Best-of-3 seconds for (per-view, shared) classification of the
    whole target stream."""
    storage = build_storage(num_persons)
    sapts = build_sapts(num_views)
    router = SharedValidationRouter()
    for name, sapt in sapts:
        router.subscribe(name, sapt)
    targets = classification_targets(storage)

    def per_view():
        for document, key in targets:
            for _name, sapt in sapts:
                sapt.is_relevant(storage, document, key)

    def shared():
        for document, key in targets:
            router.route(storage, document, key)

    return (time_call(per_view, repeat=3), time_call(shared, repeat=3),
            len(targets))


def measure_maintenance(num_persons: int, num_views: int) -> float:
    """End-to-end registry maintenance of an interleaved stream."""
    storage = build_storage(num_persons)
    registry = ViewRegistry(storage)
    for name, query in VIEW_QUERIES[:num_views]:
        registry.register(name, query)
    person_keys = persons(storage)
    auction_keys = auctions(storage)
    updates = [
        UpdateRequest.insert("site.xml", person_keys[-1],
                             xmark.new_person_xml(1, age=61), "after"),
        UpdateRequest.delete("site.xml", person_keys[0]),
        UpdateRequest.insert("site.xml", auction_keys[-1],
                             xmark.new_closed_auction_xml(9, "person5"),
                             "after"),
        UpdateRequest.delete("site.xml", auction_keys[1]),
    ]
    return time_call(lambda: registry.apply_updates(updates), repeat=1)


def routing_result(num_persons: int = 100) -> dict:
    """The JSON-serializable shared-vs-per-view routing comparison."""
    series = []
    for num_views in (1, 3, 5, len(VIEW_QUERIES)):
        per_view, shared, targets = measure_routing(num_persons, num_views)
        series.append({
            "views": num_views,
            "targets": targets,
            "per_view_seconds": per_view,
            "shared_seconds": shared,
            "speedup": per_view / shared if shared > 0 else None,
        })
    return {
        "benchmark": "multiview_shared_validation_routing",
        "num_persons": num_persons,
        "series": series,
        "shared_routing_wins": all(
            row["shared_seconds"] < row["per_view_seconds"]
            for row in series if row["views"] > 1),
    }


def figure_rows():
    rows = []
    for n in scales():
        per_view, shared, _targets = measure_routing(n, len(VIEW_QUERIES))
        maintain = measure_maintenance(n, len(VIEW_QUERIES))
        rows.append([n, ms(per_view), ms(shared),
                     f"{per_view / shared:6.2f}x", ms(maintain)])
    return rows


def test_shared_routing_matches_per_view_validation():
    storage = build_storage(30)
    sapts = build_sapts(len(VIEW_QUERIES))
    router = SharedValidationRouter()
    for name, sapt in sapts:
        router.subscribe(name, sapt)
    for document, key in classification_targets(storage):
        routed = router.route(storage, document, key).views
        expected = {name for name, sapt in sapts
                    if sapt.is_relevant(storage, document, key)}
        assert routed == expected, (document, key)


def test_shared_routing_beats_per_view_validation():
    per_view, shared, _targets = measure_routing(60, len(VIEW_QUERIES))
    # The sweep shows ~2.5x at 7 views; the margin absorbs timer noise on
    # loaded machines.
    assert shared < per_view * 1.5, (shared, per_view)


def test_registry_maintains_full_view_set():
    storage = build_storage(30)
    registry = ViewRegistry(storage)
    for name, query in VIEW_QUERIES:
        registry.register(name, query)
    person_keys = persons(storage)
    registry.apply_updates([
        UpdateRequest.insert("site.xml", person_keys[-1],
                             xmark.new_person_xml(3, age=48), "after"),
        UpdateRequest.delete("site.xml", person_keys[2]),
    ])
    for name in registry.names():
        assert registry.query(name) == registry.recompute_xml(name), name


if __name__ == "__main__":
    result = routing_result()
    print(json.dumps(result, indent=2))
    print_table(
        "Multi-view: shared routing vs per-view validation "
        f"({len(VIEW_QUERIES)} views)",
        ["persons", "per-view (ms)", "shared (ms)", "speedup",
         "maintain (ms)"],
        figure_rows())
    from bench_common import save_json

    save_json("multiview", extra={"routing": result})
