"""Server smoke: boot ``python -m repro.server`` as a real subprocess,
drive a scripted workload over the wire, and assert the serving-layer
contract end to end:

* the push subscription delivers one delta frame per update batch with
  a **contiguous** sequence (gap-free, starting right after the
  subscribe baseline);
* reads are consistent with what the pushes announced;
* the HTTP sidecar serves ``/metrics`` with the ``repro_server_*``
  families and ``/healthz``;
* SIGTERM shuts the server down gracefully (exit code 0).

The whole scripted workload runs twice — once with ``--compiled``
(delta-plan VM, the default) and once with ``--no-compiled`` (tree
interpreter) — so both execution engines boot and serve end to end.

Run:  PYTHONPATH=src python benchmarks/server_smoke.py

Exits non-zero (assertion) on any violation; CI runs this as the
``server-smoke`` job.
"""

import os
import re
import signal
import subprocess
import sys
import urllib.request

sys.path.insert(0, "src")

from repro.server import ReproClient   # noqa: E402

DOC = "<data><row><name>seed</name><v>0</v></row></data>"
VIEW_QUERY = '<r>{for $x in doc("data.xml")/data/row return $x}</r>'
UPDATES = 8

BANNER = re.compile(r"repro view server on ([\d.]+):(\d+) \(http (\d+)\)")


def insert_row(i: int) -> str:
    return ('for $d in document("data.xml")/data update $d '
            f'insert <row><name>r{i}</name><v>{i}</v></row> into $d')


def run_scenario(mode_flag: str) -> int:
    print(f"--- booting server {mode_flag} ---")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.server", mode_flag,
         "--port", "0", "--http-port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONPATH": "src"})
    try:
        banner = process.stdout.readline()
        match = BANNER.search(banner)
        assert match, f"no server banner, got: {banner!r}"
        host, port, http_port = \
            match.group(1), int(match.group(2)), int(match.group(3))
        print(f"server up on {host}:{port} (http {http_port})")

        with ReproClient(host, port) as client:
            client.load("data.xml", DOC)
            client.create_view("rows", VIEW_QUERY)
            subscription = client.subscribe("rows")
            assert subscription.last_sequence == 0, \
                subscription.last_sequence

            applied = [client.update([insert_row(i)])["applied_index"]
                       for i in range(UPDATES)]
            assert applied == sorted(applied), applied

            sequences = []
            while len(sequences) < UPDATES:
                frame = subscription.get(timeout=30)
                assert frame["view"] == "rows", frame
                sequences.append(frame["sequence"])
            assert sequences == list(range(1, UPDATES + 1)), \
                f"push sequence not contiguous: {sequences}"
            print(f"push deltas gap-free: sequences {sequences[0]}.."
                  f"{sequences[-1]}")

            read = client.read("rows")
            assert read["sequence"] == UPDATES, read["sequence"]
            for i in range(UPDATES):
                assert f"<name>r{i}</name>" in read["xml"], i
            subscription.cancel()

        scrape = urllib.request.urlopen(
            f"http://{host}:{http_port}/metrics", timeout=10
        ).read().decode()
        families = ["repro_server_sessions", "repro_server_frames_out",
                    "repro_server_push_lag_seconds", "repro_view_flushes"]
        if mode_flag == "--compiled":
            families += ["repro_plan_compile_seconds",
                         "repro_plan_cache_hits",
                         "repro_vm_instructions_executed"]
        for family in families:
            assert family in scrape, f"{family} missing from /metrics"
        health = urllib.request.urlopen(
            f"http://{host}:{http_port}/healthz", timeout=10
        ).read().decode()
        assert health == "ok\n", health
        print(f"/metrics ok ({len(scrape.splitlines())} lines), "
              f"/healthz ok")

        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=30)
        assert code == 0, f"server exited {code} on SIGTERM"
        print("graceful shutdown ok (exit 0)")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


def main() -> int:
    for mode_flag in ("--compiled", "--no-compiled"):
        code = run_scenario(mode_flag)
        if code:
            return code
    return 0


if __name__ == "__main__":
    sys.exit(main())
