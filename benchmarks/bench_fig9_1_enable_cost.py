"""Fig 9.1: cost of *enabling* the view-maintenance feature (Section 9.1).

Compares plain query execution (algebra evaluation + serialization of the
raw result, counts/extent discarded) against full view materialization
(semantic ids fused into a maintainable extent with count annotations).
"""

from bench_common import (Engine, MaterializedXQueryView, fresh_site, ms,
                          print_table, ratio, scales, time_call,
                          translate_query, xmark)

QUERY = xmark.JOIN_QUERY


def measure(num_persons: int) -> tuple[float, float]:
    storage = fresh_site(num_persons)
    engine = Engine(storage)
    plan = translate_query(QUERY)
    plain = time_call(lambda: engine.run(plan), repeat=2)

    def materialize():
        view = MaterializedXQueryView(storage, plan)
        view.materialize()

    enabled = time_call(materialize, repeat=2)
    return plain, enabled


def figure_rows():
    rows = []
    for n in scales():
        plain, enabled = measure(n)
        overhead = enabled - plain
        rows.append([n, ms(plain), ms(enabled), ratio(overhead, plain)])
    return rows


def test_enabling_overhead_is_bounded():
    plain, enabled = measure(100)
    # The paper: enabling maintenance adds a modest constant factor to the
    # initial materialization (id generation + extent fusion).
    assert enabled < 6 * plain + 0.01, (plain, enabled)


def test_benchmark_materialize_with_maintenance(benchmark):
    storage = fresh_site(100)
    plan = translate_query(QUERY)

    def materialize():
        view = MaterializedXQueryView(storage, plan)
        view.materialize()

    benchmark(materialize)


if __name__ == "__main__":
    print_table(
        "Fig 9.1: cost of enabling view maintenance (join view)",
        ["persons", "plain exec (ms)", "materialize (ms)", "overhead"],
        figure_rows())
    from bench_common import save_json

    save_json("fig9_1_enable_cost")
