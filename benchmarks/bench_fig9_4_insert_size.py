"""Fig 9.4: varying insert-update size (Section 9.4).

One batch update tree with 1..N inserted fragments, propagated in a single
delta pass; compared against recomputation, with the V-P-A breakdown.
"""

from bench_common import (materialized_view, ms, persons, print_table,
                          ratio, scales, time_call, xmark)
from repro import UpdateRequest

BATCH_SIZES = [1, 2, 4, 8, 16]
QUERY = xmark.JOIN_QUERY


def measure(batch: int, num_persons: int):
    storage, view = materialized_view(QUERY, num_persons)
    anchors = persons(storage)
    updates = [UpdateRequest.insert(
        "site.xml", anchors[-1], xmark.new_person_xml(i), "after")
        for i in range(batch)]
    report = view.apply_updates(updates)
    recompute = time_call(lambda: view.recompute_xml(), repeat=2)
    return report, recompute


def figure_rows(num_persons: int):
    rows = []
    for batch in BATCH_SIZES:
        report, recompute = measure(batch, num_persons)
        rows.append([batch, ms(report.total_seconds), ms(recompute),
                     report.batches])
    return rows


def breakdown_rows(num_persons: int):
    report, _ = measure(BATCH_SIZES[-1], num_persons)
    total = report.total_seconds
    return [[phase, ms(value), ratio(value, total)]
            for phase, value in [("validate", report.validate_seconds),
                                 ("propagate", report.propagate_seconds),
                                 ("apply", report.apply_seconds)]]


def test_batch_propagates_in_one_pass():
    report, _ = measure(8, 100)
    assert report.batches == 1


def test_maintenance_beats_recompute_for_moderate_batches():
    # The paper's shape: maintenance wins while the update is small
    # relative to the document; very large batches approach the
    # recomputation crossover (the sweep in figure_rows reports it).
    report, recompute = measure(4, 150)
    assert report.total_seconds < recompute


def test_maintenance_cost_grows_sublinearly_in_batch():
    small, _ = measure(2, 150)
    large, _ = measure(16, 150)
    assert large.total_seconds < 8 * max(small.total_seconds, 1e-4)


def test_benchmark_batch_insert(benchmark):
    def run():
        measure(4, 100)

    benchmark(run)


if __name__ == "__main__":
    largest = scales()[-1]
    print_table(
        f"Fig 9.4 (top): varying insert size at {largest} persons",
        ["batch", "maintain (ms)", "recompute (ms)", "delta passes"],
        figure_rows(largest))
    print_table(
        f"Fig 9.4 (bottom): V-P-A breakdown, batch={BATCH_SIZES[-1]}",
        ["phase", "cost (ms)", "of total"],
        breakdown_rows(largest))
    from bench_common import save_json

    save_json("fig9_4_insert_size")
