"""Fig 4.9: cost of generating semantic identifiers — grouping view (Query 1 of Fig 4.8)
(Section 4.8)."""

from bench_common import Engine, fresh_site, translate_query
from semid_cost import (SEMID_QUERY_1 as QUERY, assert_semid_overhead_small,
                        print_figure)


def test_semid_overhead_is_small():
    assert_semid_overhead_small(QUERY)


def test_benchmark_query_execution(benchmark):
    storage = fresh_site(100)
    plan = translate_query(QUERY)
    engine = Engine(storage)
    benchmark(lambda: engine.query(plan))


if __name__ == "__main__":
    print_figure("4.9", "grouping view (Query 1 of Fig 4.8)", QUERY)
    from bench_common import save_json

    save_json("fig4_9_semid_q1")
