"""Ablation: the Validate phase (SAPT relevancy filtering, Section 5.2).

DESIGN.md calls out irrelevant-update filtering as a design choice; this
ablation measures a stream of *irrelevant* updates (author renames the
view never reads) with validation on vs. off.  With SAPT filtering the
updates never reach propagation; without it every one triggers a delta
pass that produces nothing.
"""

from bench_common import (MaterializedXQueryView, fresh_site, ms, persons,
                          print_table, scales, time_call, xmark)
from repro import UpdateRequest

#: Reads only names/cities of sellers — profile education is irrelevant.
QUERY = xmark.JOIN_QUERY


def _irrelevant_updates(storage, count: int):
    updates = []
    for index, person in enumerate(persons(storage)[:count]):
        profile = storage.children(person, "profile")[0]
        education = storage.children(profile, "education")[0]
        updates.append(UpdateRequest.modify(
            "site.xml", education, f"Degree {index}"))
    return updates


def measure(num_persons: int, validate: bool) -> float:
    storage = fresh_site(num_persons)
    view = MaterializedXQueryView(storage, QUERY,
                                  validate_updates=validate)
    view.materialize()
    updates = _irrelevant_updates(storage, 10)
    report = view.apply_updates(updates)
    if validate:
        assert report.irrelevant == len(updates)
    return report.total_seconds


def figure_rows():
    rows = []
    for n in scales():
        with_sapt = measure(n, validate=True)
        without = measure(n, validate=False)
        rows.append([n, ms(with_sapt), ms(without),
                     f"{without / max(with_sapt, 1e-9):6.1f}x"])
    return rows


def test_sapt_filtering_pays_off():
    with_sapt = measure(150, validate=True)
    without = measure(150, validate=False)
    assert with_sapt < without


def test_benchmark_irrelevant_stream_with_sapt(benchmark):
    benchmark(lambda: measure(100, validate=True))


if __name__ == "__main__":
    print_table(
        "Ablation: SAPT relevancy filtering (10 irrelevant modifies)",
        ["persons", "with SAPT (ms)", "without (ms)", "saving"],
        figure_rows())
    from bench_common import save_json

    save_json("ablation_validate")
