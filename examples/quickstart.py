"""Quickstart: the paper's running example, end to end (Figs 1.1-1.4).

Defines the year-grouping view of Fig 1.2 over bib.xml and prices.xml,
materializes it, then applies the three source updates of Fig 1.3 — an
insert, a delete, and a price replacement — incrementally.  After every
update the refreshed extent is checked against full recomputation.

Run:  python examples/quickstart.py
"""

from repro import MaterializedXQueryView, StorageManager, \
    apply_xquery_update
from repro.workloads.bib import (NEW_BOOK_FRAGMENT, YEAR_GROUP_QUERY,
                                 register_running_example)


def main() -> None:
    storage = StorageManager()
    register_running_example(storage)

    view = MaterializedXQueryView(storage, YEAR_GROUP_QUERY)
    print("== initial materialized view (Fig 1.2b) ==")
    print(view.materialize())

    updates = [
        # Fig 1.3(a): insert a new 1994 book after the second book.
        f'''for $book in document("bib.xml")/bib/book[2]
            update $book
            insert {NEW_BOOK_FRAGMENT} after $book''',
        # Fig 1.3(b): delete "Data on the Web".
        '''for $book in document("bib.xml")/bib/book
           where $book/title = "Data on the Web"
           update $book
           delete $book''',
        # Fig 1.3(c): replace the price of "TCP/IP Illustrated".
        '''for $entry in document("prices.xml")/prices/entry
           where $entry/b-title = "TCP/IP Illustrated"
           update $entry
           replace $entry/price/text() with "70"''',
    ]

    for i, statement in enumerate(updates, start=1):
        requests = apply_xquery_update(statement, storage)
        report = view.apply_updates(requests)
        print(f"\n== after update {i} "
              f"(accepted={report.accepted}, "
              f"propagate={report.propagate_seconds * 1000:.2f}ms, "
              f"apply={report.apply_seconds * 1000:.2f}ms) ==")
        print(view.to_xml())
        assert view.to_xml() == view.recompute_xml(), "extent diverged!"

    print("\nFinal extent equals Fig 1.4 and matches recomputation.")


if __name__ == "__main__":
    main()
