"""Quickstart: the paper's running example, end to end (Figs 1.1-1.4),
through the unified :class:`repro.api.Database` session API.

Defines the year-grouping view of Fig 1.2 over bib.xml and prices.xml,
materializes it, then applies the three source updates of Fig 1.3 — an
insert via the fluent path-addressed builder, a delete and a price
replacement via XQuery-update strings — incrementally.  A subscription
reports every view refresh, and after every update the refreshed extent
is checked against full recomputation.

No raw FlexKeys, StorageManagers or UpdateRequests appear below: paths
address nodes, and every write funnels through the shared validation
router exactly once.

Run:  python examples/quickstart.py
"""

from repro.api import Database
from repro.workloads.bib import (BIB_XML, NEW_BOOK_FRAGMENT, PRICES_XML,
                                 YEAR_GROUP_QUERY)


def main() -> None:
    with Database() as db:
        db.load("bib.xml", BIB_XML).load("prices.xml", PRICES_XML)

        view = db.create_view("by_year", YEAR_GROUP_QUERY)
        print("== initial materialized view (Fig 1.2b) ==")
        print(view.read())

        db.subscribe("by_year", lambda event: print(
            f"  [refresh: {event.reason}, {event.trees} update tree(s)]"))

        # Fig 1.3(a): insert a new 1994 book after the second book —
        # the fluent, path-addressed form.
        db.update("bib.xml").at("/bib/book[2]") \
            .insert(NEW_BOOK_FRAGMENT, position="after")
        print("\n== after insert (Fig 1.3a) ==")
        print(view.read())
        assert view.read() == view.recompute(), "extent diverged!"

        # Fig 1.3(b): delete "Data on the Web" — the TIHW01 string form,
        # unified with the programmatic path by db.execute.
        db.execute('''for $book in document("bib.xml")/bib/book
                      where $book/title = "Data on the Web"
                      update $book
                      delete $book''')
        print("\n== after delete (Fig 1.3b) ==")
        print(view.read())
        assert view.read() == view.recompute(), "extent diverged!"

        # Fig 1.3(c): replace the price of "TCP/IP Illustrated" —
        # builder again, addressing through a value predicate.
        db.update("prices.xml") \
            .at('/prices/entry[b-title="TCP/IP Illustrated"]/price') \
            .replace_with("70")
        print("\n== after replace (Fig 1.3c) ==")
        print(view.read())
        assert view.read() == view.recompute(), "extent diverged!"

        # Ad-hoc reads never need a view:
        titles = db.query('<titles>{for $b in doc("bib.xml")/bib/book '
                          'return $b/title}</titles>')
        print(f"\nad-hoc query: {titles}")

        print("\nFinal extent equals Fig 1.4 and matches recomputation.")


if __name__ == "__main__":
    main()
