"""Data integration: a price-enriched catalog over two autonomous sources.

The Chapter 1 motivation: a mediator integrates a publisher's catalog
(bib.xml) with a price feed (prices.xml) into a materialized, restructured
view with aggregates.  Each source sends its own updates; the mediator
keeps the integrated view fresh incrementally — including the per-year
average price, maintained from per-member aggregate state (Section 7.6).

Run:  python examples/catalog_integration.py
"""

from repro import (MaterializedXQueryView, StorageManager, UpdateRequest,
                   XmlDocument)
from repro.workloads.bib import generate_bib, generate_prices

CATALOG_VIEW = """<catalog>{
FOR $y in distinct-values(doc("bib.xml")/bib/book/@year)
ORDER BY $y
RETURN
 <year value="{$y}">
  <offers>{
   for $b in doc("bib.xml")/bib/book, $e in doc("prices.xml")/prices/entry
   where $y = $b/@year and $b/title = $e/b-title
   return <offer>{$b/title} {$e/price}</offer>
  }</offers>
  <avg-price>{
   avg(for $b in doc("bib.xml")/bib/book, $e in doc("prices.xml")/prices/entry
       where $y = $b/@year and $b/title = $e/b-title
       return $e/price)
  }</avg-price>
 </year>
}</catalog>"""


def main() -> None:
    storage = StorageManager()
    storage.register(XmlDocument.from_string(
        "bib.xml", generate_bib(num_books=25, num_years=4)))
    storage.register(XmlDocument.from_string(
        "prices.xml", generate_prices(num_books=25, priced_fraction=0.7)))

    view = MaterializedXQueryView(storage, CATALOG_VIEW)
    view.materialize()
    years = view.to_xml().count("<year ")
    print(f"integrated catalog materialized: {years} year groups, "
          f"{view.extent_size()} extent nodes")

    # -- the publisher announces a new title ------------------------------------
    bib_root = storage.root_key("bib.xml")
    last_book = storage.children(bib_root, "book")[-1]
    report = view.apply_updates([UpdateRequest.insert(
        "bib.xml", last_book,
        '<book year="1981"><title>Book 000003</title>'
        '<author><last>New</last><first>N.</first></author></book>',
        "after")])
    print(f"+ publisher insert propagated in "
          f"{report.total_seconds * 1000:.2f} ms")
    assert view.to_xml() == view.recompute_xml()

    # -- the price feed reprices an entry: avg-price refreshes in place ---------
    prices_root = storage.root_key("prices.xml")
    entry = storage.children(prices_root, "entry")[0]
    price = storage.children(entry, "price")[0]
    before = view.to_xml()
    report = view.apply_updates([UpdateRequest.modify(
        "prices.xml", price, "199.99")])
    assert "199.99" in view.to_xml() and view.to_xml() != before
    assert not report.recomputed
    print("~ repricing refreshed the offer and its year's avg-price "
          "incrementally")
    assert view.to_xml() == view.recompute_xml()

    # -- the feed withdraws an entry: derivations counted down ------------------
    gone = storage.children(prices_root, "entry")[1]
    report = view.apply_updates([UpdateRequest.delete("prices.xml", gone)])
    print(f"- price withdrawal: {report.fusion.removed_roots} view "
          f"fragments disconnected")
    assert view.to_xml() == view.recompute_xml()

    # -- an irrelevant publisher change never reaches propagation ---------------
    author = storage.descendants(bib_root, "author")[0]
    last = storage.children(author, "last")[0]
    report = view.apply_updates([UpdateRequest.modify(
        "bib.xml", last, "Renamed")])
    assert report.irrelevant == 1 and report.batches == 0
    print("x author rename filtered by the SAPT (irrelevant to the view)")
    assert view.to_xml() == view.recompute_xml()
    print("catalog consistent with recomputation at every step.")


if __name__ == "__main__":
    main()
