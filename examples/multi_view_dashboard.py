"""Multi-view dashboard: five views, two workloads, one update stream.

A :class:`repro.ViewRegistry` maintains five materialized views — two over
the running-example bib/prices documents and three over an XMark-style
site.xml — from one interleaved stream of inserts, deletes and modifies.
Each view picks its own maintenance policy:

* ``catalog`` / ``seniors`` / ``sales`` — immediate (refreshed at every
  batch boundary);
* ``profiles`` — deferred (refreshed lazily, on read);
* ``by-city`` — threshold(4) (refreshed once 4 update trees are pending).

Every update is validated once by the shared router and propagated only
to the views it can affect; after the stream, every view is checked
against its full-recomputation oracle.

Run:  python examples/multi_view_dashboard.py
"""

from repro import StorageManager, UpdateRequest, ViewRegistry
from repro.multiview import DEFERRED, threshold
from repro.workloads import bib as bibload
from repro.workloads import xmark


def main() -> None:
    storage = StorageManager()
    bibload.register_running_example(storage)
    xmark.register_site(storage, num_persons=25)

    registry = ViewRegistry(storage)
    registry.register("catalog", bibload.YEAR_GROUP_QUERY)
    registry.register("seniors", xmark.SELECTION_QUERY)
    registry.register("sales", xmark.JOIN_QUERY)
    registry.register("profiles", xmark.ORDER_QUERY_1, policy=DEFERRED)
    registry.register("by-city", xmark.PERSONS_BY_CITY_QUERY,
                      policy=threshold(4))
    print(f"registered views: {', '.join(registry.names())}")

    books = storage.children(storage.root_key("bib.xml"), "book")
    persons = storage.find_by_path(
        "site.xml", [("child", "site"), ("child", "people"),
                     ("child", "person")])
    auctions = storage.find_by_path(
        "site.xml", [("child", "site"), ("child", "closed_auctions"),
                     ("child", "closed_auction")])
    ages = storage.find_by_path(
        "site.xml", [("child", "site"), ("child", "people"),
                     ("child", "person"), ("child", "profile"),
                     ("child", "age")])

    stream = [
        UpdateRequest.insert("bib.xml", books[-1],
                             bibload.NEW_BOOK_FRAGMENT, "after"),
        UpdateRequest.insert("site.xml", persons[-1],
                             xmark.new_person_xml(1, city="Cairo", age=67),
                             "after"),
        UpdateRequest.delete("site.xml", persons[0]),
        # age feeds the seniors view's predicate: the router decomposes
        # this modify into delete+insert of the person fragment for every
        # affected view.
        UpdateRequest.modify("site.xml", ages[5], "72"),
        UpdateRequest.insert("site.xml", auctions[-1],
                             xmark.new_closed_auction_xml(9, "person7"),
                             "after"),
        UpdateRequest.delete("bib.xml", books[0]),
        UpdateRequest.insert("site.xml", persons[9],
                             xmark.new_person_xml(2, city="Oslo", age=30),
                             "before"),
        UpdateRequest.delete("site.xml", auctions[3]),
    ]

    report = registry.apply_updates(stream)
    print(f"\nstream: {report.updates} requests processed, "
          f"{report.classifications} classifications (exactly one each), "
          f"{report.routed} routed, "
          f"{report.irrelevant_everywhere} irrelevant everywhere, "
          f"{report.decomposed} decomposed")

    print("\nper-view state after the stream:")
    for name in registry.names():
        view = registry.view(name)
        print(f"  {name:10s} policy={view.policy.kind:9s} "
              f"batches={view.report.batches} "
              f"pending={view.pending_trees()} "
              f"flushes={view.stats.flushes} "
              f"recomputes={view.stats.recomputes}")

    print("\nreading every view (deferred/threshold views flush now):")
    for name in registry.names():
        xml = registry.query(name)
        oracle = registry.recompute_xml(name)
        status = "consistent" if xml == oracle else "DIVERGED"
        print(f"  {name:10s} {len(xml):6d} chars  {status}")
        assert xml == oracle, name

    print("\nAll views match their recomputation oracles.")


if __name__ == "__main__":
    main()
