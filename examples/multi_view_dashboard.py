"""Multi-view dashboard: five views, two workloads, one update stream —
through the unified :class:`repro.api.Database` session API.

One database maintains five materialized views — two over the
running-example bib/prices documents and three over an XMark-style
site.xml — from one transactional batch of path-addressed updates and
XQuery-update strings.  Each view picks its own maintenance policy:

* ``catalog`` / ``seniors`` / ``sales`` — immediate (refreshed at every
  batch boundary);
* ``profiles`` — deferred (refreshed lazily, on read);
* ``by-city`` — threshold(4) (refreshed once 4 update trees are pending).

Every statement in the batch is validated once by the shared router and
propagated only to the views it can affect; subscriptions count the
refreshes per view; after the stream, every view is checked against its
full-recomputation oracle.

Run:  python examples/multi_view_dashboard.py
"""

from collections import Counter

from repro.api import Database
from repro.workloads import bib as bibload
from repro.workloads import xmark

NUM_PERSONS = 25


def main() -> None:
    with Database() as db:
        db.load("bib.xml", bibload.BIB_XML) \
          .load("prices.xml", bibload.PRICES_XML) \
          .load("site.xml", xmark.generate_site(NUM_PERSONS))

        db.create_view("catalog", bibload.YEAR_GROUP_QUERY)
        db.create_view("seniors", xmark.SELECTION_QUERY)
        db.create_view("sales", xmark.JOIN_QUERY)
        db.create_view("profiles", xmark.ORDER_QUERY_1, policy="deferred")
        db.create_view("by-city", xmark.PERSONS_BY_CITY_QUERY, policy=4)
        print(f"registered views: {', '.join(db.views())}")

        refreshes = Counter()
        for name in db.views():
            db.subscribe(name, lambda event: refreshes.update([event.view]))

        with db.batch() as batch:
            db.update("bib.xml").at("/bib/book[2]") \
                .insert(bibload.NEW_BOOK_FRAGMENT, position="after")
            db.update("site.xml").at(f"/site/people/person[{NUM_PERSONS}]") \
                .insert(xmark.new_person_xml(1, city="Cairo", age=67),
                        position="after")
            db.update("site.xml").at("/site/people/person[1]").delete()
            # age feeds the seniors view's predicate: the router decomposes
            # this modify into delete+insert of the person fragment for
            # every affected view.
            db.update("site.xml").at("/site/people/person[6]/profile/age") \
                .replace_with("72")
            db.execute(
                f'for $a in document("site.xml")/site/closed_auctions'
                f'/closed_auction[{NUM_PERSONS}] update $a '
                f'insert {xmark.new_closed_auction_xml(9, "person7")} '
                f'after $a')
            db.execute('''for $b in document("bib.xml")/bib/book
                          where $b/title = "TCP/IP Illustrated"
                          update $b delete $b''')
            db.update("site.xml").at("/site/people/person[10]") \
                .insert(xmark.new_person_xml(2, city="Oslo", age=30),
                        position="before")
            db.update("site.xml") \
                .at("/site/closed_auctions/closed_auction[4]").delete()

        report = batch.report
        print(f"\nbatch: {len(batch)} statements, "
              f"{report.updates} requests processed, "
              f"{report.classifications} classifications "
              f"(exactly one each), {report.routed} routed, "
              f"{report.irrelevant_everywhere} irrelevant everywhere, "
              f"{report.storage_ops} storage ops")

        print("\nper-view state after the stream:")
        for name in db.views():
            view = db.view(name)
            print(f"  {name:10s} policy={view.policy.kind:9s} "
                  f"pending={view.pending_trees()} "
                  f"refreshes={refreshes[name]} "
                  f"flushes={view.stats.flushes} "
                  f"recomputes={view.stats.recomputes}")

        print("\nreading every view (deferred/threshold views flush now):")
        for name in db.views():
            xml = db.read(name)
            oracle = db.view(name).recompute()
            status = "consistent" if xml == oracle else "DIVERGED"
            print(f"  {name:10s} {len(xml):6d} chars  {status}")
            assert xml == oracle, name

        print("\nAll views match their recomputation oracles.")


if __name__ == "__main__":
    main()
