"""Incremental fusion of streamed XML (the Section 4.1 stream scenario).

XML arrives as stream units (here: person records appended to a feed); a
standing grouped query maintains its result by fusing each unit's
incrementally-computed fragments into the partial result via semantic
identifiers — exactly the view-maintenance machinery, driven by arrival.

Run:  python examples/stream_fusion.py
"""

from repro import (MaterializedXQueryView, StorageManager, UpdateRequest,
                   XmlDocument)
from repro.workloads import xmark

STANDING_QUERY = """<by-city>{
for $c in distinct-values(doc("feed.xml")/feed/person/address/city)
order by $c
return <city name="{$c}">{
 for $p in doc("feed.xml")/feed/person
 where $c = $p/address/city
 return <member>{$p/name}</member>
}</city>}</by-city>"""


def person_unit(index: int, city: str) -> str:
    return (f'<person id="s{index}"><name>Streamed {index}</name>'
            f'<address><street>{index} Stream Rd</street>'
            f'<city>{city}</city><country>X</country></address>'
            f'</person>')


def main() -> None:
    storage = StorageManager()
    # The stream starts empty: an empty feed document.
    storage.register(XmlDocument.from_string("feed.xml", "<feed/>"))
    view = MaterializedXQueryView(storage, STANDING_QUERY)
    view.materialize()
    print("standing query armed over an empty feed:", view.to_xml() or "()")

    cities = ["Lima", "Oslo", "Lima", "Tokyo", "Oslo", "Lima"]
    feed_root = storage.root_key("feed.xml")
    for index, city in enumerate(cities):
        # One stream unit arrives: append it to the feed and fuse.
        report = view.apply_updates([UpdateRequest.insert(
            "feed.xml", feed_root, person_unit(index, city), "into")])
        groups = view.to_xml().count("<city ")
        members = view.to_xml().count("<member>")
        print(f"unit {index} ({city:5s}) fused in "
              f"{report.total_seconds * 1000:6.2f} ms -> "
              f"{groups} groups / {members} members")
        assert view.to_xml() == view.recompute_xml(), "fusion diverged"

    print("\nfinal result:")
    print(view.to_xml())

    # Late correction: unit 3 turns out to be in Lima, not Tokyo.
    persons = storage.children(feed_root, "person")
    address = storage.children(persons[3], "address")[0]
    city = storage.children(address, "city")[0]
    view.apply_updates([UpdateRequest.modify("feed.xml", city, "Lima")])
    assert view.to_xml() == view.recompute_xml()
    assert "Tokyo" not in view.to_xml()
    print("\nlate correction re-routed the member; Tokyo group retracted.")


if __name__ == "__main__":
    main()
