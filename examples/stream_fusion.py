"""Incremental fusion of streamed XML (the Section 4.1 stream scenario).

XML arrives as stream units (here: person records appended to a feed); a
standing grouped query maintains its result by fusing each unit's
incrementally-computed fragments into the partial result via semantic
identifiers — exactly the view-maintenance machinery, driven by arrival.
Everything runs through the :class:`repro.api.Database` session API: the
feed is an ordinary document, each stream unit is a path-addressed
insert, and a count-based sliding window is nothing but a retraction
batch evicting the oldest units.  The standing query executes on the
compiled delta-plan VM; the EXPLAIN listing at the end shows the
instruction program each unit ran through.

Run:  python examples/stream_fusion.py
"""

from repro.api import Database

STANDING_QUERY = """<by-city>{
for $c in distinct-values(doc("feed.xml")/feed/person/address/city)
order by $c
return <city name="{$c}">{
 for $p in doc("feed.xml")/feed/person
 where $c = $p/address/city
 return <member>{$p/name}</member>
}</city>}</by-city>"""

#: the count-based sliding window: keep this many newest stream units
WINDOW = 4


def person_unit(index: int, city: str) -> str:
    return (f'<person id="s{index}"><name>Streamed {index}</name>'
            f'<address><street>{index} Stream Rd</street>'
            f'<city>{city}</city><country>X</country></address>'
            f'</person>')


def main() -> None:
    with Database() as db:
        # The stream starts empty: an empty feed document.
        db.load("feed.xml", "<feed/>")
        view = db.create_view("by-city", STANDING_QUERY)
        print("standing query armed over an empty feed:",
              view.read() or "()")
        db.subscribe("by-city", lambda event: print(
            f"  [refresh {event.sequence}: {event.reason}, "
            f"{event.delta_tuples} Δ tuples in "
            f"{event.duration_seconds * 1000:.2f} ms]"))

        cities = ["Lima", "Oslo", "Lima", "Tokyo", "Oslo", "Lima"]
        arrived = 0
        for index, city in enumerate(cities):
            # One stream unit arrives: append it to the feed and fuse.
            db.update("feed.xml").at("/feed") \
                .insert(person_unit(index, city), position="into")
            arrived += 1
            if arrived > WINDOW:
                # Window slides: evicting the oldest unit is an ordinary
                # retraction — the engine retracts its derivations.
                db.update("feed.xml").at("/feed/person[1]").delete()
                arrived -= 1
            groups = view.read().count("<city ")
            members = view.read().count("<member>")
            print(f"unit {index} ({city:5s}) fused -> "
                  f"{groups} groups / {members} members "
                  f"(window holds {arrived})")
            assert view.read() == view.recompute(), "fusion diverged"

        print("\nresult over the window:")
        print(view.read())

        # Late correction: unit 3 turns out to be in Lima, not Tokyo.
        # The unit already slid into position 2 of the window.
        db.update("feed.xml").at('/feed/person[@id="s3"]/address/city') \
            .replace_with("Lima")
        assert view.read() == view.recompute()
        assert "Tokyo" not in view.read()
        print("\nlate correction re-routed the member; "
              "Tokyo group retracted.")

        # The program every unit executed: the compiled delta plan.
        listing = db.explain("by-city")
        delta_plan = listing[listing.index("compiled plan [delta]"):]
        print("\n" + "\n".join(delta_plan.splitlines()[:6]))
        print("  ...")


if __name__ == "__main__":
    main()
