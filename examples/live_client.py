"""Live client: the serving layer end to end, over a real socket.

Boots a :class:`repro.server.ViewServer` on a background thread (a
standalone deployment would run ``python -m repro.server`` instead),
then drives it with two :class:`repro.server.ReproClient` sessions:

* a **writer** that applies the Fig 1.3 updates to bib.xml as
  wire-protocol batches;
* a **watcher** holding push subscriptions and consuming the delta
  frames — fused extent mutations with contiguous ``RefreshEvent``
  sequence numbers — re-reading only when a frame says ``reset`` (the
  engine recomputed, or backpressure coalesced).

Two views are served side by side to show both delivery shapes: a flat
``titles`` projection whose refreshes propagate as mutation records
(insert / remove / text), and the year-grouping join view of Fig 1.2,
where the same updates route through grouping and the engine may
answer with a ``reset`` frame instead.  Either way the sequence
numbers must arrive gap-free, and after every refresh the watcher's
view of the world is checked against a server-side read.

Run:  PYTHONPATH=src python examples/live_client.py
"""

from repro.api import Database
from repro.multiview import CostModel
from repro.server import ReproClient, start_in_thread
from repro.workloads.bib import BIB_XML, PRICES_XML, YEAR_GROUP_QUERY

TITLES_QUERY = ('<titles>{for $b in doc("bib.xml")/bib/book '
                'return $b/title}</titles>')

INSERT_FRESH_BOOK = ('for $b in document("bib.xml")/bib/book '
                     'where $b/title = "TCP/IP Illustrated" update $b '
                     'insert <book year="1994"><title>Fresh Book</title>'
                     '<author><last>Doe</last><first>Jan</first></author>'
                     '</book> after $b')

DELETE_DATA_ON_THE_WEB = '''
for $book in document("bib.xml")/bib/book
where $book/title = "Data on the Web"
update $book
delete $book'''

RENAME_FRESH_BOOK = '''
for $book in document("bib.xml")/bib/book
where $book/title = "Fresh Book"
update $book
replace $book/title with "Fresh Book, 2nd ed."'''


class NeverRecompute(CostModel):
    """Pin the maintenance choice so every titles refresh pushes a
    delta — the default model may flip tiny views to recomputation,
    which is correct but makes a delta-payload demo anticlimactic."""

    def choose(self, view, batch_size):   # noqa: ARG002
        return "propagate"


def watch(subscription, client, expected_sequence: int) -> None:
    """Consume one delta frame; print what a mirror would do with it."""
    frame = subscription.get(timeout=10)
    assert frame["sequence"] == expected_sequence, \
        f"gap! expected {expected_sequence}, got {frame['sequence']}"
    view = frame["view"]
    if frame.get("reset"):
        # Recompute or coalesced: the mirror is stale; re-read once.
        print(f"  [{view}] seq {frame['sequence']}: reset "
              f"({frame['reason']}) — re-read the view")
    else:
        print(f"  [{view}] seq {frame['sequence']}: "
              f"{len(frame['mutations'])} mutation record(s) "
              f"({frame['reason']})")
        for record in frame["mutations"]:
            target = record.get("path") or record["parent"]
            brief = record.get("text") or record.get("xml") or ""
            print(f"    {record['op']:7s} at {target}  {brief[:60]}")
    # A real mirror applies the records to its own extent copy; here a
    # server-side read stands in as the oracle either way.
    print(f"    extent now: {client.read(view)['xml'][:70]}...")


def main() -> None:
    # The database this server owns.  The titles view is created here,
    # before serving, only to pin its cost model; a vanilla deployment
    # would create views over the wire or via ``--view``.
    db = Database()
    db.load("bib.xml", BIB_XML).load("prices.xml", PRICES_XML)
    db.create_view("titles", TITLES_QUERY,
                   cost_model=NeverRecompute())

    with start_in_thread(db, own_db=True, http_port=0) as handle:
        print(f"server on {handle.host}:{handle.port} "
              f"(metrics on http port {handle.http_port})")

        with ReproClient(handle.host, handle.port) as writer, \
                ReproClient(handle.host, handle.port) as watcher:
            writer.create_view("by_year", YEAR_GROUP_QUERY)

            titles_sub = watcher.subscribe("titles")    # mode=coalesce
            year_sub = watcher.subscribe("by_year")
            print("\n== baseline ==")
            print(watcher.read("titles")["xml"])
            print(watcher.read("by_year")["xml"])

            # Fig 1.3-style updates, each a wire batch → one refresh
            # per view per batch.
            batches = [[INSERT_FRESH_BOOK],
                       [DELETE_DATA_ON_THE_WEB],
                       [RENAME_FRESH_BOOK]]
            for sequence, statements in enumerate(batches, start=1):
                reply = writer.update(statements)
                print(f"\napplied_index {reply['applied_index']}: "
                      f"{len(statements)} statement(s)")
                watch(titles_sub, watcher, sequence)
                watch(year_sub, watcher, sequence)

            print("\n== final extents ==")
            print(writer.read("titles")["xml"])
            print(writer.read("by_year")["xml"])
            print("\nexplain over the wire:")
            print(writer.explain("titles"))

            snapshot = watcher.metrics()
            frames_out = snapshot["server_frames_out"]["values"][""]
            print(f"\nserver wrote {int(frames_out)} frames; "
                  f"{len(batches)} refreshes per view, gap-free.")

            titles_sub.cancel()
            year_sub.cancel()


if __name__ == "__main__":
    main()
