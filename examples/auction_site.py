"""Auction-site dashboard: a grouped view maintained under an update stream.

An XMark-like auction site keeps a materialized "persons by city" dashboard
(the Chapter 9 grouped view).  People register, move away, and close
auctions; every change is propagated incrementally — groups appear, grow
and disappear without recomputing the dashboard.

Run:  python examples/auction_site.py
"""

import time

from repro import MaterializedXQueryView, StorageManager, UpdateRequest
from repro.workloads import xmark


def person_keys(storage):
    return storage.find_by_path(
        "site.xml",
        [("child", "site"), ("child", "people"), ("child", "person")])


def main() -> None:
    storage = StorageManager()
    xmark.register_site(storage, num_persons=40, seed=3)
    view = MaterializedXQueryView(storage, xmark.PERSONS_BY_CITY_QUERY)
    view.materialize()
    print(f"dashboard materialized: {view.extent_size()} extent nodes, "
          f"{view.to_xml().count('<city-group')} city groups")

    # -- a newcomer in a brand-new city: a group appears -----------------------
    anchors = person_keys(storage)
    report = view.apply_updates([UpdateRequest.insert(
        "site.xml", anchors[-1],
        xmark.new_person_xml(1, city="Reykjavik"), "after")])
    assert 'name="Reykjavik"' in view.to_xml()
    print(f"+ newcomer in Reykjavik: group created "
          f"({report.total_seconds * 1000:.2f} ms, "
          f"{report.fusion.inserted} nodes inserted)")

    # -- five more registrations across existing cities -------------------------
    batch = [UpdateRequest.insert(
        "site.xml", person_keys(storage)[-1],
        xmark.new_person_xml(10 + i, city=xmark.CITIES[i]), "after")
        for i in range(5)]
    report = view.apply_updates(batch)
    print(f"+ batch of 5 registrations: one delta pass "
          f"(batches={report.batches}, "
          f"{report.total_seconds * 1000:.2f} ms)")
    assert view.to_xml() == view.recompute_xml()

    # -- someone moves: a join-path modify travels as a retract/assert pair -----
    mover = person_keys(storage)[0]
    address = storage.children(mover, "address")[0]
    city = storage.children(address, "city")[0]
    report = view.apply_updates([UpdateRequest.modify(
        "site.xml", city, "Reykjavik")])
    print(f"~ person moved to Reykjavik: first-class modify pair "
          f"(accepted={report.accepted}, batches={report.batches})")
    assert view.to_xml() == view.recompute_xml()

    # -- the Reykjavik crowd leaves: the whole group fragment is disconnected ---
    leavers = []
    for person in person_keys(storage):
        addr = storage.children(person, "address")[0]
        if storage.text(storage.children(addr, "city")[0]) == "Reykjavik":
            leavers.append(UpdateRequest.delete("site.xml", person))
    report = view.apply_updates(leavers)
    assert 'name="Reykjavik"' not in view.to_xml()
    print(f"- {len(leavers)} departures: Reykjavik group removed at its "
          f"root ({report.fusion.removed_roots} disconnects, "
          f"{report.fusion.removed_nodes} nodes gone, apply phase "
          f"{report.apply_seconds * 1000:.2f} ms)")
    assert view.to_xml() == view.recompute_xml()

    # -- compare one more incremental round against recomputation ---------------
    start = time.perf_counter()
    view.recompute_xml()
    recompute = time.perf_counter() - start
    report = view.apply_updates([UpdateRequest.insert(
        "site.xml", person_keys(storage)[-1],
        xmark.new_person_xml(99, city="Oslo"), "after")])
    print(f"incremental {report.total_seconds * 1000:.2f} ms vs "
          f"recompute {recompute * 1000:.2f} ms")
    print("dashboard consistent with recomputation at every step.")


if __name__ == "__main__":
    main()
