"""A named XML document: a root element plus its document name."""

from __future__ import annotations

from .node import XmlNode
from .parser import parse_document
from .serializer import serialize


class XmlDocument:
    """A source XML document identified by name (e.g. ``"bib.xml"``)."""

    def __init__(self, name: str, root: XmlNode):
        if not root.is_element:
            raise ValueError("document root must be an element")
        self.name = name
        self.root = root

    @classmethod
    def from_string(cls, name: str, text: str) -> "XmlDocument":
        return cls(name, parse_document(text))

    def to_string(self, indent: int | None = None) -> str:
        return serialize(self.root, indent=indent)

    def node_count(self) -> int:
        return self.root.subtree_size()

    def __repr__(self) -> str:
        return f"XmlDocument({self.name!r}, {self.node_count()} nodes)"
