"""In-memory XML node model.

Nodes are plain trees; FlexKeys are assigned by the storage manager when a
document (or update fragment) is registered, never by the nodes themselves.
Every node carries a *count annotation* (Chapter 6): the number of
derivations of the node, ``1`` for ordinary source nodes, negative for nodes
inside delete-update trees.
"""

from __future__ import annotations

from typing import Iterator, Optional

ELEMENT = "element"
TEXT = "text"


class XmlNode:
    """One XML node: an element (with attributes and children) or a text node.

    Attributes are stored inline on elements as an ordered ``dict`` — the
    paper's query subset only ever reads attribute *values* (``@year``),
    never treats attributes as independently ordered siblings.
    """

    __slots__ = ("kind", "tag", "value", "attributes", "children", "parent",
                 "key", "count")

    def __init__(self, kind: str, tag: Optional[str] = None,
                 value: Optional[str] = None):
        if kind not in (ELEMENT, TEXT):
            raise ValueError(f"unknown node kind {kind!r}")
        self.kind = kind
        self.tag = tag
        self.value = value
        self.attributes: dict[str, str] = {}
        self.children: list["XmlNode"] = []
        self.parent: Optional["XmlNode"] = None
        self.key = None  # FlexKey, set by the storage manager
        self.count = 1

    # -- constructors -----------------------------------------------------------

    @classmethod
    def element(cls, tag: str, attributes: Optional[dict[str, str]] = None,
                children: Optional[list["XmlNode"]] = None) -> "XmlNode":
        node = cls(ELEMENT, tag=tag)
        if attributes:
            node.attributes.update(attributes)
        for child in children or []:
            node.append(child)
        return node

    @classmethod
    def text(cls, value: str) -> "XmlNode":
        return cls(TEXT, value=value)

    # -- predicates -------------------------------------------------------------

    @property
    def is_element(self) -> bool:
        return self.kind == ELEMENT

    @property
    def is_text(self) -> bool:
        return self.kind == TEXT

    # -- tree editing -----------------------------------------------------------

    def append(self, child: "XmlNode") -> "XmlNode":
        child.parent = self
        self.children.append(child)
        return child

    def insert(self, index: int, child: "XmlNode") -> "XmlNode":
        child.parent = self
        self.children.insert(index, child)
        return child

    def remove(self, child: "XmlNode") -> None:
        self.children.remove(child)
        child.parent = None

    def detach(self) -> "XmlNode":
        if self.parent is not None:
            self.parent.remove(self)
        return self

    # -- traversal --------------------------------------------------------------

    def iter_subtree(self) -> Iterator["XmlNode"]:
        """This node and all descendants, in document order (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def element_children(self, tag: Optional[str] = None) -> list["XmlNode"]:
        return [c for c in self.children
                if c.is_element and (tag is None or c.tag == tag)]

    def descendants(self, tag: Optional[str] = None) -> list["XmlNode"]:
        """Proper descendants in document order, optionally filtered by tag."""
        result = []
        for node in self.iter_subtree():
            if node is self:
                continue
            if node.is_element and (tag is None or node.tag == tag):
                result.append(node)
        return result

    def text_value(self) -> str:
        """Concatenated text content of the subtree (document order)."""
        if self.is_text:
            return self.value or ""
        parts = []
        for node in self.iter_subtree():
            if node.is_text and node.value:
                parts.append(node.value)
        return "".join(parts)

    def subtree_size(self) -> int:
        return sum(1 for _ in self.iter_subtree())

    # -- copying ----------------------------------------------------------------

    def deep_copy(self) -> "XmlNode":
        """Structural copy without keys (keys are storage-assigned)."""
        clone = XmlNode(self.kind, tag=self.tag, value=self.value)
        clone.attributes.update(self.attributes)
        clone.count = self.count
        for child in self.children:
            clone.append(child.deep_copy())
        return clone

    def structure_equal(self, other: "XmlNode") -> bool:
        """Deep equality of tag/attrs/text/children order (keys ignored)."""
        if (self.kind, self.tag, self.value) != (other.kind, other.tag, other.value):
            return False
        if self.attributes != other.attributes:
            return False
        if len(self.children) != len(other.children):
            return False
        return all(a.structure_equal(b)
                   for a, b in zip(self.children, other.children))

    def __repr__(self) -> str:
        if self.is_text:
            return f"Text({self.value!r})"
        key = f" key={self.key}" if self.key is not None else ""
        return f"<{self.tag}{key} children={len(self.children)}>"
