"""XML data model, parser, and serializer (Section 2.2.1)."""

from .node import ELEMENT, TEXT, XmlNode
from .document import XmlDocument
from .parser import XmlParseError, parse_document, parse_fragment
from .serializer import serialize, serialize_fragment

__all__ = [
    "ELEMENT",
    "TEXT",
    "XmlDocument",
    "XmlNode",
    "XmlParseError",
    "parse_document",
    "parse_fragment",
    "serialize",
    "serialize_fragment",
]
