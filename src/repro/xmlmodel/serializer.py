"""Serialization of :class:`XmlNode` trees back to XML text."""

from __future__ import annotations

from .node import XmlNode


def _escape_text(value: str) -> str:
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace(">", "&gt;"))


def _escape_attr(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")


def serialize(node: XmlNode, indent: int | None = None) -> str:
    """Serialize a node subtree.

    ``indent=None`` produces compact output; an integer pretty-prints with
    that many spaces per level.
    """
    parts: list[str] = []
    _write(node, parts, indent, 0)
    return "".join(parts)


def serialize_fragment(nodes: list[XmlNode], indent: int | None = None) -> str:
    parts: list[str] = []
    for i, node in enumerate(nodes):
        if indent is not None and i > 0:
            parts.append("\n")
        _write(node, parts, indent, 0)
    return "".join(parts)


def _write(node: XmlNode, parts: list[str], indent: int | None,
           depth: int) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    newline = "" if indent is None else "\n"
    if node.is_text:
        parts.append(pad + _escape_text(node.value or ""))
        return
    attrs = "".join(f' {name}="{_escape_attr(value)}"'
                    for name, value in node.attributes.items())
    if not node.children:
        parts.append(f"{pad}<{node.tag}{attrs}/>")
        return
    only_text = all(child.is_text for child in node.children)
    if only_text:
        text = "".join(_escape_text(child.value or "")
                       for child in node.children)
        parts.append(f"{pad}<{node.tag}{attrs}>{text}</{node.tag}>")
        return
    parts.append(f"{pad}<{node.tag}{attrs}>{newline}")
    for i, child in enumerate(node.children):
        _write(child, parts, indent, depth + 1)
        parts.append(newline)
    parts.append(f"{pad}</{node.tag}>")
