"""A small, dependency-free XML parser producing :class:`XmlNode` trees.

Covers the subset the paper's documents use: elements, attributes, text,
comments, processing instructions (skipped), CDATA, and the five predefined
entities.  Pure-whitespace text between elements is dropped (data-centric
whitespace handling, matching the Rainbow engine's loader).
"""

from __future__ import annotations

from .node import XmlNode


class XmlParseError(ValueError):
    """Raised on malformed XML input."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}


def parse_document(text: str) -> XmlNode:
    """Parse an XML document string, returning the root element."""
    parser = _Parser(text)
    return parser.parse()


def parse_fragment(text: str) -> list[XmlNode]:
    """Parse a sequence of top-level elements/text (an XML fragment)."""
    parser = _Parser(text)
    return parser.parse_content_until_end()


class _Parser:
    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._len = len(text)

    # -- public entry points -----------------------------------------------------

    def parse(self) -> XmlNode:
        self._skip_misc()
        root = self._parse_element()
        self._skip_misc()
        if self._pos != self._len:
            raise XmlParseError("trailing content after document element",
                                self._pos)
        return root

    def parse_content_until_end(self) -> list[XmlNode]:
        nodes = self._parse_content(stop_tag=None)
        if self._pos != self._len:
            raise XmlParseError("unparsed trailing content", self._pos)
        return nodes

    # -- lexical helpers -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self._pos + offset
        return self._text[idx] if idx < self._len else ""

    def _starts_with(self, token: str) -> bool:
        return self._text.startswith(token, self._pos)

    def _expect(self, token: str) -> None:
        if not self._starts_with(token):
            raise XmlParseError(f"expected {token!r}", self._pos)
        self._pos += len(token)

    def _skip_ws(self) -> None:
        while self._pos < self._len and self._text[self._pos] in " \t\r\n":
            self._pos += 1

    def _skip_misc(self) -> None:
        """Skip whitespace, XML declarations, PIs, comments, DOCTYPE."""
        while True:
            self._skip_ws()
            if self._starts_with("<?"):
                end = self._text.find("?>", self._pos)
                if end < 0:
                    raise XmlParseError("unterminated processing instruction",
                                        self._pos)
                self._pos = end + 2
            elif self._starts_with("<!--"):
                end = self._text.find("-->", self._pos)
                if end < 0:
                    raise XmlParseError("unterminated comment", self._pos)
                self._pos = end + 3
            elif self._starts_with("<!DOCTYPE"):
                end = self._text.find(">", self._pos)
                if end < 0:
                    raise XmlParseError("unterminated DOCTYPE", self._pos)
                self._pos = end + 1
            else:
                return

    def _parse_name(self) -> str:
        start = self._pos
        while self._pos < self._len:
            ch = self._text[self._pos]
            if ch.isalnum() or ch in "_-.:":
                self._pos += 1
            else:
                break
        if self._pos == start:
            raise XmlParseError("expected a name", self._pos)
        return self._text[start:self._pos]

    def _decode_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        out: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            end = raw.find(";", i)
            if end < 0:
                raise XmlParseError("unterminated entity reference", self._pos)
            name = raw[i + 1:end]
            if name.startswith("#x") or name.startswith("#X"):
                out.append(chr(int(name[2:], 16)))
            elif name.startswith("#"):
                out.append(chr(int(name[1:])))
            elif name in _ENTITIES:
                out.append(_ENTITIES[name])
            else:
                raise XmlParseError(f"unknown entity &{name};", self._pos)
            i = end + 1
        return "".join(out)

    # -- grammar ------------------------------------------------------------------

    def _parse_element(self) -> XmlNode:
        self._expect("<")
        tag = self._parse_name()
        node = XmlNode.element(tag)
        while True:
            self._skip_ws()
            ch = self._peek()
            if ch == ">":
                self._pos += 1
                break
            if self._starts_with("/>"):
                self._pos += 2
                return node
            attr = self._parse_name()
            self._skip_ws()
            self._expect("=")
            self._skip_ws()
            quote = self._peek()
            if quote not in ("'", '"'):
                raise XmlParseError("expected quoted attribute value", self._pos)
            self._pos += 1
            end = self._text.find(quote, self._pos)
            if end < 0:
                raise XmlParseError("unterminated attribute value", self._pos)
            node.attributes[attr] = self._decode_entities(
                self._text[self._pos:end])
            self._pos = end + 1
        for child in self._parse_content(stop_tag=tag):
            node.append(child)
        return node

    def _parse_content(self, stop_tag: str | None) -> list[XmlNode]:
        nodes: list[XmlNode] = []
        while self._pos < self._len:
            if self._starts_with("</"):
                if stop_tag is None:
                    raise XmlParseError("unexpected close tag", self._pos)
                self._pos += 2
                name = self._parse_name()
                if name != stop_tag:
                    raise XmlParseError(
                        f"mismatched close tag </{name}> for <{stop_tag}>",
                        self._pos)
                self._skip_ws()
                self._expect(">")
                return nodes
            if self._starts_with("<!--"):
                end = self._text.find("-->", self._pos)
                if end < 0:
                    raise XmlParseError("unterminated comment", self._pos)
                self._pos = end + 3
                continue
            if self._starts_with("<![CDATA["):
                end = self._text.find("]]>", self._pos)
                if end < 0:
                    raise XmlParseError("unterminated CDATA", self._pos)
                nodes.append(XmlNode.text(self._text[self._pos + 9:end]))
                self._pos = end + 3
                continue
            if self._starts_with("<?"):
                end = self._text.find("?>", self._pos)
                if end < 0:
                    raise XmlParseError("unterminated PI", self._pos)
                self._pos = end + 2
                continue
            if self._peek() == "<":
                nodes.append(self._parse_element())
                continue
            end = self._text.find("<", self._pos)
            if end < 0:
                end = self._len
            raw = self._text[self._pos:end]
            self._pos = end
            decoded = self._decode_entities(raw)
            if decoded.strip():
                nodes.append(XmlNode.text(decoded.strip()))
        if stop_tag is not None:
            raise XmlParseError(f"unterminated element <{stop_tag}>", self._pos)
        return nodes
