"""repro — Incremental Maintenance of Materialized XQuery Views.

A from-scratch Python reproduction of El-Sayed's ICDE 2006 system (full
version: WPI PhD dissertation, 2005): an XQuery engine over the XAT algebra
with FlexKey order encoding and semantic identifiers, plus the V-P-A
(Validate / Propagate / Apply) incremental view maintenance framework.

Quickstart::

    from repro import (MaterializedXQueryView, StorageManager, UpdateRequest,
                       XmlDocument)

    storage = StorageManager()
    storage.register(XmlDocument.from_string("bib.xml", "<bib>...</bib>"))
    view = MaterializedXQueryView(storage, '<r>{for $b in '
                                  'doc("bib.xml")/bib/book return $b}</r>')
    print(view.materialize())
    book = storage.find_by_path("bib.xml", [("child", "bib"),
                                            ("child", "book")])[0]
    view.apply_updates([UpdateRequest.delete("bib.xml", book)])
    assert view.to_xml() == view.recompute_xml()
"""

from .engine import Engine
from .flexkeys import FlexKey
from .multiview import (CostModel, MaintenancePolicy, MultiViewReport,
                        ViewRegistry)
from .storage import StorageManager
from .translate import TranslationError, Translator, translate_query
from .updates import Sapt, UpdateRequest, UpdateTree
from .view import MaintenanceReport, MaterializedXQueryView
from .xat import Profiler
from .xmlmodel import XmlDocument, XmlNode, parse_document, parse_fragment, \
    serialize
from .xquery import parse_query
from .xquery.updates import apply_xquery_update, parse_update

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "Engine",
    "FlexKey",
    "MaintenancePolicy",
    "MaintenanceReport",
    "MaterializedXQueryView",
    "MultiViewReport",
    "Profiler",
    "Sapt",
    "StorageManager",
    "TranslationError",
    "Translator",
    "UpdateRequest",
    "UpdateTree",
    "ViewRegistry",
    "XmlDocument",
    "XmlNode",
    "apply_xquery_update",
    "parse_document",
    "parse_fragment",
    "parse_query",
    "parse_update",
    "serialize",
    "translate_query",
]
