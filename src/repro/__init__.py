"""repro — Incremental Maintenance of Materialized XQuery Views.

A from-scratch Python reproduction of El-Sayed's ICDE 2006 system (full
version: WPI PhD dissertation, 2005): an XQuery engine over the XAT algebra
with FlexKey order encoding and semantic identifiers, plus the V-P-A
(Validate / Propagate / Apply) incremental view maintenance framework.

Quickstart (the recommended session API — see :mod:`repro.api`)::

    from repro import Database

    with Database() as db:
        db.load("bib.xml", "<bib>...</bib>")
        view = db.create_view("books", '<r>{for $b in '
                              'doc("bib.xml")/bib/book return $b}</r>')
        db.update("bib.xml").at("/bib/book[1]").delete()
        assert view.read() == view.recompute()

The per-layer surface (:class:`StorageManager`,
:class:`MaterializedXQueryView`, :class:`ViewRegistry`, raw
:class:`UpdateRequest`\\ s) stays available for engine-level work.
"""

from . import obs
from .api import Batch, Database, Subscription, Update, View
from .durability import DurabilityManager, RecoveryReport
from .engine import Engine
from .flexkeys import FlexKey
from .multiview import (CostModel, MaintenancePolicy, MultiViewReport,
                        RefreshEvent, ViewRegistry)
from .storage import StorageManager
from .translate import TranslationError, Translator, translate_query
from .updates import Sapt, UpdateError, UpdateRequest, UpdateTree
from .view import MaintenanceReport, MaterializedXQueryView
from .xat import Profiler
from .xmlmodel import XmlDocument, XmlNode, parse_document, parse_fragment, \
    serialize
from .xquery import parse_query
from .xquery.updates import apply_xquery_update, parse_update, resolve_path

__version__ = "1.1.0"

__all__ = [
    "Batch",
    "CostModel",
    "Database",
    "DurabilityManager",
    "Engine",
    "FlexKey",
    "MaintenancePolicy",
    "MaintenanceReport",
    "MaterializedXQueryView",
    "MultiViewReport",
    "Profiler",
    "RecoveryReport",
    "RefreshEvent",
    "Sapt",
    "StorageManager",
    "Subscription",
    "TranslationError",
    "Translator",
    "Update",
    "UpdateError",
    "UpdateRequest",
    "UpdateTree",
    "View",
    "ViewRegistry",
    "XmlDocument",
    "XmlNode",
    "apply_xquery_update",
    "obs",
    "parse_document",
    "parse_fragment",
    "parse_query",
    "parse_update",
    "resolve_path",
    "serialize",
    "translate_query",
]
