"""Incremental structural index over FlexKey-addressed storage.

The FlexKey design (Section 3.3, after the MASS keys of [DR03]) makes a
node's subtree a *contiguous lexicographic range* of key strings: every
descendant of ``k`` sorts inside ``[k + "." , k + "/")`` — the level
separator ``"."`` is smaller than every atom character and ``"/"`` is its
successor, so the half-open range covers exactly the proper descendants.
:class:`StructuralIndex` exploits this with three structures:

* **per-document, per-tag sorted key lists** in document order, so
  ``descendants(key, tag)`` is a binary search plus a slice instead of a
  subtree walk (and ``children`` the same scan filtered by depth);
* a **key-interning map** from key string to a single :class:`FlexKey`
  instance whose parsed-atom tuple and order token are memoized, so range
  results never re-parse key strings;
* a **root-to-node tag-path cache** consulted by the SAPT validator and
  the multi-view router — keys are never relabeled and element tags never
  change, so a cached path stays valid for the node's whole lifetime.

The index is maintained *incrementally* by the
:class:`~repro.storage.manager.StorageManager` mutation entry points —
the same points that drive its listener notifications — so upkeep cost is
proportional to the update size, never the document size.  (It hooks the
mutation points directly rather than the public listener API because
delete notifications carry only the subtree root after the keys are
already dropped, and ``replace_text`` suppresses its internal
sub-operations.)
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Optional

from ..flexkeys import LEVEL_SEP, FlexKey
from ..xmlmodel import XmlNode

#: Exclusive upper bound of a subtree's key range: the character after the
#: level separator, smaller than every atom character.
_RANGE_END = chr(ord(LEVEL_SEP) + 1)


class StructuralIndex:
    """Sorted-key-range index maintained alongside a ``StorageManager``."""

    __slots__ = ("_tag_lists", "_all_lists", "_interned", "_tag_paths",
                 "_path_interner", "range_scans", "walk_fallbacks",
                 "path_lookups")

    def __init__(self):
        # Always-on monotone activity counters (plain int adds — the
        # observability layer pulls them into metric snapshots): range
        # scans answered by the sorted key lists, walk fallbacks where
        # the tree walk was judged cheaper, and exact-path lookups.
        self.range_scans = 0
        self.walk_fallbacks = 0
        self.path_lookups = 0
        # (document, tag) -> sorted list of element key strings
        self._tag_lists: dict[tuple[str, str], list[str]] = {}
        # document -> sorted list of *all* element key strings
        self._all_lists: dict[str, list[str]] = {}
        # key string -> the one interned FlexKey (memoized atoms/order)
        self._interned: dict[str, FlexKey] = {}
        # key string -> root-to-node element tag path
        self._tag_paths: dict[str, tuple[str, ...]] = {}
        # tag path -> the one interned tuple: stored paths are canonical
        # instances, so path equality checks collapse to identity tests
        self._path_interner: dict[tuple[str, ...], tuple[str, ...]] = {}

    # -- incremental maintenance ---------------------------------------------------

    def add_node(self, document: str, key: FlexKey, node: XmlNode,
                 parent_tags: tuple[str, ...]) -> tuple[str, ...]:
        """Index one newly-keyed node; returns its root-to-node tag path.

        Registration assigns keys in document order, so the ``insort``
        calls append at the end of each list; mid-document inserts pay one
        binary search plus one list shift per indexed node.
        """
        value = key.value
        self._interned[value] = key
        if node.is_element:
            tags = parent_tags + (node.tag,)
            tags = self._path_interner.setdefault(tags, tags)
            insort(self._all_lists.setdefault(document, []), value)
            insort(self._tag_lists.setdefault((document, node.tag), []),
                   value)
        else:
            tags = parent_tags
        self._tag_paths[value] = tags
        return tags

    def remove_node(self, document: str, key: FlexKey,
                    node: XmlNode) -> None:
        """Drop one node's entries (called once per node of a deleted
        subtree, during the same walk that releases its keys)."""
        value = key.value
        self._interned.pop(value, None)
        self._tag_paths.pop(value, None)
        if node.is_element:
            _discard_sorted(self._all_lists.get(document), value)
            _discard_sorted(self._tag_lists.get((document, node.tag)),
                            value)

    # -- range queries ----------------------------------------------------------------

    def _list_for(self, document: str,
                  tag: Optional[str]) -> Optional[list[str]]:
        if tag is None:
            return self._all_lists.get(document)
        return self._tag_lists.get((document, tag))

    def descendants(self, document: str, key: FlexKey,
                    tag: Optional[str] = None) -> list[FlexKey]:
        """Proper element descendants of ``key`` in document order: one
        binary search over the ``[key., key/)`` prefix range."""
        self.range_scans += 1
        keys = self._list_for(document, tag)
        if not keys:
            return []
        value = key.value
        lo = bisect_left(keys, value + LEVEL_SEP)
        hi = bisect_left(keys, value + _RANGE_END, lo)
        interned = self._interned
        return [interned[v] for v in keys[lo:hi]]

    def children(self, document: str, key: FlexKey, tag: str,
                 child_count: int) -> Optional[list[FlexKey]]:
        """Element children of ``key`` with ``tag``, or ``None`` when the
        child list itself is the cheaper scan.

        The tag's descendant range filtered to exactly one level below
        (keys never compose in storage, so depth is the level-separator
        count) beats walking the child list only when it is *narrower*
        than the child list — a selective tag under a wide node.  The
        caller passes the node's child count and falls back to the tree
        walk on ``None``.
        """
        keys = self._list_for(document, tag)
        if not keys:
            self.range_scans += 1
            return []
        value = key.value
        lo = bisect_left(keys, value + LEVEL_SEP)
        hi = bisect_left(keys, value + _RANGE_END, lo)
        if hi - lo >= child_count:
            self.walk_fallbacks += 1
            return None
        self.range_scans += 1
        child_seps = value.count(LEVEL_SEP) + 1
        interned = self._interned
        return [interned[v] for v in keys[lo:hi]
                if v.count(LEVEL_SEP) == child_seps]

    def path_nodes(self, document: str,
                   tags: tuple[str, ...]) -> list[FlexKey]:
        """Elements whose root-to-node tag path equals ``tags`` exactly —
        the answer to a child-step-only location path in one pass.

        Walk-based child navigation touches every frontier node's child
        list level by level; here the final tag's sorted key list is
        filtered by the cached (interned) tag path, so each candidate
        costs one dict lookup plus one identity test, and an unseen path
        is answered negatively without touching any node at all.
        """
        self.path_lookups += 1
        interned_path = self._path_interner.get(tags)
        if interned_path is None:
            return []  # no live node has this path
        keys = self._tag_lists.get((document, tags[-1]))
        if not keys:
            return []
        tag_paths = self._tag_paths
        interned = self._interned
        return [interned[value] for value in keys
                if tag_paths[value] is interned_path]

    # -- caches ------------------------------------------------------------------------

    def tag_path(self, value: str) -> Optional[tuple[str, ...]]:
        """The cached root-to-node tag path for a live key string."""
        return self._tag_paths.get(value)

    def intern(self, key: FlexKey) -> FlexKey:
        """The canonical instance for ``key`` (itself when not indexed)."""
        return self._interned.get(key.value, key)

    # -- introspection -----------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "interned_keys": len(self._interned),
            "tag_lists": len(self._tag_lists),
            "documents": len(self._all_lists),
            "indexed_elements": sum(len(v) for v in
                                    self._all_lists.values()),
            "range_scans": self.range_scans,
            "walk_fallbacks": self.walk_fallbacks,
            "path_lookups": self.path_lookups,
        }


def _discard_sorted(keys: Optional[list[str]], value: str) -> None:
    if not keys:
        return
    idx = bisect_left(keys, value)
    if idx < len(keys) and keys[idx] == value:
        del keys[idx]
