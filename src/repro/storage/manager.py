"""Storage manager: FlexKey-addressed XML store (the paper's MASS substitute).

Provides the interface contract the paper's engine relies on (Section 3.3):

* every node of a registered document carries a FlexKey encoding its unique
  root-to-node path and its document order;
* descendants of any node are retrievable in document order;
* updates (insert / delete / replace) never relabel existing keys — inserted
  fragments receive fresh keys strictly between their neighbours'.

The real MASS system is a disk-based index; this in-memory implementation
preserves the same observable behaviour, which is all the view-maintenance
algorithms depend on.

Navigation (``children`` / ``descendants`` / ``find_by_path``) runs
through an incrementally-maintained :class:`~repro.storage.index.
StructuralIndex` by default: a subtree is a contiguous lexicographic
FlexKey range, so descendant retrieval is a binary search instead of a
tree walk.  The walk-based implementations stay available as
``*_unindexed`` methods (and as the only path when constructed with
``indexed=False``) for correctness diffing and benchmarking.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..flexkeys import FlexKey, atom_for_insert, sibling_atom
from ..xmlmodel import XmlDocument, XmlNode
from .index import StructuralIndex


class StorageError(KeyError):
    """Raised for unknown documents/keys or malformed update requests."""


class StorageManager:
    """Holds all registered source documents and resolves FlexKeys to nodes."""

    def __init__(self, indexed: bool = True):
        self._documents: dict[str, XmlDocument] = {}
        self._roots: dict[str, FlexKey] = {}
        self._nodes: dict[FlexKey, XmlNode] = {}
        self._doc_of_root_atom: dict[str, str] = {}
        self._listeners: list = []
        self._mutation_listeners: list = []
        self._notify_depth = 0
        self._index: Optional[StructuralIndex] = (
            StructuralIndex() if indexed else None)

    @property
    def indexed(self) -> bool:
        return self._index is not None

    @property
    def index(self) -> Optional[StructuralIndex]:
        return self._index

    # -- update notification --------------------------------------------------------

    def add_listener(self, listener) -> None:
        """Subscribe ``listener(op, key)`` to storage mutations.

        ``op`` is one of ``"insert"``, ``"delete"``, ``"modify"``; ``key``
        is the affected node's FlexKey.  Each user-level update primitive
        notifies exactly once (internal sub-operations are suppressed), so
        listeners can count how often an update stream hits storage — the
        multi-view registry uses this to assert that updates irrelevant to
        every view touch storage exactly once.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        """Unsubscribe ``listener``; a no-op when it is not subscribed
        (``discard`` semantics, so double-close is safe everywhere)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def add_mutation_listener(self, listener) -> None:
        """Subscribe ``listener(op, key, tag_path)`` to storage mutations.

        The richer sibling of :meth:`add_listener`: each notification also
        carries the mutated node's root-to-node element tag path, captured
        *before* deletions drop the subtree's keys — so invalidation
        machinery (the operator-state store) can still classify a deletion
        against its access paths after the nodes are gone.
        """
        self._mutation_listeners.append(listener)

    def remove_mutation_listener(self, listener) -> None:
        """Unsubscribe (no-op when absent — discard semantics)."""
        try:
            self._mutation_listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, op: str, key: FlexKey,
                tags: Optional[tuple] = None) -> None:
        if self._notify_depth:
            return
        for listener in self._listeners:
            listener(op, key)
        if self._mutation_listeners:
            if tags is None:
                tags = self.tag_path(key)
            for listener in list(self._mutation_listeners):
                listener(op, key, tags)

    # -- registration --------------------------------------------------------------

    def register(self, document: XmlDocument) -> FlexKey:
        """Register a document, assigning FlexKeys to its whole tree."""
        if document.name in self._documents:
            raise StorageError(f"document {document.name!r} already registered")
        root_key = FlexKey(sibling_atom(len(self._documents)))
        self._documents[document.name] = document
        self._roots[document.name] = root_key
        self._doc_of_root_atom[root_key.value] = document.name
        self._assign_keys(document.root, root_key, document.name, ())
        return root_key

    def restore_document(self, document: XmlDocument,
                         root_key: FlexKey) -> None:
        """Re-adopt a checkpointed document whose nodes already carry
        their FlexKeys (the recovery path).

        Keys are **not** reassigned: WAL-tail records address nodes by
        the keys the live run handed out, and re-registering from text
        would relabel fragment-inserted nodes (``sibling_atom(index)``
        enumeration vs the ``atom_for_insert`` keys they actually got).
        The structural index is restored separately by the caller — its
        pickled form already holds every entry this walk would insort.
        """
        if document.name in self._documents:
            raise StorageError(
                f"document {document.name!r} already registered")
        self._documents[document.name] = document
        self._roots[document.name] = root_key
        self._doc_of_root_atom[root_key.value] = document.name
        stack = [document.root]
        while stack:
            node = stack.pop()
            self._nodes[node.key] = node
            stack.extend(node.children)

    def _assign_keys(self, node: XmlNode, key: FlexKey, document: str,
                     parent_tags: tuple[str, ...]) -> None:
        node.key = key
        self._nodes[key] = node
        if self._index is not None:
            tags = self._index.add_node(document, key, node, parent_tags)
        else:
            tags = parent_tags
        for index, child in enumerate(node.children):
            self._assign_keys(child, key.child(sibling_atom(index)),
                              document, tags)

    # -- lookup ----------------------------------------------------------------------

    @property
    def document_names(self) -> list[str]:
        return list(self._documents)

    def document(self, name: str) -> XmlDocument:
        try:
            return self._documents[name]
        except KeyError:
            raise StorageError(f"unknown document {name!r}") from None

    def has_document(self, name: str) -> bool:
        return name in self._documents

    def root_key(self, name: str) -> FlexKey:
        try:
            return self._roots[name]
        except KeyError:
            raise StorageError(f"unknown document {name!r}") from None

    def document_of_key(self, key: FlexKey) -> str:
        value = key.value
        sep = value.find(".")
        atom = value if sep < 0 else value[:sep]
        try:
            return self._doc_of_root_atom[atom]
        except KeyError:
            raise StorageError(f"key {key} belongs to no document") from None

    def is_document_root(self, key: FlexKey) -> bool:
        """True when ``key`` is a registered document's root key."""
        return key.value in self._doc_of_root_atom

    def node(self, key: FlexKey) -> XmlNode:
        try:
            return self._nodes[key.without_override()]
        except KeyError:
            raise StorageError(f"no node stored under key {key}") from None

    def has_node(self, key: FlexKey) -> bool:
        return key.without_override() in self._nodes

    def node_count(self) -> int:
        return len(self._nodes)

    # -- navigation (always in document order) ------------------------------------------

    def children(self, key: FlexKey, tag: Optional[str] = None) -> list[FlexKey]:
        node = self.node(key)
        index = self._index
        if index is not None and tag is not None \
                and len(node.children) > 16:
            # Hybrid: a range scan of the tag's sorted key list wins only
            # when the tag is selective under a wide node; for narrow
            # nodes even the prune check costs more than the child walk.
            fast = index.children(self.document_of_key(key), key, tag,
                                  len(node.children))
            if fast is not None:
                return fast
        elif index is not None:
            # Narrow node (or no tag test): the tree walk is the cheaper
            # plan by construction — counted so the range-vs-walk split
            # stays honest in metric snapshots.
            index.walk_fallbacks += 1
        return [c.key for c in node.children
                if c.is_element and (tag is None or c.tag == tag)]

    def children_unindexed(self, key: FlexKey,
                           tag: Optional[str] = None) -> list[FlexKey]:
        """Walk-based ``children`` (the indexed path's correctness oracle)."""
        node = self.node(key)
        return [c.key for c in node.children
                if c.is_element and (tag is None or c.tag == tag)]

    def descendants(self, key: FlexKey, tag: Optional[str] = None) -> list[FlexKey]:
        if self._index is not None:
            if not self.has_node(key):
                raise StorageError(f"no node stored under key {key}")
            return self._index.descendants(self.document_of_key(key), key,
                                           tag)
        return self.descendants_unindexed(key, tag)

    def descendants_unindexed(self, key: FlexKey,
                              tag: Optional[str] = None) -> list[FlexKey]:
        """Walk-based ``descendants`` (the indexed path's correctness
        oracle; cost is proportional to the subtree, not the result)."""
        node = self.node(key)
        return [d.key for d in node.descendants(tag)]

    def attribute(self, key: FlexKey, name: str) -> Optional[str]:
        return self.node(key).attributes.get(name)

    def text(self, key: FlexKey) -> str:
        return self.node(key).text_value()

    def parent_key(self, key: FlexKey) -> Optional[FlexKey]:
        node = self.node(key)
        return node.parent.key if node.parent is not None else None

    def tag_path(self, key: FlexKey) -> tuple[str, ...]:
        """The root-to-node element tag path of ``key``.

        Keys never relabel and tags never change, so the structural
        index caches the path for a node's whole lifetime; the SAPT
        validator and multi-view router classify updates against it
        without re-walking ancestors.
        """
        if self._index is not None:
            cached = self._index.tag_path(key.value)
            if cached is not None:
                return cached
        tags: list[str] = []
        node = self.node(key)
        while node is not None:
            if node.is_element:
                tags.append(node.tag)
            node = node.parent
        return tuple(reversed(tags))

    def iter_subtree_keys(self, key: FlexKey) -> Iterator[FlexKey]:
        for node in self.node(key).iter_subtree():
            yield node.key

    # -- updates (no relabeling) -----------------------------------------------------------

    def insert_fragment(self, parent_key: FlexKey, fragment: XmlNode,
                        after: Optional[FlexKey] = None,
                        before: Optional[FlexKey] = None) -> FlexKey:
        """Insert ``fragment`` under ``parent_key``.

        Position: after sibling ``after``, before sibling ``before``, or as
        the last child when neither bound is given.  Assigns fresh FlexKeys
        to the whole inserted subtree; neighbours keep their keys.
        """
        parent = self.node(parent_key)
        if after is not None and before is not None:
            raise StorageError("give at most one of after/before")
        siblings = parent.children
        if after is not None:
            anchor = self.node(after)
            if anchor.parent is not parent:
                raise StorageError(f"{after} is not a child of {parent_key}")
            index = siblings.index(anchor) + 1
        elif before is not None:
            anchor = self.node(before)
            if anchor.parent is not parent:
                raise StorageError(f"{before} is not a child of {parent_key}")
            index = siblings.index(anchor)
        else:
            index = len(siblings)
        low = siblings[index - 1].key.local() if index > 0 else None
        high = siblings[index].key.local() if index < len(siblings) else None
        atom = atom_for_insert(low, high)
        parent.insert(index, fragment)
        new_key = parent_key.child(atom)
        if self._index is not None:
            self._assign_keys(fragment, new_key,
                              self.document_of_key(parent_key),
                              self.tag_path(parent_key))
        else:
            self._assign_keys(fragment, new_key, "", ())
        self._notify("insert", new_key)
        return new_key

    def delete_subtree(self, key: FlexKey) -> XmlNode:
        """Disconnect the subtree rooted at ``key`` and drop its keys.

        A single ``iter_subtree`` walk collects the (key, node) pairs;
        keys and index entries are dropped without re-resolving each key.
        """
        node = self.node(key)
        if node.parent is None:
            raise StorageError("cannot delete a document root")
        # Captured before the keys drop: deletion listeners still need to
        # classify the doomed subtree against their access paths.
        tags = (self.tag_path(key)
                if self._mutation_listeners and not self._notify_depth
                else None)
        index = self._index
        document = self.document_of_key(key) if index is not None else ""
        for sub in node.iter_subtree():
            del self._nodes[sub.key]
            if index is not None:
                index.remove_node(document, sub.key, sub)
        node.detach()
        self._notify("delete", key, tags)
        return node

    def replace_text(self, key: FlexKey, new_value: str) -> None:
        """Replace the text content of the node at ``key``.

        Mirrors the XQuery-update ``replace $t/text() with "v"`` primitive:
        existing text children are dropped (their keys released) and a single
        new text node is inserted.
        """
        node = self.node(key)
        if node.is_text:
            node.value = new_value
            self._notify("modify", key)
            return
        self._notify_depth += 1
        try:
            for child in list(node.children):
                if child.is_text:
                    del self._nodes[child.key]
                    if self._index is not None:
                        self._index.remove_node(
                            self.document_of_key(key), child.key, child)
                    node.remove(child)
            text_node = XmlNode.text(new_value)
            self.insert_fragment(key, text_node)
        finally:
            self._notify_depth -= 1
        self._notify("modify", key)

    def replace_attribute(self, key: FlexKey, name: str, value: str) -> None:
        self.node(key).attributes[name] = value
        self._notify("modify", key)

    # -- path evaluation helpers -------------------------------------------------------------

    def find_by_path(self, name: str, steps: Iterable[tuple[str, str]],
                     start: Optional[list[FlexKey]] = None
                     ) -> list[FlexKey]:
        """Evaluate a simple location path (axis, nametest) from a doc root.

        Axes: ``child`` and ``descendant``.  Used by the SAPT validator and
        by the update-language evaluator; the query engine runs navigation
        through XAT operators instead.  The frontier is deduplicated
        between steps and kept in document order: overlapping descendant
        steps (an ancestor and its descendant both on the frontier) would
        otherwise multiply the same key into the result.

        ``start`` continues evaluation from a previous frontier instead of
        the document root (the path→key resolvers use this to interleave
        predicate filtering between steps); the first-step document-node
        convention only applies when starting from the root.
        """
        return self._find_by_path(name, steps, self._index is not None,
                                  start)

    def find_by_path_unindexed(self, name: str,
                               steps: Iterable[tuple[str, str]],
                               start: Optional[list[FlexKey]] = None
                               ) -> list[FlexKey]:
        """Walk-based ``find_by_path`` (the indexed path's oracle)."""
        return self._find_by_path(name, steps, False, start)

    def _find_by_path(self, name: str, steps: Iterable[tuple[str, str]],
                      indexed: bool,
                      start: Optional[list[FlexKey]] = None
                      ) -> list[FlexKey]:
        steps = list(steps)
        if indexed and start is None and steps \
                and all(axis == "child" for axis, _ in steps):
            # Child-step-only path from the document node: the result is
            # exactly the elements whose cached root-to-node tag path
            # equals the step tags — one filtered pass over the final
            # tag's sorted key list instead of a level-by-level frontier
            # walk (the walk was marginally *faster* than per-level index
            # range scans; this slice is the form in which the index
            # wins).  The first-step document-node convention holds: a
            # node matches the full path only if the document element
            # matches the first tag.
            if name not in self._documents:
                raise StorageError(f"unknown document {name!r}")
            return self._index.path_nodes(
                name, tuple(test for _axis, test in steps))
        if indexed:
            children, descendants = self.children, self.descendants
        else:
            children = self.children_unindexed
            descendants = self.descendants_unindexed
        current = list(start) if start is not None else [self.root_key(name)]
        first = start is None
        for axis, nametest in steps:
            matched: list[FlexKey] = []
            seen: set[str] = set()
            for key in current:
                if axis == "child":
                    if first:
                        # From the (implicit) document node, the first child
                        # step names the document element itself.
                        reached = ([key] if self.node(key).tag == nametest
                                   else [])
                    else:
                        reached = children(key, nametest)
                elif axis == "descendant":
                    reached = descendants(key, nametest)
                    if first and self.node(key).tag == nametest:
                        reached = [key] + reached
                else:
                    raise StorageError(f"unsupported axis {axis!r}")
                for target in reached:
                    if target.value not in seen:
                        seen.add(target.value)
                        matched.append(target)
            matched.sort(key=lambda k: k.value)
            current = matched
            first = False
        return current
