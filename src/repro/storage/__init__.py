"""FlexKey-addressed storage manager, structural index and skeletons."""

from .index import StructuralIndex
from .manager import StorageError, StorageManager
from .skeleton import REF, VALUE, ContentItem, Skeleton, SkeletonStore

__all__ = [
    "REF",
    "VALUE",
    "ContentItem",
    "Skeleton",
    "SkeletonStore",
    "StorageError",
    "StorageManager",
    "StructuralIndex",
]
