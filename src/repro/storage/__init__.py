"""FlexKey-addressed storage manager and constructed-node skeletons."""

from .manager import StorageError, StorageManager
from .skeleton import REF, VALUE, ContentItem, Skeleton, SkeletonStore

__all__ = [
    "REF",
    "VALUE",
    "ContentItem",
    "Skeleton",
    "SkeletonStore",
    "StorageError",
    "StorageManager",
]
