"""Skeletons for constructed XML nodes (Section 3.3.1, "Constructed Nodes").

A constructed node is never instantiated as a full tree during execution.
Instead a *skeleton* records its tag, attributes and an ordered list of
content items, each of which is either a reference (a FlexKey of a base node
or the id of another constructed node) or an inline atomic value.  The final
result (and the materialized view extent) is produced by de-referencing
skeletons recursively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..flexkeys import FlexKey

#: Content item of a skeleton: a reference to base/constructed node, or text.
REF = "ref"
VALUE = "value"


@dataclass
class ContentItem:
    """One ordered content entry of a constructed node.

    ``count``/``refresh`` carry the maintenance annotations of the item that
    produced this entry; ``skeleton`` links to the nested constructed node
    when the reference is not a base node.  ``agg`` carries incremental
    aggregate state for aggregate-valued entries.
    """

    kind: str                       # REF or VALUE
    key: Optional[FlexKey] = None   # for REF: possibly carrying override order
    text: Optional[str] = None      # for VALUE
    count: int = 1
    refresh: bool = False
    skeleton: Optional["Skeleton"] = None
    agg: object = None

    @classmethod
    def ref(cls, key: FlexKey, count: int = 1, refresh: bool = False,
            skeleton: Optional["Skeleton"] = None) -> "ContentItem":
        return cls(REF, key=key, count=count, refresh=refresh,
                   skeleton=skeleton)

    @classmethod
    def value(cls, text: str, count: int = 1,
              refresh: bool = False) -> "ContentItem":
        return cls(VALUE, text=text, count=count, refresh=refresh)


@dataclass
class Skeleton:
    """Structure of one constructed node: ``<tag attrs>content</tag>``."""

    node_id: FlexKey
    tag: str
    attributes: dict[str, str] = field(default_factory=dict)
    content: list[ContentItem] = field(default_factory=list)
    count: int = 1

    def __repr__(self) -> str:
        return (f"Skeleton({self.node_id}, <{self.tag}>, "
                f"{len(self.content)} items)")


class SkeletonStore:
    """Holds skeletons of constructed nodes keyed by their identifier value.

    The store is per-execution (query results) — maintenance runs get their
    own store whose skeletons are then fused into the materialized extent.
    """

    def __init__(self):
        self._skeletons: dict[str, Skeleton] = {}

    def put(self, skeleton: Skeleton) -> None:
        self._skeletons[skeleton.node_id.value] = skeleton

    def get(self, node_id: Union[FlexKey, str]) -> Skeleton:
        value = node_id.value if isinstance(node_id, FlexKey) else node_id
        return self._skeletons[value]

    def has(self, node_id: Union[FlexKey, str]) -> bool:
        value = node_id.value if isinstance(node_id, FlexKey) else node_id
        return value in self._skeletons

    def __len__(self) -> int:
        return len(self._skeletons)

    def __iter__(self):
        return iter(self._skeletons.values())
