"""The materialized view extent and its construction from execution results.

An :class:`ExtentNode` is one node of the materialized XML view: semantic id,
order token, tag/attributes or text, *count annotation* (number of
derivations, Chapter 6) and children kept sorted by order token.  The same
structure represents delta update trees (Chapter 7's propagation output),
whose counts may be negative (deletes) or whose nodes may be flagged
``refresh`` (content-only re-derivations).
"""

from __future__ import annotations

import bisect
from typing import Optional

from ..flexkeys import FlexKey, order_of
from ..storage import ContentItem, Skeleton
from ..xmlmodel import XmlNode
from ..xat.grouping import AggState
from ..xat.table import AtomicItem, Item, NodeItem

TEXT_ID = "#text"
#: Synthetic root wrapping multi-root results so fusion is uniform.
FOREST_TAG = "#forest"


def forest_root() -> "ExtentNode":
    return ExtentNode(FOREST_TAG, "", tag=FOREST_TAG)


class ExtentNode:
    """One node of a materialized view extent / delta update tree."""

    __slots__ = ("node_id", "order", "tag", "text", "attributes", "children",
                 "count", "refresh", "agg", "base", "_child_index")

    def __init__(self, node_id: str, order: str, tag: Optional[str] = None,
                 text: Optional[str] = None,
                 attributes: Optional[dict[str, str]] = None,
                 count: int = 1, refresh: bool = False,
                 agg: Optional[AggState] = None, base: bool = False):
        self.node_id = node_id
        self.order = order
        self.tag = tag
        self.text = text
        self.attributes = attributes if attributes is not None else {}
        self.children: list[ExtentNode] = []
        self.count = count
        self.refresh = refresh
        self.agg = agg
        #: True for exposed copies of base (source) nodes: a refresh of a
        #: base copy is a full re-derivation and replaces children wholesale.
        self.base = base
        self._child_index: dict[tuple, ExtentNode] = {}

    # -- identity ------------------------------------------------------------------

    @property
    def is_text(self) -> bool:
        return self.tag is None

    def match_key(self) -> tuple:
        """Fusion identity: elements match by (tag, id); plain text nodes by
        content; aggregate-valued text nodes by id (their text changes)."""
        if self.agg is not None:
            return ("#agg", self.node_id)
        if self.is_text:
            return (TEXT_ID, self.text)
        return (self.tag, self.node_id)

    # -- children (kept sorted by order token) -----------------------------------------

    def find_child(self, key: tuple) -> Optional["ExtentNode"]:
        return self._child_index.get(key)

    def insert_child(self, child: "ExtentNode") -> None:
        orders = [c.order for c in self.children]
        index = bisect.bisect_right(orders, child.order)
        self.children.insert(index, child)
        self._child_index[child.match_key()] = child

    def remove_child(self, child: "ExtentNode") -> None:
        self.children.remove(child)
        self._child_index.pop(child.match_key(), None)

    def clear_children(self) -> None:
        self.children.clear()
        self._child_index.clear()

    def subtree_size(self) -> int:
        return 1 + sum(c.subtree_size() for c in self.children)

    # -- export ---------------------------------------------------------------------

    def to_xml(self) -> XmlNode:
        if self.is_text:
            return XmlNode.text(self.text or "")
        node = XmlNode.element(self.tag, dict(self.attributes))
        for child in self.children:
            node.append(child.to_xml())
        return node

    def deep_copy(self) -> "ExtentNode":
        clone = ExtentNode(self.node_id, self.order, self.tag, self.text,
                           dict(self.attributes), self.count, self.refresh,
                           self.agg, self.base)
        for child in self.children:
            clone.insert_child(child.deep_copy())
        return clone

    def __repr__(self) -> str:
        label = f"text={self.text!r}" if self.is_text else f"<{self.tag}>"
        return (f"ExtentNode({self.node_id!r}, {label}, count={self.count}, "
                f"{len(self.children)} children)")


# -- building extent/delta trees from execution results ---------------------------------


def node_from_item(item: Item, storage, delta=None) -> Optional[ExtentNode]:
    """Turn one result item into an extent (or delta) subtree.

    ``delta`` is the :class:`~repro.xat.DeltaSpec` of the maintenance run
    (None for plain materialization).  During a *delete* batch the source
    deletion is deferred until after propagation, so exposed-fragment
    copies must prune the subtrees being deleted — except when the copied
    root itself is the deleted fragment (only its id/count matter then).
    """
    if isinstance(item, AtomicItem):
        node = ExtentNode(TEXT_ID, item.order_token(), text=item.value,
                          count=item.count, refresh=item.refresh,
                          agg=item.agg)
        return node
    assert isinstance(item, NodeItem)
    if item.is_constructed:
        return _from_skeleton(item.skeleton, order_of(item.key),
                              item.count, item.refresh, storage, delta)
    return _copy_base(item.key, storage, item.count, item.refresh, delta)


def _from_skeleton(skeleton: Skeleton, order: str, count: int,
                   refresh: bool, storage, delta) -> ExtentNode:
    node = ExtentNode(skeleton.node_id.value, order, tag=skeleton.tag,
                      attributes=dict(skeleton.attributes),
                      count=count, refresh=refresh)
    for entry in skeleton.content:
        child = _from_content(entry, storage, refresh, delta)
        if child is not None:
            node.insert_child(child)
    return node


def _from_content(entry: ContentItem, storage, parent_refresh: bool,
                  delta) -> Optional[ExtentNode]:
    refresh = entry.refresh or parent_refresh
    if entry.kind == "value":
        node = ExtentNode(TEXT_ID,
                          order_of(entry.key) if entry.key is not None
                          else (entry.text or ""),
                          text=entry.text, count=entry.count,
                          refresh=refresh)
        node.agg = entry.agg
        return node
    if entry.skeleton is not None:
        return _from_skeleton(entry.skeleton, order_of(entry.key),
                              entry.count, refresh, storage, delta)
    return _copy_base(entry.key, storage, entry.count, refresh, delta)


def _prunes_deletes(delta) -> bool:
    return delta is not None and delta.phase == "delete"


def _copy_base(key: FlexKey, storage, count: int, refresh: bool,
               delta) -> Optional[ExtentNode]:
    """Copy an exposed base-node subtree; ids/orders come from FlexKeys."""
    if not storage.has_node(key):
        return None
    prune = _prunes_deletes(delta)
    if prune and delta.classify(key) == "at":
        # The copied root is itself being deleted: keep the whole copy
        # (only its id and negative count matter to Deep Union).
        prune = False
    source = storage.node(key)
    return _copy_base_node(source, order_of(key), count, refresh,
                           delta if prune else None)


def _copy_base_node(source: XmlNode, order: str, count: int,
                    refresh: bool, prune_delta) -> ExtentNode:
    if source.is_text:
        return ExtentNode(TEXT_ID, order, text=source.value,
                          count=count, refresh=refresh)
    node = ExtentNode(source.key.value, order, tag=source.tag,
                      attributes=dict(source.attributes),
                      count=count, refresh=refresh, base=True)
    for child in source.children:
        if prune_delta is not None and child.is_element \
                and prune_delta.classify(child.key) == "at":
            continue  # this subtree is being deleted
        node.insert_child(
            _copy_base_node(child, child.key.value, 1, refresh,
                            prune_delta))
    return node
