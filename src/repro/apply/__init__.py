"""Apply phase: extent trees and the count-aware Deep Union (Ch 6, 8)."""

from .deep_union import FusionReport, deep_union, fuse_forest
from .extent import FOREST_TAG, TEXT_ID, ExtentNode, forest_root, \
    node_from_item

__all__ = ["FOREST_TAG", "TEXT_ID", "ExtentNode", "FusionReport",
           "deep_union", "forest_root", "fuse_forest", "node_from_item"]
