"""The count-aware Deep Union refresh operator (Chapters 6 and 8).

``deep_union`` fuses a delta update tree into the materialized extent,
top-down, matching children by semantic identity:

* positive counts add derivations — matching nodes' counts increase and
  their children fuse recursively; unmatched nodes are inserted whole, in
  the position given by their order token;
* negative counts remove derivations — a node whose count reaches zero is
  disconnected *at its root* (no per-descendant deletion, Section 8.3.2);
* ``refresh`` nodes are count-neutral content re-derivations: attributes
  and text children are replaced, element children fuse recursively, and
  missing ones are inserted;
* aggregate-valued text nodes merge their :class:`AggState`; a min/max
  state whose extremum may have been deleted is reported for group
  recomputation (the counting-algorithm fallback of Section 7.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..xmlmodel.serializer import serialize
from .extent import FOREST_TAG, TEXT_ID, ExtentNode, forest_root


@dataclass
class FusionReport:
    """What the Apply phase did — used by tests and benchmarks.

    ``delta_log``, when set to a list by the caller *before* fusion,
    captures every **visible** extent mutation as a JSON-ready record
    (see :func:`delta_records` for the schema) — the payload a push
    subscriber needs to mirror the refresh without re-reading the view.
    Count-only changes that leave the serialized XML untouched are not
    recorded.  ``None`` (the default) disables capture entirely; the
    hot path pays one identity check per mutation.
    """

    inserted: int = 0
    removed_roots: int = 0
    removed_nodes: int = 0
    merged: int = 0
    replaced_text: int = 0
    aggregate_refreshes: list[tuple] = field(default_factory=list)
    delta_log: Optional[list] = field(default=None, repr=False)

    @property
    def mutations(self) -> int:
        """Total extent mutations this fusion applied — the honest size
        of a refresh's delta as seen by subscribers."""
        return (self.inserted + self.removed_roots + self.removed_nodes
                + self.merged + self.replaced_text)

    def as_dict(self) -> dict:
        return {"inserted": self.inserted,
                "removed_roots": self.removed_roots,
                "removed_nodes": self.removed_nodes,
                "merged": self.merged,
                "replaced_text": self.replaced_text,
                "mutations": self.mutations,
                "aggregate_refreshes": len(self.aggregate_refreshes)}

    def merge(self, other: "FusionReport") -> "FusionReport":
        """Fold ``other``'s activity into this report (bench summaries
        and :meth:`repro.api.Database.metrics` merge across flushes)."""
        self.inserted += other.inserted
        self.removed_roots += other.removed_roots
        self.removed_nodes += other.removed_nodes
        self.merged += other.merged
        self.replaced_text += other.replaced_text
        self.aggregate_refreshes.extend(other.aggregate_refreshes)
        return self


# -- delta records (the push-subscription payload) --------------------------------------
#
# Each visible extent mutation appends one JSON-ready dict to
# ``report.delta_log`` when capture is on.  Paths are lists of two-element
# match keys (``[tag, node_id]``, ``["#text", text]``, ``["#agg", id]``)
# from just below the synthetic forest root down to the affected node —
# the same identities Deep Union fuses by, so a mirror applying the
# records reproduces the extent.  The schema (shared with the wire
# protocol's delta frames, see docs/WIRE_PROTOCOL.md):
#
# * ``{"op": "insert", "parent": [...], "key": [...], "order": o,
#   "xml": "<...>"}`` — a whole subtree entered the extent under
#   ``parent`` at sibling position ``order``; ``key`` is the new
#   subtree root's own match key, so later records addressing it (its
#   removal, its text changing) correlate without re-deriving identity
#   from the XML;
# * ``{"op": "remove", "path": [...]}`` — the subtree at ``path`` left
#   the extent (disconnected at its root);
# * ``{"op": "text", "path": [...], "text": "..."}`` — the direct text
#   content of the element at ``path`` was replaced;
# * ``{"op": "replace", "path": [...], "xml": "<...>"}`` — a re-derived
#   base fragment replaced the element's children wholesale (``xml`` is
#   the element's new serialization);
# * ``{"op": "agg", "path": [...], "value": "..."}`` — an
#   aggregate-valued text node took a new value.


def _json_path(path: tuple) -> list:
    return [list(key) for key in path]


def _log_insert(log: list, path: tuple, node: ExtentNode) -> None:
    log.append({"op": "insert", "parent": _json_path(path),
                "key": list(node.match_key()), "order": node.order,
                "xml": serialize(node.to_xml())})


def _log_remove(log: list, path: tuple, key: tuple) -> None:
    log.append({"op": "remove", "path": _json_path(path + (key,))})


def _log_text(log: list, path: tuple, existing: ExtentNode) -> None:
    log.append({"op": "text", "path": _json_path(path),
                "text": "".join(child.text or ""
                                for child in existing.children
                                if child.is_text)})


def _log_replace(log: list, path: tuple, existing: ExtentNode) -> None:
    log.append({"op": "replace", "path": _json_path(path),
                "xml": serialize(existing.to_xml())})


def _log_agg(log: list, path: tuple, node: ExtentNode) -> None:
    log.append({"op": "agg", "path": _json_path(path),
                "value": node.text})


def fuse_forest(extent: Optional[ExtentNode], roots: list[ExtentNode],
                report: Optional[FusionReport] = None
                ) -> tuple[ExtentNode, FusionReport]:
    """Fuse result roots under the synthetic forest wrapper.

    Used both for initial materialization and for applying delta forests —
    views whose result is a single constructed document element simply have
    a one-child forest.
    """
    if report is None:
        report = FusionReport()
    if extent is None:
        extent = forest_root()
    for root in roots:
        delta = forest_root()
        delta.insert_child(root)
        extent, report = deep_union(extent, delta, report)
    return extent, report


def deep_union(extent: Optional[ExtentNode], delta: ExtentNode,
               report: Optional[FusionReport] = None
               ) -> tuple[Optional[ExtentNode], FusionReport]:
    """Fuse ``delta`` into ``extent`` (which may be None) and return both.

    The returned extent is the same object, mutated — except when the
    extent was empty, in which case the delta becomes the extent.
    """
    if report is None:
        report = FusionReport()
    log = report.delta_log
    if extent is None:
        if delta.count <= 0 and not delta.refresh:
            return None, report
        report.inserted += 1
        _normalize_inserted(delta)
        if log is not None:
            roots = (delta.children if delta.tag == FOREST_TAG
                     else [delta])
            for root in roots:
                _log_insert(log, (), root)
        return delta, report
    if extent.match_key() != delta.match_key():
        raise ValueError(
            f"root mismatch: {extent.match_key()} vs {delta.match_key()}")
    alive = _fuse(extent, delta, report, log, ())
    if not alive:
        report.removed_roots += 1
        report.removed_nodes += extent.subtree_size()
        if log is not None:
            _log_remove(log, (), extent.match_key())
        return None, report
    return extent, report


def _normalize_inserted(node: ExtentNode) -> None:
    """Fresh inserts enter the extent with sane counts (refresh => 1).

    A freshly inserted subtree may carry same-identity siblings — the
    retract/assert halves of a first-class modify re-derive one member
    several times with signed counts.  They fuse first (Deep Union keeps
    one node per identity under a parent), so net-zero derivations drop
    out instead of materializing as duplicates when the enclosing
    subtree enters the extent whole.
    """
    _fuse_duplicate_children(node)
    if node.count <= 0:
        node.count = 1
    node.refresh = False
    for child in node.children:
        _normalize_inserted(child)


def _fuse_duplicate_children(node: ExtentNode) -> None:
    """Fuse same-match-key children of one delta node (counts sum)."""
    keys = set()
    duplicates = False
    for child in node.children:
        key = child.match_key()
        if key in keys:
            duplicates = True
            break
        keys.add(key)
    if not duplicates:
        return
    scratch = FusionReport()
    first_of: dict[tuple, ExtentNode] = {}
    merged: list[ExtentNode] = []
    dead: set[int] = set()
    for child in node.children:
        key = child.match_key()
        first = first_of.get(key)
        if first is None:
            first_of[key] = child
            merged.append(child)
        elif not _fuse(first, child, scratch):
            dead.add(id(first))
            del first_of[key]
    node.clear_children()
    for child in merged:
        if id(child) not in dead:
            node.insert_child(child)


def _fuse(existing: ExtentNode, incoming: ExtentNode,
          report: FusionReport, log: Optional[list] = None,
          path: tuple = ()) -> bool:
    """Fuse one matched pair; returns False when ``existing`` must die.

    ``log``/``path`` carry the delta capture: ``path`` is the identity
    path of ``existing`` (match keys below the forest root, see the
    record schema above) and is only extended while ``log`` is a list.
    """
    report.merged += 1
    if incoming.agg is not None and existing.agg is not None:
        _merge_aggregate(existing, incoming, report, log, path)
        return True
    if incoming.refresh:
        existing.attributes = dict(incoming.attributes)
        if incoming.base:
            # An exposed base fragment re-derivation is complete: replace
            # the children wholesale (handles deletes inside the fragment).
            preserved = existing.count
            existing.clear_children()
            for child in list(incoming.children):
                incoming.remove_child(child)
                _normalize_inserted(child)
                existing.insert_child(child)
            existing.count = preserved
            report.replaced_text += 1
            if log is not None:
                _log_replace(log, path, existing)
            return True
        _replace_text_children(existing, incoming, report, log, path)
        _fuse_children(existing, incoming, report, refresh=True,
                       log=log, path=path)
        return True
    existing.count += incoming.count
    if existing.count <= 0:
        return False
    _fuse_children(existing, incoming, report, refresh=False,
                   log=log, path=path)
    return True


def _fuse_children(existing: ExtentNode, incoming: ExtentNode,
                   report: FusionReport, refresh: bool,
                   log: Optional[list] = None, path: tuple = ()) -> None:
    for child in list(incoming.children):
        if child.is_text and refresh:
            continue  # text already replaced wholesale
        key = child.match_key()
        match = existing.find_child(key)
        if match is None:
            if child.count <= 0 and not child.refresh:
                continue  # deleting something already absent
            incoming.remove_child(child)
            _normalize_inserted(child)
            existing.insert_child(child)
            report.inserted += 1
            if log is not None:
                _log_insert(log, path, child)
            continue
        alive = _fuse(match, child, report, log,
                      path + (key,) if log is not None else path)
        if not alive:
            report.removed_roots += 1
            report.removed_nodes += match.subtree_size()
            existing.remove_child(match)
            if log is not None:
                _log_remove(log, path, key)


def _replace_text_children(existing: ExtentNode, incoming: ExtentNode,
                           report: FusionReport,
                           log: Optional[list] = None,
                           path: tuple = ()) -> None:
    incoming_texts = [c for c in incoming.children if c.is_text]
    existing_texts = [c for c in existing.children if c.is_text]
    if not incoming_texts and not existing_texts:
        return
    if (len(incoming_texts) == 1 and len(existing_texts) == 1
            and incoming_texts[0].agg is not None
            and existing_texts[0].agg is not None):
        # An aggregate-valued text node under a refresh parent merges its
        # per-member contribution state — wholesale replacement would
        # adopt the *delta* state (value-only contributions, count 0)
        # and lose the derivation counts the next retraction needs.
        _merge_aggregate(
            existing_texts[0], incoming_texts[0], report, log,
            path + (existing_texts[0].match_key(),)
            if log is not None else path)
        return
    same = ([c.text for c in incoming_texts]
            == [c.text for c in existing_texts])
    if same:
        return
    for child in existing_texts:
        existing.remove_child(child)
    for child in incoming_texts:
        incoming.remove_child(child)
        _normalize_inserted(child)
        existing.insert_child(child)
    report.replaced_text += 1
    if log is not None:
        _log_text(log, path, existing)


def _merge_aggregate(existing: ExtentNode, incoming: ExtentNode,
                     report: FusionReport, log: Optional[list] = None,
                     path: tuple = ()) -> None:
    """Merge per-member aggregate contributions (Section 7.6).

    Thanks to the per-member counting state, min/max deletes re-evaluate
    over the surviving members locally — no global recomputation is needed
    (``aggregate_refreshes`` stays empty; the field remains for exotic
    states that cannot be merged, none of which arise from our operators).
    """
    before = existing.text
    existing.agg = existing.agg.merge(incoming.agg)
    existing.text = existing.agg.value()
    if log is not None and existing.text != before:
        _log_agg(log, path, existing)
