"""Translation of normalized XQuery ASTs into decorrelated XAT plans.

The paper translates FLWOR blocks into Map-based plans (Fig 2.3) and then
removes the Map operators by pushing them to the linking operators, where
they rewrite into joins (Section 2.4).  This translator produces the
*decorrelated* form directly — the same plans the Rainbow optimizer would
emit — because only decorrelated plans are incrementally maintainable:

* every ``for``/``distinct-values`` clause becomes a Source + Navigate
  chain (its *source unit*);
* WHERE conjuncts linking two units become join conditions, conjuncts
  local to one unit become selections, and conjuncts referencing an
  enclosing block's variables become the LOJ condition that decorrelates
  the nested FLWOR (Left Outer Join so that empty groups keep their shell);
* a correlated inner FLWOR used as element content becomes
  ``GroupBy(outer binders, Combine(result))`` above that LOJ — exactly the
  Fig 2.2 plan shape for the running example;
* ``order by`` becomes an Order By operator above the assembled block.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from ..xat import (Aggregate, And, ColumnRef, Combine, Comparison, Distinct,
                   Expose, GroupBy, Join, LeftOuterJoin, Literal,
                   NavigateCollection, NavigateUnnest, Merge, OrderBy, Path,
                   Pattern, PlanError, Select, Source, Tagger, XatOperator)
from ..xquery import ast
from ..xquery.normalize import normalize


class TranslationError(ValueError):
    """Raised for query shapes outside the supported subset."""


@dataclass
class Block:
    """A translated FLWOR block: plan, variable environment, binder cols."""

    plan: Optional[XatOperator]
    env: dict[str, str] = field(default_factory=dict)
    binders: list[str] = field(default_factory=list)


@dataclass
class _SourceUnit:
    plan: XatOperator
    vars: set[str]
    binder_col: str


class Translator:
    """Stateful translator (fresh column name generation)."""

    def __init__(self):
        self._counter = itertools.count(1)

    def fresh(self, prefix: str = "$col") -> str:
        return f"{prefix}{next(self._counter)}"

    # -- public entry point --------------------------------------------------------

    def translate(self, expr: ast.Expression) -> XatOperator:
        """Translate a parsed query into a prepared, Expose-rooted plan."""
        expr = normalize(expr)
        if isinstance(expr, ast.ElementConstructor):
            block, col = self._constructor_single(expr)
            return Expose(block.plan, col).prepare()
        if isinstance(expr, ast.FLWOR):
            block, col = self.translate_flwor(expr, outer=None)
            combined = Combine(block.plan, col)
            return Expose(combined, col).prepare()
        raise TranslationError(
            f"unsupported top-level expression {type(expr).__name__}")

    # -- single-tuple (top level) context ---------------------------------------------

    def _constructor_single(self, ec: ast.ElementConstructor
                            ) -> tuple[Block, str]:
        """A constructor in single-tuple context (the document element)."""
        block = Block(plan=None)
        content_entries: list[Union[str, tuple[str, str]]] = []
        for entry in ec.content:
            if isinstance(entry, ast.TextContent):
                content_entries.append(("literal", entry.text))
                continue
            sub_block, col = self._single_tuple_content(entry)
            block = self._merge_blocks(block, sub_block)
            content_entries.append(col)
        attributes = []
        for name, value in ec.attributes:
            if isinstance(value, (ast.TextContent, ast.StringLiteral)):
                text = value.text if isinstance(value, ast.TextContent) \
                    else value.value
                attributes.append((name, Literal(text)))
            else:
                raise TranslationError(
                    "top-level constructor attributes must be literals")
        if block.plan is None:
            raise TranslationError("constructor with no query content")
        out = self.fresh()
        tagger = Tagger(block.plan, Pattern(ec.tag, tuple(attributes),
                                            tuple(content_entries)), out)
        return Block(tagger, dict(block.env), list(block.binders)), out

    def _single_tuple_content(self, expr: ast.Expression
                              ) -> tuple[Block, str]:
        """Translate one content expression into a single-tuple block."""
        if isinstance(expr, ast.FLWOR):
            inner, col = self.translate_flwor(expr, outer=None)
            combined = Combine(inner.plan, col)
            return Block(combined), col
        if isinstance(expr, ast.ElementConstructor):
            return self._constructor_single(expr)
        if isinstance(expr, ast.PathExpr) and expr.from_document:
            unit = self._document_unit(expr, self.fresh("$S"), self.fresh())
            combined = Combine(unit.plan, unit.binder_col)
            return Block(combined), unit.binder_col
        if isinstance(expr, ast.FunctionCall):
            return self._aggregate_single(expr)
        raise TranslationError(
            f"unsupported top-level content {type(expr).__name__}")

    def _aggregate_single(self, call: ast.FunctionCall) -> tuple[Block, str]:
        if call.name == "distinct-values":
            raise TranslationError("distinct-values only in for clauses")
        if isinstance(call.argument, ast.FLWOR):
            inner, col = self.translate_flwor(call.argument, outer=None)
            out = self.fresh()
            return Block(Aggregate(inner.plan, call.name, col, out)), out
        if isinstance(call.argument, ast.PathExpr) \
                and call.argument.from_document:
            unit = self._document_unit(call.argument, self.fresh("$S"),
                                       self.fresh())
            out = self.fresh()
            return Block(Aggregate(unit.plan, call.name,
                                   unit.binder_col, out)), out
        raise TranslationError("unsupported aggregate argument")

    def _merge_blocks(self, left: Block, right: Block) -> Block:
        if left.plan is None:
            return right
        if right.plan is None:
            return left
        merged = Merge(left.plan, right.plan)
        env = dict(left.env)
        env.update(right.env)
        return Block(merged, env, left.binders + right.binders)

    # -- FLWOR translation ----------------------------------------------------------------

    def translate_flwor(self, flwor: ast.FLWOR, outer: Optional[Block]
                        ) -> tuple[Block, str]:
        """Translate a FLWOR; ``outer`` is the enclosing (correlated) block.

        When ``outer`` is given, the result block *includes* the outer plan:
        it is ``GroupBy(outer binders, Combine(result))`` over
        ``LOJ(outer, inner)`` and replaces the outer block upstream.
        """
        units: list[_SourceUnit] = []
        env: dict[str, str] = {}
        binders: list[str] = []

        def unit_of_var(var: str) -> Optional[_SourceUnit]:
            for unit in units:
                if var in unit.vars:
                    return unit
            return None

        for clause in flwor.fors:
            self._add_for_clause(clause, units, env, binders,
                                 unit_of_var, outer)

        # Classify WHERE conjuncts.
        local_selects: list[tuple[_SourceUnit, Comparison]] = []
        join_conds: list[tuple[_SourceUnit, _SourceUnit, Comparison]] = []
        linking: list[Comparison] = []
        for conj in _conjuncts(flwor.where):
            sides = []
            for operand in (conj.left, conj.right):
                sides.append(self._operand_info(operand, env,
                                                outer.env if outer else {}))
            (l_kind, l_ref), (r_kind, r_ref) = sides
            comparison = self._build_comparison(conj, sides, env,
                                                unit_of_var, outer)
            kinds = {l_kind, r_kind}
            if "outer" in kinds:
                linking.append(comparison)
            else:
                involved = {ref for kind, ref in sides if kind == "inner"}
                involved_units = {id(unit_of_var(v)) for v in involved}
                if len(involved_units) >= 2:
                    a = unit_of_var(next(iter(involved)))
                    b = None
                    for v in involved:
                        candidate = unit_of_var(v)
                        if candidate is not a:
                            b = candidate
                    join_conds.append((a, b, comparison))
                else:
                    unit = unit_of_var(next(iter(involved)))
                    local_selects.append((unit, comparison))

        # Apply local selections, then assemble units via joins.
        for unit, comparison in local_selects:
            unit.plan = Select(unit.plan, comparison)
        plan = self._assemble_units(units, join_conds)
        block = Block(plan, env, binders)

        # Order by (applies within the block; Order Schema propagates).
        if flwor.order_by:
            block = self._apply_order_by(block, flwor.order_by)

        # Return clause.
        block, result_col = self._translate_return(block, flwor.ret)

        if outer is None:
            return block, result_col
        # Decorrelate: LOJ(outer, inner) + GroupBy(outer binders, Combine).
        if block.plan is None:
            raise TranslationError("correlated FLWOR with no sources")
        condition = _combine_conditions(linking)
        if condition is None:
            raise TranslationError(
                "correlated FLWOR without a linking condition")
        loj = LeftOuterJoin(outer.plan, block.plan, condition)
        grouped = GroupBy(loj, tuple(outer.binders), combine_col=result_col)
        merged_env = dict(outer.env)
        new_block = Block(grouped, merged_env, list(outer.binders))
        return new_block, result_col

    # -- for clauses ---------------------------------------------------------------------

    def _add_for_clause(self, clause, units, env, binders,
                        unit_of_var, outer: Optional[Block]) -> None:
        binding = clause.binding
        col = self.fresh(f"${clause.var}_")
        if isinstance(binding, ast.FunctionCall) \
                and binding.name == "distinct-values":
            arg = binding.argument
            if not (isinstance(arg, ast.PathExpr) and arg.from_document):
                raise TranslationError(
                    "distinct-values requires a document path")
            if not Path.parse(arg.path).ends_in_value:
                # distinct-values atomizes: bind the nodes' string values.
                arg = ast.PathExpr(arg.source, arg.path + "/text()",
                                   arg.predicates)
            unit = self._document_unit(arg, self.fresh("$S"), col)
            unit.plan = Distinct(unit.plan, col)
            unit.vars.add(clause.var)
            units.append(unit)
            env[clause.var] = col
            binders.append(col)
            return
        if isinstance(binding, ast.PathExpr) and binding.from_document:
            unit = self._document_unit(binding, self.fresh("$S"), col)
            unit.vars.add(clause.var)
            units.append(unit)
            env[clause.var] = col
            binders.append(col)
            return
        if isinstance(binding, ast.PathExpr):
            var = binding.source.name
            unit = unit_of_var(var)
            if unit is not None:
                unit.plan = self._navigate_binding(unit.plan, f"${var}",
                                                   binding, col,
                                                   keep_empty=False)
                unit.vars.add(clause.var)
                env[clause.var] = col
                binders.append(col)
                return
            if outer is not None and var in outer.env:
                raise TranslationError(
                    "for-bindings from an outer variable are supported via "
                    "path content, not as inner for clauses")
            raise TranslationError(f"unbound variable ${var} in for clause")
        raise TranslationError(
            f"unsupported for binding {type(binding).__name__}")

    def _document_unit(self, path_expr: ast.PathExpr, source_col: str,
                       out_col: str) -> _SourceUnit:
        source = Source(path_expr.source, source_col)
        plan = self._navigate_binding(source, source_col, path_expr, out_col,
                                      keep_empty=False)
        return _SourceUnit(plan, set(), out_col)

    def _navigate_binding(self, plan: XatOperator, from_col: str,
                          path_expr: ast.PathExpr, out_col: str,
                          keep_empty: bool) -> XatOperator:
        """Navigate (unnest), lifting step predicates into selections."""
        steps = Path.parse(path_expr.path).steps
        predicates = path_expr.predicates
        current_col = from_col
        segment: list = []
        for index, step in enumerate(steps):
            segment.append(step)
            if index in predicates:
                mid_col = (out_col if index == len(steps) - 1
                           else self.fresh())
                plan = NavigateUnnest(plan, current_col, Path(tuple(segment)),
                                      mid_col, keep_empty=keep_empty)
                for pred in predicates[index]:
                    plan = self._apply_predicate(plan, mid_col, pred)
                current_col = mid_col
                segment = []
        if segment:
            plan = NavigateUnnest(plan, current_col, Path(tuple(segment)),
                                  out_col, keep_empty=keep_empty)
        return plan

    def _apply_predicate(self, plan: XatOperator, col: str,
                         pred: ast.PredicateExpr) -> XatOperator:
        if pred.path == "position()":
            raise TranslationError(
                "positional predicates are only supported in update targets")
        probe = self.fresh()
        plan = NavigateCollection(plan, col, Path.parse(pred.path), probe)
        return Select(plan, Comparison(ColumnRef(probe), pred.op,
                                       Literal(pred.literal)))

    # -- WHERE helpers ----------------------------------------------------------------------

    def _operand_info(self, operand, env: dict[str, str],
                      outer_env: dict[str, str]):
        if isinstance(operand, (ast.StringLiteral, ast.NumberLiteral)):
            return ("literal", operand.value)
        if isinstance(operand, ast.VarRef):
            if operand.name in env:
                return ("inner", operand.name)
            if operand.name in outer_env:
                return ("outer", operand.name)
            raise TranslationError(f"unbound variable ${operand.name}")
        if isinstance(operand, ast.PathExpr) and not operand.from_document:
            var = operand.source.name
            if var in env:
                return ("inner", var)
            if var in outer_env:
                return ("outer", var)
            raise TranslationError(f"unbound variable ${var}")
        raise TranslationError("unsupported WHERE operand")

    def _build_comparison(self, conj: ast.Comparison, sides,
                          env: dict[str, str], unit_of_var,
                          outer: Optional[Block]) -> Comparison:
        operands = []
        for operand, (kind, ref) in zip((conj.left, conj.right), sides):
            if kind == "literal":
                operands.append(Literal(ref))
                continue
            if isinstance(operand, ast.VarRef):
                col = outer.env[ref] if kind == "outer" else env[ref]
                operands.append(ColumnRef(col))
                continue
            # PathExpr from a variable: add a Navigate Collection.
            var = operand.source.name
            probe = self.fresh()
            path = Path.parse(operand.path)
            if kind == "outer":
                outer.plan = NavigateCollection(outer.plan, outer.env[var],
                                                path, probe)
            else:
                unit = unit_of_var(var)
                unit.plan = NavigateCollection(unit.plan, env[var], path,
                                               probe)
            operands.append(ColumnRef(probe))
        return Comparison(operands[0], conj.op, operands[1])

    def _assemble_units(self, units: list[_SourceUnit],
                        join_conds) -> Optional[XatOperator]:
        if not units:
            return None
        remaining = list(units)
        conds = list(join_conds)
        current = remaining.pop(0)
        plan = current.plan
        merged_units = {id(current)}
        while remaining:
            progressed = False
            for index, (a, b, comparison) in enumerate(conds):
                ids = {id(a), id(b)}
                inside = ids & merged_units
                outside = ids - merged_units
                if inside and outside:
                    next_unit = a if id(a) in outside else b
                    remaining.remove(next_unit)
                    plan = Join(plan, next_unit.plan, comparison)
                    merged_units.add(id(next_unit))
                    conds.pop(index)
                    progressed = True
                    break
                if inside and not outside:
                    plan = Select(plan, comparison)
                    conds.pop(index)
                    progressed = True
                    break
            if not progressed:
                from ..xat import CartesianProduct
                next_unit = remaining.pop(0)
                plan = CartesianProduct(plan, next_unit.plan)
                merged_units.add(id(next_unit))
        for _a, _b, comparison in conds:
            plan = Select(plan, comparison)
        return plan

    # -- ORDER BY ---------------------------------------------------------------------------

    def _apply_order_by(self, block: Block,
                        order_exprs: list[ast.Expression]) -> Block:
        cols = []
        plan = block.plan
        for expr in order_exprs:
            if isinstance(expr, ast.VarRef):
                cols.append(block.env[expr.name])
            elif isinstance(expr, ast.PathExpr) \
                    and not expr.from_document:
                probe = self.fresh()
                plan = NavigateCollection(plan, block.env[expr.source.name],
                                          Path.parse(expr.path), probe)
                cols.append(probe)
            else:
                raise TranslationError("unsupported order-by expression")
        return Block(OrderBy(plan, cols), block.env, block.binders)

    # -- RETURN -----------------------------------------------------------------------------

    def _translate_return(self, block: Block, ret: ast.Expression
                          ) -> tuple[Block, str]:
        if isinstance(ret, ast.VarRef):
            return block, block.env[ret.name]
        if isinstance(ret, ast.PathExpr) and not ret.from_document:
            probe = self.fresh()
            plan = NavigateCollection(block.plan,
                                      block.env[ret.source.name],
                                      Path.parse(ret.path), probe)
            return Block(plan, block.env, block.binders), probe
        if isinstance(ret, ast.ElementConstructor):
            return self._constructor_tuple(block, ret)
        if isinstance(ret, ast.Sequence):
            cols = []
            for item in ret.items:
                block, col = self._translate_return(block, item)
                cols.append(col)
            out = cols[0]
            from ..xat import XmlUnion
            for other in cols[1:]:
                merged = self.fresh()
                block = Block(XmlUnion(block.plan, out, other, merged),
                              block.env, block.binders)
                out = merged
            return block, out
        raise TranslationError(
            f"unsupported return expression {type(ret).__name__}")

    def _constructor_tuple(self, block: Block, ec: ast.ElementConstructor
                           ) -> tuple[Block, str]:
        """A constructor evaluated once per tuple of ``block``."""
        attributes = []
        for name, value in ec.attributes:
            block, operand = self._attribute_operand(block, value)
            attributes.append((name, operand))
        content_entries: list[Union[str, tuple[str, str]]] = []
        for entry in ec.content:
            if isinstance(entry, ast.TextContent):
                content_entries.append(("literal", entry.text))
                continue
            block, col = self._content_column(block, entry)
            content_entries.append(col)
        out = self.fresh()
        tagger = Tagger(block.plan, Pattern(ec.tag, tuple(attributes),
                                            tuple(content_entries)), out)
        return Block(tagger, block.env, block.binders), out

    def _attribute_operand(self, block: Block, value: ast.Expression):
        if isinstance(value, (ast.TextContent, ast.StringLiteral)):
            text = value.text if isinstance(value, ast.TextContent) \
                else value.value
            return block, Literal(text)
        if isinstance(value, ast.VarRef):
            return block, ColumnRef(block.env[value.name])
        if isinstance(value, ast.PathExpr) and not value.from_document:
            probe = self.fresh()
            plan = NavigateCollection(block.plan,
                                      block.env[value.source.name],
                                      Path.parse(value.path), probe)
            return (Block(plan, block.env, block.binders),
                    ColumnRef(probe))
        raise TranslationError("unsupported attribute value expression")

    def _content_column(self, block: Block, entry: ast.Expression
                        ) -> tuple[Block, str]:
        if isinstance(entry, ast.VarRef):
            return block, block.env[entry.name]
        if isinstance(entry, ast.PathExpr) and not entry.from_document:
            probe = self.fresh()
            plan = NavigateCollection(block.plan,
                                      block.env[entry.source.name],
                                      Path.parse(entry.path), probe)
            return Block(plan, block.env, block.binders), probe
        if isinstance(entry, ast.ElementConstructor):
            return self._constructor_tuple(block, entry)
        if isinstance(entry, ast.FLWOR):
            inner_block, col = self.translate_flwor(entry, outer=block)
            return inner_block, col
        if isinstance(entry, ast.FunctionCall):
            if isinstance(entry.argument, ast.FLWOR):
                # aggregate over a correlated FLWOR: GroupBy with aggregate
                return self._correlated_aggregate(block, entry)
            if isinstance(entry.argument, ast.PathExpr) \
                    and not entry.argument.from_document:
                from ..xat.grouping import TupleFunction
                probe = self.fresh()
                arg = entry.argument
                plan = NavigateCollection(block.plan,
                                          block.env[arg.source.name],
                                          Path.parse(arg.path), probe)
                out = self.fresh()
                plan = TupleFunction(plan, entry.name, probe, out)
                return Block(plan, block.env, block.binders), out
        raise TranslationError(
            f"unsupported content expression {type(entry).__name__}")

    def _correlated_aggregate(self, block: Block, call: ast.FunctionCall
                              ) -> tuple[Block, str]:
        flwor = call.argument
        inner = self._inner_for_aggregate(flwor, block)
        inner_block, result_col, linking = inner
        condition = _combine_conditions(linking)
        if condition is None:
            raise TranslationError(
                "correlated aggregate FLWOR needs a linking condition")
        loj = LeftOuterJoin(block.plan, inner_block.plan, condition)
        out = self.fresh()
        grouped = GroupBy(loj, tuple(block.binders),
                          agg=(call.name, result_col, out))
        return Block(grouped, dict(block.env), list(block.binders)), out

    def _inner_for_aggregate(self, flwor: ast.FLWOR, outer: Block):
        """Like translate_flwor(outer=...) but stopping before grouping."""
        saved = outer.binders
        # Reuse translate_flwor machinery by intercepting: translate with
        # outer=None, collecting linking conditions manually.
        units: list[_SourceUnit] = []
        env: dict[str, str] = {}
        binders: list[str] = []

        def unit_of_var(var):
            for unit in units:
                if var in unit.vars:
                    return unit
            return None

        for clause in flwor.fors:
            self._add_for_clause(clause, units, env, binders,
                                 unit_of_var, outer)
        local_selects = []
        join_conds = []
        linking = []
        for conj in _conjuncts(flwor.where):
            sides = [self._operand_info(op, env, outer.env)
                     for op in (conj.left, conj.right)]
            comparison = self._build_comparison(conj, sides, env,
                                                unit_of_var, outer)
            if any(kind == "outer" for kind, _ in sides):
                linking.append(comparison)
            else:
                involved = {ref for kind, ref in sides if kind == "inner"}
                involved_units = {id(unit_of_var(v)) for v in involved}
                if len(involved_units) >= 2:
                    values = list(involved)
                    a = unit_of_var(values[0])
                    b = next(unit_of_var(v) for v in values
                             if unit_of_var(v) is not a)
                    join_conds.append((a, b, comparison))
                else:
                    local_selects.append(
                        (unit_of_var(next(iter(involved))), comparison))
        for unit, comparison in local_selects:
            unit.plan = Select(unit.plan, comparison)
        plan = self._assemble_units(units, join_conds)
        inner_block = Block(plan, env, binders)
        inner_block, result_col = self._translate_return(inner_block,
                                                         flwor.ret)
        outer.binders = saved
        return inner_block, result_col, linking


def _conjuncts(where: Optional[ast.Expression]) -> list[ast.Comparison]:
    if where is None:
        return []
    if isinstance(where, ast.BoolAnd):
        result = []
        for c in where.conjuncts:
            result.extend(_conjuncts(c))
        return result
    if isinstance(where, ast.Comparison):
        return [where]
    raise TranslationError("unsupported WHERE expression")


def _combine_conditions(comparisons: list[Comparison]):
    if not comparisons:
        return None
    if len(comparisons) == 1:
        return comparisons[0]
    return And(tuple(comparisons))


def translate_query(text: str) -> XatOperator:
    """Parse + normalize + translate an XQuery string into a prepared plan."""
    from ..xquery.parser import parse_query

    return Translator().translate(parse_query(text))
