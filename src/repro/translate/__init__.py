"""XQuery -> XAT translation (Sections 2.3-2.4)."""

from .flwor import Block, TranslationError, Translator, translate_query

__all__ = ["Block", "TranslationError", "Translator", "translate_query"]
