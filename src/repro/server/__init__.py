"""The network serving layer: sessions, wire protocol, subscriptions.

This package turns the in-process :class:`repro.api.Database` into a
served system (ROADMAP item 1):

* :mod:`repro.server.protocol` — the length-prefixed JSON wire protocol
  (framing, request/reply/error/push message shapes, typed errors);
* :mod:`repro.server.server` — the asyncio :class:`ViewServer`: many
  concurrent client sessions over one database, all mutations serialized
  through a single-writer apply loop, push-based view subscriptions with
  per-subscriber bounded queues and an explicit backpressure policy
  (coalesce-to-latest or disconnect-with-gap), a plain-HTTP ``/metrics``
  Prometheus scrape endpoint, and graceful shutdown that cuts a final
  checkpoint on durable databases;
* :mod:`repro.server.client` — the blocking :class:`ReproClient` used by
  tests, examples and scripts (threads may share one client; requests
  are matched to replies by message id, pushes land on per-subscription
  queues).

The serving layer is resilient end to end (protocol version 2):
reconnecting clients (``ReproClient(..., reconnect=True)``) retry
mutations safely under idempotency tokens the server deduplicates (the
ledger survives durable restarts inside WAL records and checkpoints),
subscriptions resume across disconnects via ``from_sequence`` backlog
replay or explicit reset frames, and the server protects itself with
per-request deadlines, idle-session reaping and max-sessions/
max-inflight admission control that sheds with typed ``overloaded``
errors.  ``tests/netfaults.py`` holds the ChaosProxy network
fault-injection harness that proves all of it.

``python -m repro.server`` starts a standalone server (see
:mod:`repro.server.__main__` for the flags).
"""

from .client import ClientSubscription, ConnectionClosed, ReproClient, \
    ServerError
from .protocol import ProtocolError
from .server import DeadlineExceeded, Overloaded, ServerHandle, \
    ViewServer, start_in_thread

__all__ = ["ClientSubscription", "ConnectionClosed", "DeadlineExceeded",
           "Overloaded", "ProtocolError", "ReproClient", "ServerError",
           "ServerHandle", "ViewServer", "start_in_thread"]
