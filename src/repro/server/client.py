"""The blocking client: request/reply over the wire, push queues.

:class:`ReproClient` holds one socket.  A daemon reader thread decodes
incoming frames and routes them: frames carrying an ``id`` answer a
pending request (the issuing thread is woken), ``delta``/``gap`` push
frames land on the :class:`ClientSubscription` queue they belong to.
Multiple application threads may share one client — writes are locked,
and each in-flight request has its own wait slot — which is exactly how
the stress tests drive concurrent sessions.

Typical use::

    with ReproClient(host, port) as client:
        client.load("bib.xml", BIB)
        client.create_view("titles", QUERY)
        sub = client.subscribe("titles")
        client.update(['FOR $b IN document("bib.xml")/bib '
                       'UPDATE $b { DELETE book[1] }'])
        frame = sub.get(timeout=5)     # the pushed delta
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Optional

from .protocol import MAX_FRAME, FrameDecoder, ProtocolError, encode_frame

__all__ = ["ClientSubscription", "ConnectionClosed", "ReproClient",
           "ServerError"]


class ConnectionClosed(ConnectionError):
    """The server went away (EOF, reset, or client-side close)."""


class ServerError(Exception):
    """An error frame answering one of this client's requests."""

    def __init__(self, code: str, message: str, detail: dict):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.detail = detail


class ClientSubscription:
    """Push frames of one subscription, in arrival order.

    ``get`` blocks for the next frame; iteration yields frames until
    the subscription (or connection) closes.  Frames are raw protocol
    dicts: ``type`` is ``"delta"`` or ``"gap"``; a delta with
    ``reset=true`` means the mirror is stale — re-read the view.
    """

    _CLOSED = object()

    def __init__(self, client: "ReproClient", sub_id: int, view: str,
                 baseline_sequence: int):
        self._client = client
        self.id = sub_id
        self.view = view
        self.last_sequence = baseline_sequence
        self.frames: "queue.Queue" = queue.Queue()
        self.closed = False

    def get(self, timeout: Optional[float] = None) -> dict:
        """The next push frame; raises :class:`queue.Empty` on timeout,
        :class:`ConnectionClosed` once the stream ends."""
        if self.closed and self.frames.empty():
            raise ConnectionClosed("subscription is closed")
        frame = self.frames.get(timeout=timeout)
        if frame is self._CLOSED:
            raise ConnectionClosed("subscription is closed")
        sequence = frame.get("sequence")
        if isinstance(sequence, int):
            self.last_sequence = sequence
        return frame

    def __iter__(self):
        while True:
            try:
                yield self.get()
            except ConnectionClosed:
                return

    def cancel(self) -> None:
        """Unsubscribe server-side and close the local queue."""
        if not self.closed:
            try:
                self._client.request("unsubscribe", subscription=self.id)
            except (ConnectionClosed, ServerError):
                pass
        self._close()

    def _close(self) -> None:
        if not self.closed:
            self.closed = True
            self.frames.put(self._CLOSED)


class _Waiter:
    __slots__ = ("event", "frame")

    def __init__(self):
        self.event = threading.Event()
        self.frame = None


class ReproClient:
    """A blocking connection to a :class:`~repro.server.ViewServer`."""

    def __init__(self, host: str, port: int, *,
                 timeout: Optional[float] = 30.0,
                 max_frame: int = MAX_FRAME, hello: bool = True):
        self.timeout = timeout
        self.max_frame = max_frame
        self._sock = socket.create_connection((host, port), timeout=10.0)
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._next_id = 0
        self._waiters: dict[int, _Waiter] = {}
        self._subscriptions: dict[int, ClientSubscription] = {}
        self._orphan_pushes: dict[int, list] = {}
        self._closed = False
        self._close_reason: Optional[str] = None
        self._reader = threading.Thread(target=self._read_loop,
                                        daemon=True, name="repro-client")
        self._reader.start()
        self.server_info: dict = {}
        if hello:
            self.server_info = self.request("hello")

    # -- the reader thread -------------------------------------------------------------

    def _read_loop(self) -> None:
        decoder = FrameDecoder(self.max_frame)
        reason = "connection closed by server"
        try:
            while True:
                data = self._sock.recv(65536)
                if not data:
                    break
                for frame in decoder.feed(data):
                    self._route(frame)
        except (OSError, ProtocolError) as exc:
            if not self._closed:
                reason = f"connection failed: {exc}"
        finally:
            self._shutdown(reason)

    def _route(self, frame: dict) -> None:
        if "id" in frame and frame["id"] is not None:
            with self._state_lock:
                waiter = self._waiters.pop(frame["id"], None)
            if waiter is not None:
                waiter.frame = frame
                waiter.event.set()
            return
        sub_id = frame.get("subscription")
        if isinstance(sub_id, int):
            with self._state_lock:
                subscription = self._subscriptions.get(sub_id)
                if subscription is None:
                    # Push raced ahead of the subscribe() caller
                    # registering its queue — park it.
                    self._orphan_pushes.setdefault(sub_id, []) \
                        .append(frame)
                    return
            subscription.frames.put(frame)
            if frame.get("type") == "gap":
                subscription._close()
        # id-less error frames (connection-level) surface via _shutdown
        # when the server closes; anything else is ignorable noise.

    def _shutdown(self, reason: str) -> None:
        with self._state_lock:
            if self._close_reason is None:
                self._close_reason = reason
            waiters = list(self._waiters.values())
            self._waiters.clear()
            subscriptions = list(self._subscriptions.values())
        for waiter in waiters:
            waiter.event.set()      # frame stays None -> ConnectionClosed
        for subscription in subscriptions:
            subscription._close()
        try:
            self._sock.close()
        except OSError:
            pass

    # -- requests ----------------------------------------------------------------------

    def request(self, op: str, **params) -> dict:
        """One request/reply round trip; returns the reply's ``result``
        or raises :class:`ServerError` / :class:`ConnectionClosed`."""
        with self._state_lock:
            if self._close_reason is not None:
                raise ConnectionClosed(self._close_reason)
            self._next_id += 1
            request_id = self._next_id
            waiter = _Waiter()
            self._waiters[request_id] = waiter
        frame = {"id": request_id, "op": op}
        frame.update(params)
        data = encode_frame(frame, self.max_frame)
        try:
            with self._send_lock:
                self._sock.sendall(data)
        except OSError as exc:
            with self._state_lock:
                self._waiters.pop(request_id, None)
            raise ConnectionClosed(f"send failed: {exc}") from exc
        if not waiter.event.wait(self.timeout):
            with self._state_lock:
                self._waiters.pop(request_id, None)
            raise TimeoutError(
                f"no reply to {op!r} within {self.timeout}s")
        if waiter.frame is None:
            raise ConnectionClosed(self._close_reason
                                   or "connection closed")
        if waiter.frame.get("type") == "error":
            raise ServerError(waiter.frame.get("code", "unknown"),
                              waiter.frame.get("message", ""),
                              waiter.frame)
        return waiter.frame.get("result", {})

    # -- convenience wrappers over the op catalogue ------------------------------------

    def load(self, name: str, xml: str) -> dict:
        return self.request("load", name=name, xml=xml)

    def documents(self) -> list:
        return self.request("documents")["documents"]

    def create_view(self, name: str, query: str,
                    policy="immediate") -> dict:
        return self.request("create_view", name=name, query=query,
                            policy=policy)

    def drop_view(self, name: str) -> dict:
        return self.request("drop_view", name=name)

    def views(self) -> list:
        return self.request("views")["views"]

    def read(self, view: str) -> dict:
        """``{"xml": ..., "sequence": ...}`` — the flushed view."""
        return self.request("read", view=view)

    def query(self, xquery: str) -> str:
        return self.request("query", xquery=xquery)["xml"]

    def execute(self, statement: str) -> dict:
        return self.request("execute", statement=statement)

    def update(self, statements: list) -> dict:
        """Submit a list of XQuery-update strings as one transactional
        batch; the reply carries the server's ``applied_index``."""
        return self.request("update", statements=list(statements))

    def subscribe(self, view: str, *, mode: str = "coalesce",
                  limit: Optional[int] = None) -> ClientSubscription:
        params = {"view": view, "mode": mode}
        if limit is not None:
            params["limit"] = limit
        result = self.request("subscribe", **params)
        sub_id = result["subscription"]
        subscription = ClientSubscription(self, sub_id, view,
                                          result["sequence"])
        with self._state_lock:
            self._subscriptions[sub_id] = subscription
            parked = self._orphan_pushes.pop(sub_id, [])
        for frame in parked:
            subscription.frames.put(frame)
        return subscription

    def explain(self, view: str) -> str:
        return self.request("explain", view=view)["text"]

    def metrics(self) -> dict:
        return self.request("metrics")["metrics"]

    def checkpoint(self) -> int:
        return self.request("checkpoint")["lsn"]

    def ping(self) -> None:
        self.request("ping")

    def close(self) -> None:
        """Say goodbye (best effort) and tear the connection down."""
        if self._closed:
            return
        self._closed = True
        try:
            self.request("bye")
        except (ConnectionClosed, ServerError, TimeoutError, OSError):
            pass
        self._shutdown("closed by client")
        self._reader.join(timeout=5.0)

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
