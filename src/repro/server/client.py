"""The blocking client: request/reply over the wire, push queues.

:class:`ReproClient` holds one socket.  A daemon reader thread decodes
incoming frames and routes them: frames carrying an ``id`` answer a
pending request (the issuing thread is woken), ``delta``/``gap`` push
frames land on the :class:`ClientSubscription` queue they belong to.
Multiple application threads may share one client — writes are locked,
and each in-flight request has its own wait slot — which is exactly how
the stress tests drive concurrent sessions.

Resilience is opt-in via ``reconnect=True``:

* A lost connection is transparently re-established with capped
  exponential backoff; in-flight requests fail over to the retry loop
  instead of surfacing :class:`ConnectionClosed`.
* Every mutating request carries an idempotency token
  ``(client, seq)`` so resends after a timeout or disconnect are safe:
  the server answers a replayed token from its dedup ledger with the
  *original* ``applied_index`` instead of applying twice.
* Live subscriptions resume on the new connection with
  ``subscribe(from_sequence=...)``; the server replays the missed
  refreshes from its backlog or sends one explicit reset frame, and
  the client suppresses any overlap — consumers observe a contiguous
  or explicitly-reset sequence, never a duplicate and never a silent
  gap.
* ``overloaded`` errors honour the server's ``retry_after`` hint, and
  ``deadline`` errors (the request expired unexecuted) retry as well.

Typical use::

    with ReproClient(host, port, reconnect=True) as client:
        client.load("bib.xml", BIB)
        client.create_view("titles", QUERY)
        sub = client.subscribe("titles")
        client.update(['FOR $b IN document("bib.xml")/bib '
                       'UPDATE $b { DELETE book[1] }'])
        frame = sub.get(timeout=5)     # the pushed delta
"""

from __future__ import annotations

import queue
import random
import socket
import threading
import time
import uuid
from typing import Optional

from .protocol import MAX_FRAME, FrameDecoder, ProtocolError, encode_frame

__all__ = ["ClientSubscription", "ConnectionClosed", "MUTATING_OPS",
           "ReproClient", "ServerError"]

#: ops that change database state — these carry idempotency tokens when
#: the client runs with ``reconnect=True``
MUTATING_OPS = frozenset({"load", "create_view", "drop_view", "execute",
                          "update"})

#: cap on pushes parked for a subscription id we don't know (yet)
_ORPHAN_LIMIT = 256


class ConnectionClosed(ConnectionError):
    """The server went away (EOF, reset, or client-side close)."""


class ServerError(Exception):
    """An error frame answering one of this client's requests."""

    def __init__(self, code: str, message: str, detail: dict):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.detail = detail


class ClientSubscription:
    """Push frames of one subscription, in arrival order.

    ``get`` blocks for the next frame; iteration yields frames until
    the subscription (or connection) closes.  Frames are raw protocol
    dicts: ``type`` is ``"delta"`` or ``"gap"``; a delta with
    ``reset=true`` means the mirror is stale — re-read the view.  On a
    reconnecting client the subscription survives disconnects: resumed
    frames carry ``resumed=true`` and cover the downtime (replay or
    reset — never a silent gap).
    """

    _CLOSED = object()

    def __init__(self, client: "ReproClient", sub_id: int, view: str,
                 baseline_sequence: int, params: Optional[dict] = None):
        self._client = client
        self.id = sub_id
        self.view = view
        self.last_sequence = baseline_sequence
        #: newest sequence placed on the local queue — the resume point
        #: (and the duplicate-suppression watermark) after a reconnect
        self.last_enqueued = baseline_sequence
        self.frames: "queue.Queue" = queue.Queue()
        self.closed = False
        self._params = params or {}

    def get(self, timeout: Optional[float] = None) -> dict:
        """The next push frame; raises :class:`queue.Empty` on timeout,
        :class:`ConnectionClosed` once the stream ends."""
        if self.closed and self.frames.empty():
            raise ConnectionClosed("subscription is closed")
        frame = self.frames.get(timeout=timeout)
        if frame is self._CLOSED:
            # Leave the sentinel in place so every later (or
            # concurrent) caller raises instead of hanging forever.
            self.frames.put(self._CLOSED)
            raise ConnectionClosed("subscription is closed")
        sequence = frame.get("sequence")
        if isinstance(sequence, int):
            self.last_sequence = sequence
        return frame

    def __iter__(self):
        while True:
            try:
                yield self.get()
            except ConnectionClosed:
                return

    def cancel(self) -> None:
        """Unsubscribe server-side and close the local queue.  Safe to
        race an in-flight push and safe to call more than once."""
        if not self.closed:
            try:
                self._client.request("unsubscribe", subscription=self.id)
            except (ConnectionClosed, ServerError, TimeoutError):
                pass
        self._client._forget_subscription(self.id)
        self._close()

    def _close(self) -> None:
        if not self.closed:
            self.closed = True
            self.frames.put(self._CLOSED)


class _Waiter:
    __slots__ = ("event", "frame")

    def __init__(self):
        self.event = threading.Event()
        self.frame = None


def _close_socket(sock) -> None:
    """Force a socket closed so any thread blocked in recv unblocks."""
    if sock is None:
        return
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class ReproClient:
    """A blocking connection to a :class:`~repro.server.ViewServer`.

    ``timeout`` bounds each request/reply round trip and
    ``connect_timeout`` bounds each TCP connect (initial and, with
    ``reconnect=True``, every reconnect attempt).  ``retry_window``
    bounds the total time one :meth:`request` spends retrying across
    disconnects/timeouts/overload before giving up.
    """

    def __init__(self, host: str, port: int, *,
                 timeout: Optional[float] = 30.0,
                 max_frame: int = MAX_FRAME, hello: bool = True,
                 connect_timeout: float = 10.0, reconnect: bool = False,
                 max_retries: int = 8, backoff: float = 0.05,
                 backoff_cap: float = 2.0,
                 retry_window: Optional[float] = 60.0,
                 client_id: Optional[str] = None,
                 rng: Optional[random.Random] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame = max_frame
        self.connect_timeout = connect_timeout
        self.reconnect = reconnect
        self.max_retries = max(0, max_retries)
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.retry_window = retry_window
        self.client_id = client_id or f"c-{uuid.uuid4().hex[:12]}"
        self._rng = rng if rng is not None else random.Random()
        self._do_hello = hello
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._next_id = 0
        self._mutation_seq = 0
        self._waiters: dict[int, _Waiter] = {}
        self._subscriptions: dict[int, ClientSubscription] = {}
        self._orphan_pushes: dict[int, list] = {}
        self._closed = False
        self._close_reason: Optional[str] = None
        self._reconnecting = False
        self._connected = threading.Event()
        self._conn_gen = 0
        self._sock = None
        self._reader: Optional[threading.Thread] = None
        self.server_info: dict = {}
        self.reconnects = 0     # completed reconnect round trips
        self._establish(resume=False)

    # -- connection management -----------------------------------------------------------

    def _establish(self, resume: bool) -> None:
        """Connect, start a reader, handshake, resubscribe (on resume),
        then open the gate for waiting requests."""
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.connect_timeout)
        sock.settimeout(None)
        with self._state_lock:
            if self._closed:
                _close_socket(sock)
                raise ConnectionClosed("client is closed")
            self._conn_gen += 1
            generation = self._conn_gen
            self._sock = sock
        reader = threading.Thread(target=self._read_loop,
                                  args=(sock, generation),
                                  daemon=True, name="repro-client")
        self._reader = reader
        reader.start()
        try:
            if self._do_hello or resume:
                params = {"client": self.client_id}
                if resume:
                    params["resume"] = True
                self.server_info = self._raw_request("hello", **params)
            if resume:
                self._resubscribe()
        except BaseException:
            _close_socket(sock)
            raise
        if resume:
            self.reconnects += 1
        self._connected.set()

    def _resubscribe(self) -> None:
        """Re-register every live subscription on the new connection,
        resuming from its last enqueued sequence."""
        with self._state_lock:
            live = [s for s in self._subscriptions.values()
                    if not s.closed]
        for sub in live:
            params = dict(sub._params, view=sub.view,
                          from_sequence=sub.last_enqueued)
            result = self._raw_request("subscribe", **params)
            new_id = result["subscription"]
            with self._state_lock:
                self._subscriptions.pop(sub.id, None)
                sub.id = new_id
                self._subscriptions[new_id] = sub
                parked = self._orphan_pushes.pop(new_id, [])
            for frame in parked:
                self._enqueue_push(sub, frame)

    def _read_loop(self, sock, generation: int) -> None:
        decoder = FrameDecoder(self.max_frame)
        reason = "connection closed by server"
        try:
            while True:
                data = sock.recv(65536)
                if not data:
                    break
                for frame in decoder.feed(data):
                    self._route(frame)
        except (OSError, ProtocolError) as exc:
            if not self._closed:
                reason = f"connection failed: {exc}"
        finally:
            self._on_connection_lost(generation, reason)

    def _on_connection_lost(self, generation: int, reason: str) -> None:
        with self._state_lock:
            if generation != self._conn_gen:
                return          # a newer connection already took over
            stale = self._sock
        if self._closed or not self.reconnect:
            self._shutdown(reason)
            return
        self._connected.clear()
        self._fail_waiters()
        _close_socket(stale)
        self._spawn_reconnect()

    def _spawn_reconnect(self) -> None:
        with self._state_lock:
            if self._reconnecting or self._closed:
                return
            self._reconnecting = True
        threading.Thread(target=self._reconnect_loop, daemon=True,
                         name="repro-client-reconnect").start()

    def _reconnect_loop(self) -> None:
        delay = max(self.backoff, 0.001)
        try:
            while not self._closed:
                try:
                    self._establish(resume=True)
                    return
                except (OSError, ConnectionClosed, ServerError,
                        TimeoutError, ProtocolError):
                    pass
                # capped exponential backoff with jitter, so a swarm of
                # clients doesn't stampede a recovering server
                time.sleep(min(delay, self.backoff_cap)
                           * (0.5 + self._rng.random()))
                delay = min(delay * 2, self.backoff_cap)
        finally:
            with self._state_lock:
                self._reconnecting = False

    def _fail_waiters(self) -> None:
        with self._state_lock:
            waiters = list(self._waiters.values())
            self._waiters.clear()
        for waiter in waiters:
            waiter.event.set()  # frame stays None -> ConnectionClosed

    def drop_connection(self) -> None:
        """Fault-injection hook: sever the TCP connection without
        closing the client (benchmarks/tests exercise the reconnect
        path with this)."""
        with self._state_lock:
            sock = self._sock
        _close_socket(sock)

    # -- the reader thread ---------------------------------------------------------------

    def _route(self, frame: dict) -> None:
        if "id" in frame and frame["id"] is not None:
            with self._state_lock:
                waiter = self._waiters.pop(frame["id"], None)
            if waiter is not None:
                waiter.frame = frame
                waiter.event.set()
            return
        sub_id = frame.get("subscription")
        if isinstance(sub_id, int):
            with self._state_lock:
                subscription = self._subscriptions.get(sub_id)
                if subscription is None:
                    # Push raced ahead of the subscribe() caller
                    # registering its queue — park it (bounded).
                    parked = self._orphan_pushes.setdefault(sub_id, [])
                    if len(parked) < _ORPHAN_LIMIT:
                        parked.append(frame)
                    return
            self._enqueue_push(subscription, frame)
        # id-less error frames (connection-level) surface via _shutdown
        # when the server closes; anything else is ignorable noise.

    def _enqueue_push(self, subscription: ClientSubscription,
                      frame: dict) -> None:
        """Queue one push frame, suppressing resume overlap: a delta at
        or below the watermark is a duplicate of something already
        delivered — unless it is itself a resume frame (which may
        legitimately regress after a non-durable server restart)."""
        if frame.get("type") == "delta":
            sequence = frame.get("sequence")
            if isinstance(sequence, int):
                if frame.get("resumed"):
                    subscription.last_enqueued = sequence
                elif sequence <= subscription.last_enqueued:
                    return
                else:
                    subscription.last_enqueued = sequence
        subscription.frames.put(frame)
        if frame.get("type") == "gap":
            subscription._close()

    def _forget_subscription(self, sub_id: int) -> None:
        with self._state_lock:
            self._subscriptions.pop(sub_id, None)

    def _shutdown(self, reason: str) -> None:
        with self._state_lock:
            if self._close_reason is None:
                self._close_reason = reason
            waiters = list(self._waiters.values())
            self._waiters.clear()
            subscriptions = list(self._subscriptions.values())
            sock = self._sock
        self._connected.set()   # unblock request() gates; they re-check
        for waiter in waiters:
            waiter.event.set()      # frame stays None -> ConnectionClosed
        for subscription in subscriptions:
            subscription._close()
        _close_socket(sock)

    # -- requests ----------------------------------------------------------------------

    def _raw_request(self, op: str, **params) -> dict:
        """One request/reply round trip on the current connection;
        raises :class:`ServerError` / :class:`ConnectionClosed` /
        :class:`TimeoutError` without retrying."""
        with self._state_lock:
            if self._close_reason is not None:
                raise ConnectionClosed(self._close_reason)
            self._next_id += 1
            request_id = self._next_id
            waiter = _Waiter()
            self._waiters[request_id] = waiter
            sock = self._sock
        frame = {"id": request_id, "op": op}
        frame.update(params)
        data = encode_frame(frame, self.max_frame)
        try:
            with self._send_lock:
                sock.sendall(data)
        except OSError as exc:
            with self._state_lock:
                self._waiters.pop(request_id, None)
            raise ConnectionClosed(f"send failed: {exc}") from exc
        if not waiter.event.wait(self.timeout):
            with self._state_lock:
                self._waiters.pop(request_id, None)
            raise TimeoutError(
                f"no reply to {op!r} within {self.timeout}s")
        if waiter.frame is None:
            raise ConnectionClosed(self._close_reason
                                   or "connection lost")
        if waiter.frame.get("type") == "error":
            raise ServerError(waiter.frame.get("code", "unknown"),
                              waiter.frame.get("message", ""),
                              waiter.frame)
        return waiter.frame.get("result", {})

    def request(self, op: str, **params) -> dict:
        """One request; returns the reply's ``result`` or raises
        :class:`ServerError` / :class:`ConnectionClosed`.

        With ``reconnect=True`` this is the resilient path: mutating
        ops get an idempotency token (making resends exactly-once on
        the server), and disconnects, reply timeouts, ``overloaded``
        and ``deadline`` errors retry with exponential backoff + jitter
        until ``max_retries``/``retry_window`` runs out.
        """
        if self._closed:
            raise ConnectionClosed(self._close_reason
                                   or "client is closed")
        if not self.reconnect or op == "bye":
            return self._raw_request(op, **params)
        if op in MUTATING_OPS and "client" not in params:
            with self._state_lock:
                self._mutation_seq += 1
                params = dict(params, client=self.client_id,
                              seq=self._mutation_seq)
        deadline = None if self.retry_window is None \
            else time.monotonic() + self.retry_window
        delay = max(self.backoff, 0.001)
        last_exc: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            remaining = None if deadline is None \
                else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                break
            if not self._connected.wait(
                    remaining if remaining is not None else 30.0):
                last_exc = ConnectionClosed(
                    "reconnect did not complete within the retry "
                    "window")
                break
            if self._closed:
                raise ConnectionClosed(self._close_reason
                                       or "client is closed")
            pause = min(delay, self.backoff_cap) \
                * (0.5 + self._rng.random())
            try:
                send = params if attempt == 0 \
                    else dict(params, retry=attempt)
                return self._raw_request(op, **send)
            except ConnectionClosed as exc:
                if self._closed:
                    raise
                last_exc = exc
            except TimeoutError as exc:
                # The reply may be lost or still queued server-side;
                # the token (or read-only semantics) makes the resend
                # safe either way.
                if self._closed:
                    raise
                last_exc = exc
            except ServerError as exc:
                if exc.code == "overloaded":
                    hinted = exc.detail.get("retry_after")
                    if isinstance(hinted, (int, float)) and hinted > 0:
                        pause = max(pause, float(hinted))
                elif exc.code != "deadline":
                    raise   # a real answer — deterministic, don't retry
                last_exc = exc
            time.sleep(pause)
            delay = min(delay * 2, self.backoff_cap)
        assert last_exc is not None
        raise last_exc

    # -- convenience wrappers over the op catalogue ------------------------------------

    def load(self, name: str, xml: str) -> dict:
        return self.request("load", name=name, xml=xml)

    def documents(self) -> list:
        return self.request("documents")["documents"]

    def create_view(self, name: str, query: str,
                    policy="immediate") -> dict:
        return self.request("create_view", name=name, query=query,
                            policy=policy)

    def drop_view(self, name: str) -> dict:
        return self.request("drop_view", name=name)

    def views(self) -> list:
        return self.request("views")["views"]

    def read(self, view: str) -> dict:
        """``{"xml": ..., "sequence": ...}`` — the flushed view."""
        return self.request("read", view=view)

    def query(self, xquery: str) -> str:
        return self.request("query", xquery=xquery)["xml"]

    def execute(self, statement: str) -> dict:
        return self.request("execute", statement=statement)

    def update(self, statements: list) -> dict:
        """Submit a list of XQuery-update strings as one transactional
        batch; the reply carries the server's ``applied_index``."""
        return self.request("update", statements=list(statements))

    def subscribe(self, view: str, *, mode: str = "coalesce",
                  limit: Optional[int] = None) -> ClientSubscription:
        params = {"view": view, "mode": mode}
        if limit is not None:
            params["limit"] = limit
        result = self.request("subscribe", **params)
        sub_id = result["subscription"]
        subscription = ClientSubscription(self, sub_id, view,
                                          result["sequence"],
                                          params=dict(params))
        with self._state_lock:
            self._subscriptions[sub_id] = subscription
            parked = self._orphan_pushes.pop(sub_id, [])
        for frame in parked:
            self._enqueue_push(subscription, frame)
        return subscription

    def explain(self, view: str) -> str:
        return self.request("explain", view=view)["text"]

    def metrics(self) -> dict:
        return self.request("metrics")["metrics"]

    def checkpoint(self) -> int:
        return self.request("checkpoint")["lsn"]

    def ping(self) -> None:
        self.request("ping")

    def close(self) -> None:
        """Say goodbye (best effort) and tear the connection down.
        Idempotent, safe under concurrent callers, and never leaves the
        reader thread stuck: the socket is force-closed (shutdown +
        close) so a blocked ``recv`` always unblocks."""
        with self._state_lock:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
        if already:
            return
        if self._connected.is_set():
            try:
                self._raw_request("bye")
            except (ConnectionClosed, ServerError, TimeoutError,
                    OSError, ProtocolError):
                pass
        self._shutdown("closed by client")
        reader = self._reader
        if reader is not None \
                and reader is not threading.current_thread():
            reader.join(timeout=5.0)

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
