"""The wire protocol: length-prefixed JSON frames.

Every message on a client connection — request, reply, error, push — is
one *frame*: a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding one object.  Frames never nest
and never span; a reader that knows the prefix can skip messages it
does not understand.  The full message catalogue lives in
``docs/WIRE_PROTOCOL.md``; the shapes in brief:

* **request** (client → server): ``{"id": n, "op": "...", ...params}``.
  ``id`` is a client-chosen integer echoed on the reply; ids must be
  unique among the client's in-flight requests.  Mutating requests may
  additionally carry an **idempotency token** — ``"client"`` (a string
  the client picked for its lifetime) plus ``"seq"`` (a per-client
  monotone integer) — letting the server deduplicate retries; resends
  mark themselves with ``"retry": k``.
* **reply** (server → client): ``{"id": n, "type": "reply",
  "result": {...}}``.  A reply replayed from the server's dedup ledger
  carries ``"deduped": true`` inside ``result``.
* **error** (server → client): ``{"id": n, "type": "error", "code":
  "...", "message": "...", ...detail}`` — ``id`` is ``null`` for
  connection-level failures that answer no particular request.
  ``overloaded`` errors carry ``retry_after`` (seconds); ``bad_frame``
  answers a malformed frame and is the connection's last frame.
* **push** (server → client, unsolicited): ``{"type": "delta", ...}``
  frames carry one view refresh to a subscription; ``{"type": "gap",
  ...}`` announces dropped refreshes before the server disconnects a
  subscriber that chose the strict backpressure policy.  A delta with
  ``"resumed": true`` answers a ``subscribe(from_sequence=...)``
  resume — either a backlog replay or an explicit reset covering the
  missed range (never a silent gap).

The module is dependency-free in both directions (the asyncio server
and the blocking client share it), and the delta payload inside a push
frame is exactly the JSON-ready record list captured by the Apply phase
(:mod:`repro.apply.deep_union`) — no re-serialization on the way out.
"""

from __future__ import annotations

import json
import struct
from typing import Optional

__all__ = ["FrameDecoder", "MAX_FRAME", "PROTOCOL_VERSION",
           "ProtocolError", "dedup_token", "delta_frame", "encode_frame",
           "error_frame", "gap_frame", "reply_frame", "resume_reset_frame"]

#: protocol revision announced by ``hello`` and checked by clients.
#: Version 2 (backward compatible with 1) adds idempotency tokens on
#: mutating requests, ``subscribe(from_sequence=...)`` resume,
#: ``deadline_ms`` deadlines and the ``overloaded``/``bad_frame``/
#: ``deadline`` error codes.
PROTOCOL_VERSION = 2

#: default ceiling for one frame's JSON body (64 MiB); both sides
#: refuse larger frames instead of buffering unboundedly
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size


class ProtocolError(Exception):
    """A malformed or oversized frame (either direction)."""


def encode_frame(message: dict, max_frame: int = MAX_FRAME) -> bytes:
    """One message as its wire bytes (header + JSON body)."""
    body = json.dumps(message, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    if len(body) > max_frame:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {max_frame}-byte "
            f"limit")
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame decoder: feed bytes, collect decoded messages.

    Carries partial frames across ``feed`` calls, so it works unchanged
    over stream sockets, asyncio transports and byte-at-a-time tests.
    """

    def __init__(self, max_frame: int = MAX_FRAME):
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        """Absorb ``data``; return every now-complete message in order."""
        self._buffer.extend(data)
        messages: list[dict] = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self.max_frame:
                raise ProtocolError(
                    f"incoming frame of {length} bytes exceeds the "
                    f"{self.max_frame}-byte limit")
            end = HEADER_SIZE + length
            if len(self._buffer) < end:
                return messages
            body = bytes(self._buffer[HEADER_SIZE:end])
            del self._buffer[:end]
            try:
                message = json.loads(body)
            except ValueError as exc:
                raise ProtocolError(f"frame body is not JSON: {exc}") \
                    from exc
            if not isinstance(message, dict):
                raise ProtocolError(
                    f"frame body must be a JSON object, got "
                    f"{type(message).__name__}")
            messages.append(message)


# -- message constructors ----------------------------------------------------------------


def reply_frame(request_id, result: dict) -> dict:
    return {"id": request_id, "type": "reply", "result": result}


def error_frame(request_id, code: str, message: str, **detail) -> dict:
    frame = {"id": request_id, "type": "error", "code": code,
             "message": message}
    frame.update(detail)
    return frame


def delta_frame(subscription_id: int, event) -> dict:
    """A push frame for one :class:`~repro.multiview.RefreshEvent`.

    ``mutations`` is the Apply phase's captured record list (or ``null``
    when the refresh recomputed the extent / capture yielded nothing to
    replay); ``reset`` tells the subscriber its mirror is stale and must
    be rebuilt by re-reading the view.  ``coalesced`` (added in place by
    the server's backpressure path, never by this constructor) marks a
    frame standing for the range ``from_sequence..sequence``.
    """
    mutations = event.mutations
    reset = event.reason == "recompute" or mutations is None
    return {"type": "delta",
            "subscription": subscription_id,
            "view": event.view,
            "sequence": event.sequence,
            "reason": event.reason,
            "trees": event.trees,
            "delta_tuples": event.delta_tuples,
            "reset": reset,
            "mutations": None if reset else list(mutations)}


def gap_frame(subscription_id: int, view: str, after_sequence: int,
              sequence: int, dropped: int) -> dict:
    """The strict policy's parting frame: refreshes
    ``after_sequence+1 .. sequence`` were dropped; the connection closes
    after this frame."""
    return {"type": "gap",
            "subscription": subscription_id,
            "view": view,
            "after_sequence": after_sequence,
            "sequence": sequence,
            "dropped": dropped}


def resume_reset_frame(subscription_id: int, view: str,
                       from_sequence: int, sequence: int) -> dict:
    """The resume fallback: the backlog no longer reaches back to the
    subscriber's ``from_sequence``, so one explicit reset frame stands
    for the whole missed range and the client re-reads the view.  Never
    a silent gap: the frame names exactly what it covers."""
    return {"type": "delta",
            "subscription": subscription_id,
            "view": view,
            "sequence": sequence,
            "reason": "resume",
            "trees": 0,
            "delta_tuples": 0,
            "reset": True,
            "coalesced": True,
            "resumed": True,
            "from_sequence": min(from_sequence, sequence),
            "mutations": None}


def dedup_token(frame: dict) -> Optional[tuple]:
    """The request's idempotency token ``(client, seq)``, or ``None``
    when the client sent none; raises on a half-present or mistyped
    token (silently ignoring one would break at-most-once)."""
    client = frame.get("client")
    seq = frame.get("seq")
    if client is None and seq is None:
        return None
    if not isinstance(client, str) or isinstance(seq, bool) \
            or not isinstance(seq, int):
        raise ProtocolError(
            "an idempotency token needs a string 'client' and an "
            "integer 'seq'")
    return (client, seq)


def validate_request(frame: dict) -> tuple[int, str]:
    """Check the request envelope; returns ``(id, op)`` or raises."""
    request_id = frame.get("id")
    if not isinstance(request_id, int):
        raise ProtocolError("request is missing an integer 'id'")
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request is missing a string 'op'")
    return request_id, op


_MISSING = object()


def param(frame: dict, name: str, kind, default=_MISSING):
    """One typed request parameter; raises :class:`ProtocolError` naming
    the offending parameter when absent (and no default) or mistyped."""
    value = frame.get(name, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise ProtocolError(f"request needs a {name!r} parameter")
        return default
    if kind is int and isinstance(value, bool):
        raise ProtocolError(f"parameter {name!r} must be an int")
    if not isinstance(value, kind):
        expected = (kind.__name__ if isinstance(kind, type)
                    else "/".join(k.__name__ for k in kind))
        raise ProtocolError(f"parameter {name!r} must be {expected}")
    return value
