"""The asyncio ``ViewServer``: many sessions, one single-writer database.

Concurrency model — everything interesting happens on one event-loop
thread:

* Every client connection is a :class:`_Session` with a reader task
  (decode frames, dispatch requests) and a writer task (drain the
  session's outbound queue to the socket).
* Every database-touching operation — mutations *and* reads — is a job
  submitted to the **apply loop**, a single task consuming an
  :class:`asyncio.Queue`.  Jobs run one at a time on the loop thread,
  so the engine only ever sees serial access: updates from concurrent
  sessions interleave at batch granularity, and a read observes a full
  snapshot (never a half-applied batch).  Mutating jobs stamp a
  monotone ``applied_index`` returned on the reply, which is the total
  order clients can replay against an oracle.
* View subscriptions are plain :meth:`Database.subscribe` callbacks
  (``deliver_mutations=True``).  They fire synchronously inside the
  apply job that flushed the view, on the loop thread, and enqueue one
  push frame per refresh onto each subscriber's session queue — so
  enqueue order equals refresh order equals wire order.

Backpressure: each subscriber carries a bound on frames queued but not
yet written.  A slow consumer (socket full, client not reading) makes
the writer task block in ``drain()`` while refreshes keep arriving;
when a subscriber's ``in_flight`` count hits its limit the server
applies the policy the client chose at subscribe time:

* ``"coalesce"`` (default) — fold the new refresh into the newest
  still-queued delta frame *in place*: the frame becomes a
  ``coalesced`` reset covering ``from_sequence..sequence`` and the
  client re-reads the view.  No frame is dropped silently; memory per
  subscriber stays bounded.
* ``"disconnect"`` — push one ``gap`` frame naming the dropped range,
  then close the connection.  For mirrors that must never miss a
  delta and prefer death to staleness.

Resilience (the serving half of the durability story):

* **Idempotent retries** — mutating requests may carry a
  ``(client, seq)`` token; the server keeps a bounded per-client dedup
  ledger of replies and answers a retried token from the ledger (with
  its *original* ``applied_index``) instead of double-applying.  On a
  durable database the token is stamped into the same WAL record as
  the batch (``DurabilityManager.stamp``) and the ledger rides in
  checkpoints, so dedup survives a ``kill -9`` restart.
* **Subscription resume** — ``subscribe(from_sequence=...)`` replays
  missed refreshes from a bounded per-view delta backlog the server
  captures independently of any subscriber, or falls back to one
  explicit reset frame naming the missed range.  Never a silent gap.
* **Protection** — per-request deadlines enforced at the apply loop's
  dequeue point (an expired job is skipped, never half-run), idle
  sessions reaped, and ``max_sessions``/``max_inflight`` admission
  control that sheds with a typed ``overloaded`` + ``retry_after``
  error instead of queuing unboundedly.

Shutdown is graceful: stop accepting, close sessions, drain the apply
loop, cut a final checkpoint when the database is durable.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Optional

from ..api import Database
from ..updates.errors import UpdateError
from .protocol import MAX_FRAME, PROTOCOL_VERSION, FrameDecoder, \
    ProtocolError, dedup_token, delta_frame, encode_frame, error_frame, \
    gap_frame, param, reply_frame, resume_reset_frame, validate_request

__all__ = ["DeadlineExceeded", "Overloaded", "ServerHandle", "ViewServer",
           "start_in_thread"]

#: default per-subscriber bound on queued-but-unwritten push frames
DEFAULT_SUBSCRIBER_LIMIT = 64

#: default per-view resume backlog (refreshes replayable after reconnect)
DEFAULT_BACKLOG = 256

#: dedup ledger bounds: replies remembered per client / clients tracked
LEDGER_PER_CLIENT = 128
LEDGER_CLIENTS = 4096

_BACKPRESSURE_MODES = ("coalesce", "disconnect")


class Overloaded(Exception):
    """Admission control shed this request; retry after ``retry_after``."""

    def __init__(self, retry_after: float):
        super().__init__(f"server overloaded; retry after "
                         f"{retry_after:.2f}s")
        self.retry_after = retry_after


class DeadlineExceeded(Exception):
    """The request's deadline expired while it was queued; it was
    **not** executed (safe to retry)."""


@dataclass
class _CachedError:
    """A remembered error reply (ledger value for a failed mutation).

    Lives at module level so it pickles into durable checkpoints along
    with the rest of the dedup ledger.
    """

    code: str
    message: str
    detail: dict = field(default_factory=dict)


class _ReplayedError(Exception):
    """Internal: a retried token whose first attempt failed — carry the
    remembered error so the dispatcher re-sends it verbatim."""

    def __init__(self, cached: _CachedError):
        super().__init__(cached.message)
        self.cached = cached


class _Subscriber:
    """One ``subscribe`` registration on one session."""

    __slots__ = ("id", "view", "mode", "limit", "in_flight", "newest",
                 "enqueued_sequence", "dropped", "subscription")

    def __init__(self, sub_id: int, view: str, mode: str, limit: int,
                 baseline_sequence: int):
        self.id = sub_id
        self.view = view
        self.mode = mode
        self.limit = limit
        self.in_flight = 0          # frames queued, not yet written
        self.newest = None          # newest still-queued delta frame dict
        self.enqueued_sequence = baseline_sequence
        self.dropped = False
        self.subscription = None    # the Database.subscribe handle


class _Session:
    """One client connection: reader task, writer task, outbound queue."""

    def __init__(self, server: "ViewServer", reader, writer,
                 session_id: int):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.id = session_id
        self.queue: asyncio.Queue = asyncio.Queue()
        self.subscribers: dict[int, _Subscriber] = {}
        self.closing = False
        self.last_active = time.monotonic()
        self.client_id: Optional[str] = None
        self._deadline_ts: Optional[float] = None
        self._tasks: list[asyncio.Task] = []

    def start(self) -> None:
        self._tasks = [asyncio.ensure_future(self._read_loop()),
                       asyncio.ensure_future(self._write_loop())]

    # -- outbound ----------------------------------------------------------------------

    def send(self, frame: dict,
             subscriber: Optional[_Subscriber] = None) -> None:
        """Enqueue one frame (loop thread only; writer task drains)."""
        if self.closing:
            return
        if subscriber is not None:
            subscriber.in_flight += 1
        self.queue.put_nowait((subscriber, frame, time.perf_counter()))
        self.server.metrics.gauge(
            "server_queue_depth",
            "Outbound frames queued across live sessions").inc()

    def deliver(self, subscriber: _Subscriber, event) -> None:
        """One refresh event for one subscriber — the backpressure seam.

        Runs synchronously inside the apply job that flushed the view.
        """
        if subscriber.dropped or self.closing:
            return
        metrics = self.server.metrics
        if subscriber.in_flight >= subscriber.limit:
            if subscriber.mode == "coalesce" and subscriber.newest is not None:
                # Fold into the newest still-queued frame in place.  The
                # writer JSON-encodes at dequeue time on this same loop
                # thread, so the mutation is race-free.
                newest = subscriber.newest
                newest.setdefault("from_sequence", newest["sequence"])
                newest["coalesced"] = True
                newest["sequence"] = event.sequence
                newest["reason"] = event.reason
                newest["trees"] += event.trees
                newest["delta_tuples"] += event.delta_tuples
                newest["reset"] = True
                newest["mutations"] = None
                subscriber.enqueued_sequence = event.sequence
                metrics.counter(
                    "server_pushes_coalesced",
                    "Refreshes folded into a queued frame under "
                    "backpressure").inc()
                return
            # Strict policy (or nothing queued to fold into): announce
            # the gap and cut the connection once the queue drains.
            subscriber.dropped = True
            if subscriber.subscription is not None:
                subscriber.subscription.cancel()
            after = subscriber.enqueued_sequence
            self.send(gap_frame(subscriber.id, subscriber.view, after,
                                event.sequence, event.sequence - after))
            metrics.counter(
                "server_subscribers_dropped",
                "Subscribers disconnected by the strict backpressure "
                "policy").inc()
            return
        frame = delta_frame(subscriber.id, event)
        subscriber.newest = frame
        subscriber.enqueued_sequence = event.sequence
        self.send(frame, subscriber)

    async def _write_loop(self) -> None:
        metrics = self.server.metrics
        try:
            while True:
                item = await self.queue.get()
                if item is None:
                    break
                subscriber, frame, enqueued = item
                if subscriber is not None:
                    subscriber.in_flight -= 1
                    if frame is subscriber.newest:
                        subscriber.newest = None
                data = encode_frame(frame, self.server.max_frame)
                self.writer.write(data)
                await self.writer.drain()
                metrics.gauge("server_queue_depth",
                              "Outbound frames queued across live "
                              "sessions").inc(-1)
                metrics.counter("server_frames_out",
                                "Frames written to clients").inc()
                if subscriber is not None:
                    metrics.histogram(
                        "server_push_lag_seconds",
                        "Refresh-to-socket latency of push frames"
                    ).observe(time.perf_counter() - enqueued)
                if frame.get("type") == "gap":
                    break   # strict policy: the gap frame is the last
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        except ProtocolError:
            pass    # an unencodable outbound frame still closes cleanly
        finally:
            await self.close()

    # -- inbound -----------------------------------------------------------------------

    async def _read_loop(self) -> None:
        decoder = FrameDecoder(self.server.max_frame)
        metrics = self.server.metrics
        drain = False           # True: final frames are queued; let the
        try:                    # writer flush them, then tear down
            while True:
                data = await self.reader.read(65536)
                if not data:
                    break
                self.last_active = time.monotonic()
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    # Garbage on the wire (bad length prefix, non-JSON
                    # body, oversized frame): one typed error, then a
                    # clean disconnect — never an unhandled task error.
                    metrics.counter(
                        "server_bad_frames",
                        "Malformed frames answered with bad_frame").inc()
                    self.send(error_frame(None, "bad_frame", str(exc)))
                    drain = True
                    return
                for frame in frames:
                    metrics.counter("server_frames_in",
                                    "Frames read from clients").inc()
                    if not await self._handle(frame):
                        drain = True    # _handle queued the last frames
                        return
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        except Exception as exc:   # noqa: BLE001 — sessions must survive
            self.send(error_frame(None, "internal",
                                  f"{type(exc).__name__}: {exc}"))
            drain = True
        finally:
            if drain and not self.closing:
                self.queue.put_nowait(None)   # writer drains, then closes
            else:
                await self.close()

    async def _handle(self, frame: dict) -> bool:
        """Dispatch one request; returns False when the session ends
        (the close sentinel is already queued behind the final reply)."""
        try:
            request_id, op = validate_request(frame)
        except ProtocolError as exc:
            self.server.metrics.counter(
                "server_bad_frames",
                "Malformed frames answered with bad_frame").inc()
            self.send(error_frame(None, "bad_frame", str(exc)))
            return False
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            self.send(error_frame(request_id, "bad_request",
                                  f"unknown op {op!r}"))
            return True
        self._deadline_ts = self.server.deadline_for(frame)
        try:
            result = await handler(frame)
        except _ReplayedError as exc:
            cached = exc.cached
            self.send(error_frame(request_id, cached.code, cached.message,
                                  deduped=True, **cached.detail))
        except Overloaded as exc:
            self.send(error_frame(request_id, "overloaded", str(exc),
                                  retry_after=exc.retry_after))
        except DeadlineExceeded as exc:
            self.send(error_frame(request_id, "deadline", str(exc)))
        except ProtocolError as exc:
            self.send(error_frame(request_id, "bad_request", str(exc)))
        except UpdateError as exc:
            self.send(error_frame(request_id, "update", str(exc),
                                  applied=exc.applied))
        except KeyError as exc:
            self.send(error_frame(request_id, "not_found",
                                  str(exc.args[0]) if exc.args
                                  else str(exc)))
        except (ValueError, RuntimeError) as exc:
            self.send(error_frame(request_id, "bad_request", str(exc)))
        except Exception as exc:   # noqa: BLE001 — sessions must survive
            self.send(error_frame(request_id, "internal",
                                  f"{type(exc).__name__}: {exc}"))
        else:
            self.send(reply_frame(request_id, result))
            if op == "bye":
                self.queue.put_nowait(None)   # close after the reply
                return False
        finally:
            self._deadline_ts = None
        return True

    # -- apply-loop access (deadline + idempotency seams) --------------------------------

    async def run(self, job):
        """Submit ``job`` to the apply loop under this request's
        deadline."""
        return await self.server.run(job, deadline_ts=self._deadline_ts)

    async def _mutate(self, frame: dict, job) -> dict:
        """Run a mutating ``job`` with at-most-once semantics.

        Tokenless requests run directly (legacy behaviour).  A tokened
        request first consults the server's dedup ledger — a hit replays
        the remembered reply (marked ``deduped``, with its *original*
        ``applied_index``) without touching the database.  A miss runs
        the job with the token stamped into the same WAL record as the
        mutation, then remembers the reply (or the error) under the
        token.  Shed/expired requests were never executed, so they leave
        no ledger entry and stay safely retryable.
        """
        server = self.server
        token = dedup_token(frame)
        if token is None:
            return await self.run(job)
        if frame.get("retry"):
            server.metrics.counter(
                "server_requests_retried",
                "Mutating requests that arrived marked as retries").inc()
        cached = server.ledger_get(token)
        if cached is not None:
            server.metrics.counter(
                "server_requests_deduped",
                "Retried requests answered from the dedup ledger").inc()
            if isinstance(cached, _CachedError):
                raise _ReplayedError(cached)
            return {**cached, "deduped": True}

        def stamped():
            # Predict the mutation's ticket *inside* the apply job —
            # jobs are serialized, so applied_index cannot move between
            # here and the handler's single bump_applied() call.
            meta = {"c": token[0], "s": token[1],
                    "a": server.applied_index + 1}
            manager = server.db.durability
            if manager is not None:
                with manager.stamp(meta):
                    return job()
            return job()

        try:
            result = await self.run(stamped)
        except (Overloaded, DeadlineExceeded):
            raise               # never executed — must stay retryable
        except UpdateError as exc:
            server.ledger_put(token, _CachedError(
                "update", str(exc), {"applied": exc.applied}))
            raise
        except KeyError as exc:
            server.ledger_put(token, _CachedError(
                "not_found",
                str(exc.args[0]) if exc.args else str(exc)))
            raise
        except (ProtocolError, ValueError, RuntimeError) as exc:
            server.ledger_put(token, _CachedError("bad_request", str(exc)))
            raise
        except Exception as exc:   # noqa: BLE001 — remembered verbatim
            server.ledger_put(token, _CachedError(
                "internal", f"{type(exc).__name__}: {exc}"))
            raise
        server.ledger_put(token, result)
        return result

    # -- request handlers --------------------------------------------------------------

    async def _op_hello(self, frame: dict) -> dict:
        client = param(frame, "client", str, "")
        resume = param(frame, "resume", bool, False)
        if client:
            self.client_id = client
        if resume:
            self.server.metrics.counter(
                "server_reconnects",
                "Sessions re-established by reconnecting clients").inc()
        server = self.server
        db = server.db
        views = await self.run(db.views)
        return {"protocol": PROTOCOL_VERSION, "server": "repro-view-server",
                "session": self.id, "views": views, "durable": db.durable,
                "applied_index": server.applied_index,
                "limits": {"max_sessions": server.max_sessions,
                           "max_inflight": server.max_inflight,
                           "request_timeout": server.request_timeout,
                           "backlog": server.backlog}}

    async def _op_ping(self, frame: dict) -> dict:
        return {}

    async def _op_bye(self, frame: dict) -> dict:
        return {}

    async def _op_load(self, frame: dict) -> dict:
        name = param(frame, "name", str)
        xml = param(frame, "xml", str)

        def job():
            self.server.db.load(name, xml)
            return {"applied_index": self.server.bump_applied(),
                    "documents": self.server.db.documents()}
        return await self._mutate(frame, job)

    async def _op_documents(self, frame: dict) -> dict:
        return {"documents":
                await self.run(self.server.db.documents)}

    async def _op_create_view(self, frame: dict) -> dict:
        name = param(frame, "name", str)
        query = param(frame, "query", str)
        policy = param(frame, "policy", (str, int), "immediate")

        def job():
            self.server.db.create_view(name, query, policy)
            return {"view": name,
                    "applied_index": self.server.bump_applied()}
        return await self._mutate(frame, job)

    async def _op_drop_view(self, frame: dict) -> dict:
        name = param(frame, "name", str)

        def job():
            self.server._drop_backlog(name)
            self.server.db.drop_view(name)
            return {"applied_index": self.server.bump_applied()}
        return await self._mutate(frame, job)

    async def _op_views(self, frame: dict) -> dict:
        db = self.server.db

        def job():
            return [{"name": name,
                     "policy": db.view(name).policy.kind,
                     "pending": db.view(name).pending_trees(),
                     "sequence": db.registry.view(name).refresh_sequence}
                    for name in db.views()]
        return {"views": await self.run(job)}

    async def _op_read(self, frame: dict) -> dict:
        name = param(frame, "view", str)
        db = self.server.db

        def job():
            xml = db.read(name)
            return xml, db.registry.view(name).refresh_sequence
        xml, sequence = await self.run(job)
        return {"view": name, "xml": xml, "sequence": sequence}

    async def _op_query(self, frame: dict) -> dict:
        xquery = param(frame, "xquery", str)
        return {"xml": await self.run(
            lambda: self.server.db.query(xquery))}

    async def _op_execute(self, frame: dict) -> dict:
        statement = param(frame, "statement", str)

        def job():
            self.server.db.execute(statement)
            return {"applied_index": self.server.bump_applied()}
        return await self._mutate(frame, job)

    async def _op_update(self, frame: dict) -> dict:
        statements = param(frame, "statements", list)
        if not all(isinstance(s, str) for s in statements):
            raise ProtocolError(
                "parameter 'statements' must be a list of strings")

        def job():
            with self.server.db.batch():
                for statement in statements:
                    self.server.db.execute(statement)
            return {"applied_index": self.server.bump_applied(),
                    "statements": len(statements)}
        return await self._mutate(frame, job)

    async def _op_subscribe(self, frame: dict) -> dict:
        view = param(frame, "view", str)
        mode = param(frame, "mode", str, "coalesce")
        limit = param(frame, "limit", int, DEFAULT_SUBSCRIBER_LIMIT)
        from_sequence = param(frame, "from_sequence", int, -1)
        if mode not in _BACKPRESSURE_MODES:
            raise ProtocolError(
                f"parameter 'mode' must be one of {_BACKPRESSURE_MODES}")
        if limit < 1:
            raise ProtocolError("parameter 'limit' must be >= 1")
        sub_id = self.server.next_subscription_id()
        db = self.server.db
        server = self.server

        def job():
            server._ensure_backlog(view)
            baseline = db.registry.view(view).refresh_sequence
            subscriber = _Subscriber(sub_id, view, mode, limit, baseline)
            resumed = None
            replay = []
            if from_sequence >= 0 and from_sequence != baseline:
                # The resume seam: replay the missed refreshes from the
                # per-view backlog, or one explicit reset frame covering
                # the whole range — never a silent gap.  A from_sequence
                # *ahead* of the view (the server restarted without
                # durable state, regressing sequences) is a reset too.
                frames = None
                if from_sequence < baseline:
                    frames = server.backlog_frames(view, from_sequence,
                                                   baseline)
                if frames is not None and len(frames) <= limit:
                    resumed = "replay"
                    replay = [dict(f, subscription=sub_id, resumed=True)
                              for f in frames]
                else:
                    resumed = "reset"
                    replay = [resume_reset_frame(
                        sub_id, view, from_sequence + 1, baseline)]
            elif from_sequence >= 0:
                resumed = "current"     # nothing was missed
            for push in replay:
                # Enqueued inside the apply job, before the subscription
                # registers — so replayed frames always precede live
                # pushes on the wire, in sequence order.
                subscriber.newest = push
                subscriber.enqueued_sequence = push["sequence"]
                self.send(push, subscriber)
            subscriber.subscription = db.subscribe(
                view, lambda event: self.deliver(subscriber, event),
                deliver_mutations=True)
            return subscriber, baseline, resumed, len(replay)
        subscriber, baseline, resumed, replayed = await self.run(job)
        self.subscribers[sub_id] = subscriber
        result = {"subscription": sub_id, "view": view, "mode": mode,
                  "limit": limit, "sequence": baseline}
        if resumed is not None:
            result["resumed"] = resumed
            result["replayed"] = replayed
        return result

    async def _op_unsubscribe(self, frame: dict) -> dict:
        sub_id = param(frame, "subscription", int)
        subscriber = self.subscribers.pop(sub_id, None)
        if subscriber is None:
            raise KeyError(f"no subscription {sub_id} on this session")
        if subscriber.subscription is not None:
            await self.run(subscriber.subscription.cancel)
        return {"subscription": sub_id}

    async def _op_explain(self, frame: dict) -> dict:
        view = param(frame, "view", str)
        return {"view": view, "text": await self.run(
            lambda: self.server.db.explain(view))}

    async def _op_metrics(self, frame: dict) -> dict:
        return {"metrics": await self.run(
            self.server.db.metrics)}

    async def _op_checkpoint(self, frame: dict) -> dict:
        return {"lsn": await self.run(
            self.server.db.checkpoint)}

    # -- teardown ----------------------------------------------------------------------

    async def close(self) -> None:
        if self.closing:
            return
        self.closing = True
        for subscriber in self.subscribers.values():
            subscriber.dropped = True
            if subscriber.subscription is not None:
                subscriber.subscription.cancel()
        self.subscribers.clear()
        depth = self.queue.qsize()
        if depth:
            self.server.metrics.gauge(
                "server_queue_depth",
                "Outbound frames queued across live sessions").inc(-depth)
        current = asyncio.current_task()
        for task in self._tasks:
            if task is not current:
                task.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self.server._forget(self)


class ViewServer:
    """The network serving layer over one :class:`~repro.api.Database`.

    ``await server.start()`` binds the sockets; ``await server.stop()``
    shuts down gracefully.  ``port``/``http_port`` of 0 pick free ports
    (read the resolved values off the attributes after ``start``).
    """

    def __init__(self, db: Optional[Database] = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 http_port: Optional[int] = None, own_db: bool = False,
                 max_frame: int = MAX_FRAME, max_sessions: int = 4096,
                 max_inflight: int = 1024,
                 request_timeout: Optional[float] = 30.0,
                 idle_timeout: Optional[float] = None,
                 backlog: int = DEFAULT_BACKLOG,
                 retry_after: float = 0.1):
        if db is None:
            db = Database()
            own_db = True
        self.db = db
        self.host = host
        self.port = port
        self.http_port = http_port
        self.own_db = own_db
        self.max_frame = max_frame
        self.max_sessions = max(1, max_sessions)
        self.max_inflight = max(1, max_inflight)
        self.request_timeout = request_timeout
        self.idle_timeout = idle_timeout
        self.backlog = max(1, backlog)
        self.retry_after = retry_after
        self.applied_index = 0
        self.sessions: set[_Session] = set()
        self._session_ids = 0
        self._subscription_ids = 0
        self._ledger: "OrderedDict[str, OrderedDict[int, object]]" = \
            OrderedDict()
        self._backlogs: dict[str, tuple[deque, object]] = {}
        self._apply_queue: Optional[asyncio.Queue] = None
        self._apply_task: Optional[asyncio.Task] = None
        self._reap_task: Optional[asyncio.Task] = None
        self._tcp_server = None
        self._http_server = None
        self._stopped = False

    @property
    def metrics(self):
        return self.db.registry.metrics

    # -- the single-writer apply loop --------------------------------------------------

    async def run(self, job, *, deadline_ts: Optional[float] = None):
        """Run ``job()`` serialized through the apply loop; await its
        result.  Every database touch — read or write — goes through
        here, which is the whole consistency story.  Raises
        :class:`Overloaded` (without enqueuing) when the apply queue is
        already ``max_inflight`` deep, and :class:`DeadlineExceeded`
        (without executing) when ``deadline_ts`` passes first."""
        if self._apply_queue.qsize() >= self.max_inflight:
            self.metrics.counter(
                "server_shed_total",
                "Requests/connections shed by admission control").inc()
            raise Overloaded(self.retry_after)
        loop = asyncio.get_event_loop()
        future = loop.create_future()
        self._apply_queue.put_nowait((job, future, deadline_ts))
        return await future

    def bump_applied(self) -> int:
        """The mutation ticket (call from inside an apply job)."""
        self.applied_index += 1
        return self.applied_index

    def deadline_for(self, frame: dict) -> Optional[float]:
        """The absolute deadline for one request: the client's
        ``deadline_ms`` capped by the server's ``request_timeout``."""
        timeout = self.request_timeout
        deadline_ms = frame.get("deadline_ms")
        if isinstance(deadline_ms, (int, float)) \
                and not isinstance(deadline_ms, bool) and deadline_ms > 0:
            client_timeout = deadline_ms / 1000.0
            timeout = client_timeout if timeout is None \
                else min(timeout, client_timeout)
        if timeout is None:
            return None
        return time.monotonic() + timeout

    async def _apply_loop(self) -> None:
        while True:
            job, future, deadline_ts = await self._apply_queue.get()
            if job is None:
                break
            if deadline_ts is not None \
                    and time.monotonic() > deadline_ts:
                # Expired while queued: the job is skipped, never
                # half-run, so the client can retry it safely.
                self.metrics.counter(
                    "server_deadline_expired",
                    "Requests expired in the apply queue").inc()
                if not future.cancelled():
                    future.set_exception(DeadlineExceeded(
                        "deadline expired before the request ran "
                        "(not executed; safe to retry)"))
                continue
            try:
                result = job()
            except Exception as exc:   # noqa: BLE001 — surfaced per-job
                if not future.cancelled():
                    future.set_exception(exc)
            else:
                if not future.cancelled():
                    future.set_result(result)
            # Queue.get returns without yielding while the queue is
            # non-empty; without this a deep backlog would starve the
            # loop's IO (no reads, no replies, no shedding) until
            # it fully drained.
            await asyncio.sleep(0)

    # -- the dedup ledger (idempotent retries) ------------------------------------------

    def ledger_get(self, token: tuple):
        """The remembered reply for ``(client, seq)``, or None."""
        client, seq = token
        per_client = self._ledger.get(client)
        if per_client is None:
            return None
        self._ledger.move_to_end(client)
        return per_client.get(seq)

    def ledger_put(self, token: tuple, reply) -> None:
        """Remember one reply, evicting LRU entries past the bounds."""
        client, seq = token
        per_client = self._ledger.get(client)
        if per_client is None:
            per_client = self._ledger[client] = OrderedDict()
        else:
            self._ledger.move_to_end(client)
        per_client[seq] = reply
        while len(per_client) > LEDGER_PER_CLIENT:
            per_client.popitem(last=False)
        while len(self._ledger) > LEDGER_CLIENTS:
            self._ledger.popitem(last=False)

    def _server_state(self) -> dict:
        """The serving state that rides inside durable checkpoints."""
        return {"applied_index": self.applied_index,
                "ledger": [(client, list(per.items()))
                           for client, per in self._ledger.items()]}

    def _adopt_durable_state(self) -> None:
        """Rebuild applied_index + dedup ledger after durable recovery,
        and register so future checkpoints carry them."""
        manager = self.db.durability
        if manager is None:
            return
        state = manager.recovered_server_state
        if state:
            self.applied_index = state.get("applied_index", 0)
            for client, entries in state.get("ledger", ()):
                for seq, reply in entries:
                    self.ledger_put((client, seq), reply)
        report = manager.last_recovery
        if report is not None:
            # Every successfully replayed WAL record was one mutation
            # ticket in the pre-crash order.
            replayed_ok = report.wal_records_replayed \
                - report.replay_errors
            self.applied_index += replayed_ok
        for meta in manager.recovered_batch_meta:
            # A WAL-tail mutation carried its token in the same record;
            # remember a minimal reply so a post-restart retry dedups
            # instead of double-applying.  The full original reply is
            # gone, but the ticket — the part replays must agree on —
            # survives.
            self.applied_index = max(self.applied_index, meta["a"])
            self.ledger_put((meta["c"], meta["s"]),
                            {"applied_index": meta["a"],
                             "recovered": True})
        manager.server_state_provider = self._server_state

    # -- per-view delta backlogs (subscription resume) -----------------------------------

    def _ensure_backlog(self, view: str) -> None:
        """Capture refreshes for ``view`` into a bounded deque of frame
        templates, independent of any subscriber (apply-job context)."""
        if view in self._backlogs:
            return
        frames: deque = deque(maxlen=self.backlog)
        handle = self.db.subscribe(
            view, lambda event: frames.append(delta_frame(0, event)),
            deliver_mutations=True)
        self._backlogs[view] = (frames, handle)

    def _drop_backlog(self, view: str) -> None:
        entry = self._backlogs.pop(view, None)
        if entry is not None:
            entry[1].cancel()

    def backlog_frames(self, view: str, from_sequence: int,
                       upto: int) -> Optional[list[dict]]:
        """The backlog frames covering ``from_sequence+1 .. upto``
        contiguously, or None when the backlog no longer reaches back
        that far (the caller falls back to an explicit reset)."""
        entry = self._backlogs.get(view)
        if entry is None:
            return None
        frames = [f for f in entry[0]
                  if from_sequence < f["sequence"] <= upto]
        if [f["sequence"] for f in frames] != \
                list(range(from_sequence + 1, upto + 1)):
            return None
        return frames

    # -- idle-session reaping -------------------------------------------------------------

    async def _reap_loop(self) -> None:
        interval = min(1.0, self.idle_timeout / 2)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for session in list(self.sessions):
                if session.closing or session.subscribers:
                    continue    # subscribers legitimately sit idle
                if now - session.last_active > self.idle_timeout:
                    self.metrics.counter(
                        "server_sessions_reaped",
                        "Idle sessions disconnected by the reaper").inc()
                    session.send(error_frame(
                        None, "idle",
                        f"session idle longer than "
                        f"{self.idle_timeout:g}s"))
                    session.queue.put_nowait(None)   # drain, then close

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> "ViewServer":
        self._register_metric_families()
        self._adopt_durable_state()
        self._apply_queue = asyncio.Queue()
        self._apply_task = asyncio.ensure_future(self._apply_loop())
        if self.idle_timeout is not None:
            self._reap_task = asyncio.ensure_future(self._reap_loop())
        self._tcp_server = await asyncio.start_server(
            self._on_connection, self.host, self.port)
        self.port = self._tcp_server.sockets[0].getsockname()[1]
        if self.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._on_http, self.host, self.http_port)
            self.http_port = \
                self._http_server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, close sessions, drain the
        apply loop, checkpoint durable state."""
        if self._stopped:
            return
        self._stopped = True
        for listener in (self._tcp_server, self._http_server):
            if listener is not None:
                listener.close()
                await listener.wait_closed()
        if self._reap_task is not None:
            self._reap_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reap_task
        for session in list(self.sessions):
            await session.close()
        for view in list(self._backlogs):
            self._drop_backlog(view)
        if self._apply_task is not None:
            self._apply_queue.put_nowait((None, None, None))
            await self._apply_task
        if self.own_db:
            self.db.close()     # durable sessions checkpoint on close
        else:
            if self.db.durable:
                self.db.checkpoint()
            manager = self.db.durability
            if manager is not None \
                    and manager.server_state_provider == self._server_state:
                manager.server_state_provider = None

    def _on_connection(self, reader, writer) -> None:
        if len(self.sessions) >= self.max_sessions:
            # Admission control: shed at the door with a typed error
            # naming how long to back off, instead of queuing work we
            # cannot serve.
            self.metrics.counter(
                "server_shed_total",
                "Requests/connections shed by admission control").inc()
            try:
                writer.write(encode_frame(
                    error_frame(None, "overloaded",
                                f"session limit {self.max_sessions} "
                                f"reached",
                                retry_after=self.retry_after),
                    self.max_frame))
                writer.close()
            except (ConnectionError, OSError):
                pass
            return
        self._session_ids += 1
        session = _Session(self, reader, writer, self._session_ids)
        self.sessions.add(session)
        self.metrics.counter("server_sessions",
                             "Client sessions accepted").inc()
        self.metrics.gauge("server_sessions_live",
                           "Currently connected client sessions").inc()
        session.start()

    def _forget(self, session: _Session) -> None:
        if session in self.sessions:
            self.sessions.discard(session)
            self.metrics.gauge("server_sessions_live",
                               "Currently connected client sessions"
                               ).inc(-1)

    def next_subscription_id(self) -> int:
        self._subscription_ids += 1
        return self._subscription_ids

    def _register_metric_families(self) -> None:
        """Touch every server family so a fresh scrape shows them at
        zero instead of omitting them."""
        metrics = self.metrics
        metrics.counter("server_sessions", "Client sessions accepted")
        metrics.gauge("server_sessions_live",
                      "Currently connected client sessions")
        metrics.counter("server_frames_in", "Frames read from clients")
        metrics.counter("server_frames_out", "Frames written to clients")
        metrics.gauge("server_queue_depth",
                      "Outbound frames queued across live sessions")
        metrics.histogram("server_push_lag_seconds",
                          "Refresh-to-socket latency of push frames")
        metrics.counter("server_pushes_coalesced",
                        "Refreshes folded into a queued frame under "
                        "backpressure")
        metrics.counter("server_subscribers_dropped",
                        "Subscribers disconnected by the strict "
                        "backpressure policy")
        metrics.counter("server_requests_retried",
                        "Mutating requests that arrived marked as "
                        "retries")
        metrics.counter("server_requests_deduped",
                        "Retried requests answered from the dedup "
                        "ledger")
        metrics.counter("server_sessions_reaped",
                        "Idle sessions disconnected by the reaper")
        metrics.counter("server_shed_total",
                        "Requests/connections shed by admission control")
        metrics.counter("server_reconnects",
                        "Sessions re-established by reconnecting clients")
        metrics.counter("server_deadline_expired",
                        "Requests expired in the apply queue")
        metrics.counter("server_bad_frames",
                        "Malformed frames answered with bad_frame")

    # -- the HTTP sidecar (Prometheus scrape + health) ---------------------------------

    async def _on_http(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            while True:     # drain headers; we only route on the path
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else ""
            if path.startswith("/metrics"):
                body = await self.run(self.db.render_prometheus)
                status, ctype = "200 OK", \
                    "text/plain; version=0.0.4; charset=utf-8"
            elif path.startswith("/healthz"):
                body, status, ctype = "ok\n", "200 OK", "text/plain"
            else:
                body, status, ctype = "not found\n", "404 Not Found", \
                    "text/plain"
            payload = body.encode("utf-8")
            writer.write((f"HTTP/1.1 {status}\r\n"
                          f"Content-Type: {ctype}\r\n"
                          f"Content-Length: {len(payload)}\r\n"
                          f"Connection: close\r\n\r\n").encode("ascii"))
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# -- running in a background thread (tests, benchmarks, examples) ----------------------


class ServerHandle:
    """A started server on its own event-loop thread.

    ``host``/``port``/``http_port`` are the bound addresses;
    ``stop()`` shuts the server down and joins the thread.
    """

    def __init__(self, server: ViewServer, loop, thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def http_port(self) -> Optional[int]:
        return self.server.http_port

    @property
    def db(self) -> Database:
        return self.server.db

    def stop(self, timeout: float = 10.0) -> None:
        if not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop).result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()


def start_in_thread(db: Optional[Database] = None, **kwargs
                    ) -> ServerHandle:
    """Start a :class:`ViewServer` on a fresh event loop in a daemon
    thread and block until its sockets are bound."""
    started = threading.Event()
    holder: dict = {}

    def main():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = ViewServer(db, **kwargs)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:   # noqa: BLE001 — re-raised below
            holder["error"] = exc
            started.set()
            loop.close()
            return
        holder["loop"] = loop
        holder["server"] = server
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=main, daemon=True,
                              name="repro-view-server")
    thread.start()
    if not started.wait(10.0):
        raise RuntimeError("server thread failed to start in time")
    if "error" in holder:
        raise holder["error"]
    return ServerHandle(holder["server"], holder["loop"], thread)
