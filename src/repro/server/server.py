"""The asyncio ``ViewServer``: many sessions, one single-writer database.

Concurrency model — everything interesting happens on one event-loop
thread:

* Every client connection is a :class:`_Session` with a reader task
  (decode frames, dispatch requests) and a writer task (drain the
  session's outbound queue to the socket).
* Every database-touching operation — mutations *and* reads — is a job
  submitted to the **apply loop**, a single task consuming an
  :class:`asyncio.Queue`.  Jobs run one at a time on the loop thread,
  so the engine only ever sees serial access: updates from concurrent
  sessions interleave at batch granularity, and a read observes a full
  snapshot (never a half-applied batch).  Mutating jobs stamp a
  monotone ``applied_index`` returned on the reply, which is the total
  order clients can replay against an oracle.
* View subscriptions are plain :meth:`Database.subscribe` callbacks
  (``deliver_mutations=True``).  They fire synchronously inside the
  apply job that flushed the view, on the loop thread, and enqueue one
  push frame per refresh onto each subscriber's session queue — so
  enqueue order equals refresh order equals wire order.

Backpressure: each subscriber carries a bound on frames queued but not
yet written.  A slow consumer (socket full, client not reading) makes
the writer task block in ``drain()`` while refreshes keep arriving;
when a subscriber's ``in_flight`` count hits its limit the server
applies the policy the client chose at subscribe time:

* ``"coalesce"`` (default) — fold the new refresh into the newest
  still-queued delta frame *in place*: the frame becomes a
  ``coalesced`` reset covering ``from_sequence..sequence`` and the
  client re-reads the view.  No frame is dropped silently; memory per
  subscriber stays bounded.
* ``"disconnect"`` — push one ``gap`` frame naming the dropped range,
  then close the connection.  For mirrors that must never miss a
  delta and prefer death to staleness.

Shutdown is graceful: stop accepting, close sessions, drain the apply
loop, cut a final checkpoint when the database is durable.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Optional

from ..api import Database
from ..updates.errors import UpdateError
from .protocol import MAX_FRAME, PROTOCOL_VERSION, FrameDecoder, \
    ProtocolError, delta_frame, encode_frame, error_frame, gap_frame, \
    param, reply_frame, validate_request

__all__ = ["ServerHandle", "ViewServer", "start_in_thread"]

#: default per-subscriber bound on queued-but-unwritten push frames
DEFAULT_SUBSCRIBER_LIMIT = 64

_BACKPRESSURE_MODES = ("coalesce", "disconnect")


class _Subscriber:
    """One ``subscribe`` registration on one session."""

    __slots__ = ("id", "view", "mode", "limit", "in_flight", "newest",
                 "enqueued_sequence", "dropped", "subscription")

    def __init__(self, sub_id: int, view: str, mode: str, limit: int,
                 baseline_sequence: int):
        self.id = sub_id
        self.view = view
        self.mode = mode
        self.limit = limit
        self.in_flight = 0          # frames queued, not yet written
        self.newest = None          # newest still-queued delta frame dict
        self.enqueued_sequence = baseline_sequence
        self.dropped = False
        self.subscription = None    # the Database.subscribe handle


class _Session:
    """One client connection: reader task, writer task, outbound queue."""

    def __init__(self, server: "ViewServer", reader, writer,
                 session_id: int):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.id = session_id
        self.queue: asyncio.Queue = asyncio.Queue()
        self.subscribers: dict[int, _Subscriber] = {}
        self.closing = False
        self._tasks: list[asyncio.Task] = []

    def start(self) -> None:
        self._tasks = [asyncio.ensure_future(self._read_loop()),
                       asyncio.ensure_future(self._write_loop())]

    # -- outbound ----------------------------------------------------------------------

    def send(self, frame: dict,
             subscriber: Optional[_Subscriber] = None) -> None:
        """Enqueue one frame (loop thread only; writer task drains)."""
        if self.closing:
            return
        if subscriber is not None:
            subscriber.in_flight += 1
        self.queue.put_nowait((subscriber, frame, time.perf_counter()))
        self.server.metrics.gauge(
            "server_queue_depth",
            "Outbound frames queued across live sessions").inc()

    def deliver(self, subscriber: _Subscriber, event) -> None:
        """One refresh event for one subscriber — the backpressure seam.

        Runs synchronously inside the apply job that flushed the view.
        """
        if subscriber.dropped or self.closing:
            return
        metrics = self.server.metrics
        if subscriber.in_flight >= subscriber.limit:
            if subscriber.mode == "coalesce" and subscriber.newest is not None:
                # Fold into the newest still-queued frame in place.  The
                # writer JSON-encodes at dequeue time on this same loop
                # thread, so the mutation is race-free.
                newest = subscriber.newest
                newest.setdefault("from_sequence", newest["sequence"])
                newest["coalesced"] = True
                newest["sequence"] = event.sequence
                newest["reason"] = event.reason
                newest["trees"] += event.trees
                newest["delta_tuples"] += event.delta_tuples
                newest["reset"] = True
                newest["mutations"] = None
                subscriber.enqueued_sequence = event.sequence
                metrics.counter(
                    "server_pushes_coalesced",
                    "Refreshes folded into a queued frame under "
                    "backpressure").inc()
                return
            # Strict policy (or nothing queued to fold into): announce
            # the gap and cut the connection once the queue drains.
            subscriber.dropped = True
            if subscriber.subscription is not None:
                subscriber.subscription.cancel()
            after = subscriber.enqueued_sequence
            self.send(gap_frame(subscriber.id, subscriber.view, after,
                                event.sequence, event.sequence - after))
            metrics.counter(
                "server_subscribers_dropped",
                "Subscribers disconnected by the strict backpressure "
                "policy").inc()
            return
        frame = delta_frame(subscriber.id, event)
        subscriber.newest = frame
        subscriber.enqueued_sequence = event.sequence
        self.send(frame, subscriber)

    async def _write_loop(self) -> None:
        metrics = self.server.metrics
        try:
            while True:
                item = await self.queue.get()
                if item is None:
                    break
                subscriber, frame, enqueued = item
                if subscriber is not None:
                    subscriber.in_flight -= 1
                    if frame is subscriber.newest:
                        subscriber.newest = None
                data = encode_frame(frame, self.server.max_frame)
                self.writer.write(data)
                await self.writer.drain()
                metrics.gauge("server_queue_depth",
                              "Outbound frames queued across live "
                              "sessions").inc(-1)
                metrics.counter("server_frames_out",
                                "Frames written to clients").inc()
                if subscriber is not None:
                    metrics.histogram(
                        "server_push_lag_seconds",
                        "Refresh-to-socket latency of push frames"
                    ).observe(time.perf_counter() - enqueued)
                if frame.get("type") == "gap":
                    break   # strict policy: the gap frame is the last
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            await self.close()

    # -- inbound -----------------------------------------------------------------------

    async def _read_loop(self) -> None:
        decoder = FrameDecoder(self.server.max_frame)
        metrics = self.server.metrics
        try:
            while True:
                data = await self.reader.read(65536)
                if not data:
                    break
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    self.send(error_frame(None, "protocol", str(exc)))
                    break
                for frame in frames:
                    metrics.counter("server_frames_in",
                                    "Frames read from clients").inc()
                    if not await self._handle(frame):
                        return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            await self.close()

    async def _handle(self, frame: dict) -> bool:
        """Dispatch one request; returns False when the session ends."""
        try:
            request_id, op = validate_request(frame)
        except ProtocolError as exc:
            self.send(error_frame(None, "protocol", str(exc)))
            return False
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            self.send(error_frame(request_id, "bad_request",
                                  f"unknown op {op!r}"))
            return True
        try:
            result = await handler(frame)
        except ProtocolError as exc:
            self.send(error_frame(request_id, "bad_request", str(exc)))
        except UpdateError as exc:
            self.send(error_frame(request_id, "update", str(exc),
                                  applied=exc.applied))
        except KeyError as exc:
            self.send(error_frame(request_id, "not_found",
                                  str(exc.args[0]) if exc.args
                                  else str(exc)))
        except (ValueError, RuntimeError) as exc:
            self.send(error_frame(request_id, "bad_request", str(exc)))
        except Exception as exc:   # noqa: BLE001 — sessions must survive
            self.send(error_frame(request_id, "internal",
                                  f"{type(exc).__name__}: {exc}"))
        else:
            self.send(reply_frame(request_id, result))
            if op == "bye":
                self.queue.put_nowait(None)   # close after the reply
                return False
        return True

    # -- request handlers --------------------------------------------------------------

    async def _op_hello(self, frame: dict) -> dict:
        db = self.server.db
        views = await self.server.run(db.views)
        return {"protocol": PROTOCOL_VERSION, "server": "repro-view-server",
                "session": self.id, "views": views, "durable": db.durable}

    async def _op_ping(self, frame: dict) -> dict:
        return {}

    async def _op_bye(self, frame: dict) -> dict:
        return {}

    async def _op_load(self, frame: dict) -> dict:
        name = param(frame, "name", str)
        xml = param(frame, "xml", str)

        def job():
            self.server.db.load(name, xml)
            return self.server.bump_applied()
        return {"applied_index": await self.server.run(job),
                "documents": self.server.db.documents()}

    async def _op_documents(self, frame: dict) -> dict:
        return {"documents":
                await self.server.run(self.server.db.documents)}

    async def _op_create_view(self, frame: dict) -> dict:
        name = param(frame, "name", str)
        query = param(frame, "query", str)
        policy = param(frame, "policy", (str, int), "immediate")

        def job():
            self.server.db.create_view(name, query, policy)
            return self.server.bump_applied()
        applied = await self.server.run(job)
        return {"view": name, "applied_index": applied}

    async def _op_drop_view(self, frame: dict) -> dict:
        name = param(frame, "name", str)

        def job():
            self.server.db.drop_view(name)
            return self.server.bump_applied()
        return {"applied_index": await self.server.run(job)}

    async def _op_views(self, frame: dict) -> dict:
        db = self.server.db

        def job():
            return [{"name": name,
                     "policy": db.view(name).policy.kind,
                     "pending": db.view(name).pending_trees(),
                     "sequence": db.registry.view(name).refresh_sequence}
                    for name in db.views()]
        return {"views": await self.server.run(job)}

    async def _op_read(self, frame: dict) -> dict:
        name = param(frame, "view", str)
        db = self.server.db

        def job():
            xml = db.read(name)
            return xml, db.registry.view(name).refresh_sequence
        xml, sequence = await self.server.run(job)
        return {"view": name, "xml": xml, "sequence": sequence}

    async def _op_query(self, frame: dict) -> dict:
        xquery = param(frame, "xquery", str)
        return {"xml": await self.server.run(
            lambda: self.server.db.query(xquery))}

    async def _op_execute(self, frame: dict) -> dict:
        statement = param(frame, "statement", str)

        def job():
            self.server.db.execute(statement)
            return self.server.bump_applied()
        return {"applied_index": await self.server.run(job)}

    async def _op_update(self, frame: dict) -> dict:
        statements = param(frame, "statements", list)
        if not all(isinstance(s, str) for s in statements):
            raise ProtocolError(
                "parameter 'statements' must be a list of strings")

        def job():
            with self.server.db.batch():
                for statement in statements:
                    self.server.db.execute(statement)
            return self.server.bump_applied()
        return {"applied_index": await self.server.run(job),
                "statements": len(statements)}

    async def _op_subscribe(self, frame: dict) -> dict:
        view = param(frame, "view", str)
        mode = param(frame, "mode", str, "coalesce")
        limit = param(frame, "limit", int, DEFAULT_SUBSCRIBER_LIMIT)
        if mode not in _BACKPRESSURE_MODES:
            raise ProtocolError(
                f"parameter 'mode' must be one of {_BACKPRESSURE_MODES}")
        if limit < 1:
            raise ProtocolError("parameter 'limit' must be >= 1")
        sub_id = self.server.next_subscription_id()
        db = self.server.db

        def job():
            baseline = db.registry.view(view).refresh_sequence
            subscriber = _Subscriber(sub_id, view, mode, limit, baseline)
            subscriber.subscription = db.subscribe(
                view, lambda event: self.deliver(subscriber, event),
                deliver_mutations=True)
            return subscriber, baseline
        subscriber, baseline = await self.server.run(job)
        self.subscribers[sub_id] = subscriber
        return {"subscription": sub_id, "view": view, "mode": mode,
                "limit": limit, "sequence": baseline}

    async def _op_unsubscribe(self, frame: dict) -> dict:
        sub_id = param(frame, "subscription", int)
        subscriber = self.subscribers.pop(sub_id, None)
        if subscriber is None:
            raise KeyError(f"no subscription {sub_id} on this session")
        if subscriber.subscription is not None:
            await self.server.run(subscriber.subscription.cancel)
        return {"subscription": sub_id}

    async def _op_explain(self, frame: dict) -> dict:
        view = param(frame, "view", str)
        return {"view": view, "text": await self.server.run(
            lambda: self.server.db.explain(view))}

    async def _op_metrics(self, frame: dict) -> dict:
        return {"metrics": await self.server.run(
            self.server.db.metrics)}

    async def _op_checkpoint(self, frame: dict) -> dict:
        return {"lsn": await self.server.run(
            self.server.db.checkpoint)}

    # -- teardown ----------------------------------------------------------------------

    async def close(self) -> None:
        if self.closing:
            return
        self.closing = True
        for subscriber in self.subscribers.values():
            subscriber.dropped = True
            if subscriber.subscription is not None:
                subscriber.subscription.cancel()
        self.subscribers.clear()
        depth = self.queue.qsize()
        if depth:
            self.server.metrics.gauge(
                "server_queue_depth",
                "Outbound frames queued across live sessions").inc(-depth)
        current = asyncio.current_task()
        for task in self._tasks:
            if task is not current:
                task.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self.server._forget(self)


class ViewServer:
    """The network serving layer over one :class:`~repro.api.Database`.

    ``await server.start()`` binds the sockets; ``await server.stop()``
    shuts down gracefully.  ``port``/``http_port`` of 0 pick free ports
    (read the resolved values off the attributes after ``start``).
    """

    def __init__(self, db: Optional[Database] = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 http_port: Optional[int] = None, own_db: bool = False,
                 max_frame: int = MAX_FRAME):
        if db is None:
            db = Database()
            own_db = True
        self.db = db
        self.host = host
        self.port = port
        self.http_port = http_port
        self.own_db = own_db
        self.max_frame = max_frame
        self.applied_index = 0
        self.sessions: set[_Session] = set()
        self._session_ids = 0
        self._subscription_ids = 0
        self._apply_queue: Optional[asyncio.Queue] = None
        self._apply_task: Optional[asyncio.Task] = None
        self._tcp_server = None
        self._http_server = None
        self._stopped = False

    @property
    def metrics(self):
        return self.db.registry.metrics

    # -- the single-writer apply loop --------------------------------------------------

    async def run(self, job):
        """Run ``job()`` serialized through the apply loop; await its
        result.  Every database touch — read or write — goes through
        here, which is the whole consistency story."""
        loop = asyncio.get_event_loop()
        future = loop.create_future()
        self._apply_queue.put_nowait((job, future))
        return await future

    def bump_applied(self) -> int:
        """The mutation ticket (call from inside an apply job)."""
        self.applied_index += 1
        return self.applied_index

    async def _apply_loop(self) -> None:
        while True:
            job, future = await self._apply_queue.get()
            if job is None:
                break
            try:
                result = job()
            except Exception as exc:   # noqa: BLE001 — surfaced per-job
                if not future.cancelled():
                    future.set_exception(exc)
            else:
                if not future.cancelled():
                    future.set_result(result)

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> "ViewServer":
        self._register_metric_families()
        self._apply_queue = asyncio.Queue()
        self._apply_task = asyncio.ensure_future(self._apply_loop())
        self._tcp_server = await asyncio.start_server(
            self._on_connection, self.host, self.port)
        self.port = self._tcp_server.sockets[0].getsockname()[1]
        if self.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._on_http, self.host, self.http_port)
            self.http_port = \
                self._http_server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, close sessions, drain the
        apply loop, checkpoint durable state."""
        if self._stopped:
            return
        self._stopped = True
        for listener in (self._tcp_server, self._http_server):
            if listener is not None:
                listener.close()
                await listener.wait_closed()
        for session in list(self.sessions):
            await session.close()
        if self._apply_task is not None:
            self._apply_queue.put_nowait((None, None))
            await self._apply_task
        if self.own_db:
            self.db.close()     # durable sessions checkpoint on close
        elif self.db.durable:
            self.db.checkpoint()

    def _on_connection(self, reader, writer) -> None:
        self._session_ids += 1
        session = _Session(self, reader, writer, self._session_ids)
        self.sessions.add(session)
        self.metrics.counter("server_sessions",
                             "Client sessions accepted").inc()
        self.metrics.gauge("server_sessions_live",
                           "Currently connected client sessions").inc()
        session.start()

    def _forget(self, session: _Session) -> None:
        if session in self.sessions:
            self.sessions.discard(session)
            self.metrics.gauge("server_sessions_live",
                               "Currently connected client sessions"
                               ).inc(-1)

    def next_subscription_id(self) -> int:
        self._subscription_ids += 1
        return self._subscription_ids

    def _register_metric_families(self) -> None:
        """Touch every server family so a fresh scrape shows them at
        zero instead of omitting them."""
        metrics = self.metrics
        metrics.counter("server_sessions", "Client sessions accepted")
        metrics.gauge("server_sessions_live",
                      "Currently connected client sessions")
        metrics.counter("server_frames_in", "Frames read from clients")
        metrics.counter("server_frames_out", "Frames written to clients")
        metrics.gauge("server_queue_depth",
                      "Outbound frames queued across live sessions")
        metrics.histogram("server_push_lag_seconds",
                          "Refresh-to-socket latency of push frames")
        metrics.counter("server_pushes_coalesced",
                        "Refreshes folded into a queued frame under "
                        "backpressure")
        metrics.counter("server_subscribers_dropped",
                        "Subscribers disconnected by the strict "
                        "backpressure policy")

    # -- the HTTP sidecar (Prometheus scrape + health) ---------------------------------

    async def _on_http(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            while True:     # drain headers; we only route on the path
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else ""
            if path.startswith("/metrics"):
                body = await self.run(self.db.render_prometheus)
                status, ctype = "200 OK", \
                    "text/plain; version=0.0.4; charset=utf-8"
            elif path.startswith("/healthz"):
                body, status, ctype = "ok\n", "200 OK", "text/plain"
            else:
                body, status, ctype = "not found\n", "404 Not Found", \
                    "text/plain"
            payload = body.encode("utf-8")
            writer.write((f"HTTP/1.1 {status}\r\n"
                          f"Content-Type: {ctype}\r\n"
                          f"Content-Length: {len(payload)}\r\n"
                          f"Connection: close\r\n\r\n").encode("ascii"))
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# -- running in a background thread (tests, benchmarks, examples) ----------------------


class ServerHandle:
    """A started server on its own event-loop thread.

    ``host``/``port``/``http_port`` are the bound addresses;
    ``stop()`` shuts the server down and joins the thread.
    """

    def __init__(self, server: ViewServer, loop, thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def http_port(self) -> Optional[int]:
        return self.server.http_port

    @property
    def db(self) -> Database:
        return self.server.db

    def stop(self, timeout: float = 10.0) -> None:
        if not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop).result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()


def start_in_thread(db: Optional[Database] = None, **kwargs
                    ) -> ServerHandle:
    """Start a :class:`ViewServer` on a fresh event loop in a daemon
    thread and block until its sockets are bound."""
    started = threading.Event()
    holder: dict = {}

    def main():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = ViewServer(db, **kwargs)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:   # noqa: BLE001 — re-raised below
            holder["error"] = exc
            started.set()
            loop.close()
            return
        holder["loop"] = loop
        holder["server"] = server
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=main, daemon=True,
                              name="repro-view-server")
    thread.start()
    if not started.wait(10.0):
        raise RuntimeError("server thread failed to start in time")
    if "error" in holder:
        raise holder["error"]
    return ServerHandle(holder["server"], holder["loop"], thread)
