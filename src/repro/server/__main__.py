"""``python -m repro.server`` — a standalone view server.

Example::

    python -m repro.server --port 7654 --http-port 7655 \\
        --durable /var/lib/repro \\
        --load bib.xml=./bib.xml \\
        --view 'titles=FOR $b IN document("bib.xml")/bib/book ' \\
               'RETURN <t>{$b/title}</t>'

Runs until SIGINT/SIGTERM, then shuts down gracefully (sessions
closed, apply loop drained, final checkpoint on durable databases).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from ..api import Database
from .server import ViewServer


def _parse_pair(option: str, value: str) -> tuple[str, str]:
    name, sep, rest = value.partition("=")
    if not sep or not name or not rest:
        raise SystemExit(f"--{option} wants NAME=VALUE, got {value!r}")
    return name, rest


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a repro database over the wire protocol.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7654,
                        help="wire-protocol port (0 picks a free one)")
    parser.add_argument("--http-port", type=int, default=None,
                        help="plain-HTTP port for /metrics and /healthz")
    parser.add_argument("--durable", metavar="DIR", default=None,
                        help="open (or recover) a durable database here")
    parser.add_argument("--compiled", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="execute views on the compiled delta-plan "
                             "VM (--no-compiled falls back to the tree "
                             "interpreter)")
    parser.add_argument("--fsync", choices=("always", "batch", "off"),
                        default="batch")
    parser.add_argument("--load", action="append", default=[],
                        metavar="NAME=PATH",
                        help="register a source document (repeatable)")
    parser.add_argument("--view", action="append", default=[],
                        metavar="NAME=XQUERY",
                        help="create a view at startup (repeatable)")
    parser.add_argument("--policy", default="immediate",
                        help="maintenance policy for --view views "
                             "(immediate, deferred, or an integer K)")
    parser.add_argument("--max-sessions", type=int, default=4096,
                        help="admission control: concurrent sessions "
                             "before new connections are shed")
    parser.add_argument("--max-inflight", type=int, default=1024,
                        help="admission control: queued apply-loop jobs "
                             "before requests are shed as overloaded")
    parser.add_argument("--request-timeout", type=float, default=30.0,
                        help="server-side deadline per request in "
                             "seconds (0 disables)")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        help="reap sessions idle longer than this many "
                             "seconds (subscribers are exempt)")
    parser.add_argument("--backlog", type=int, default=256,
                        help="per-view delta backlog for subscription "
                             "resume after reconnect")
    return parser


async def serve(args) -> None:
    db = Database(durable_path=args.durable, fsync=args.fsync,
                  compiled=args.compiled) \
        if args.durable else Database(compiled=args.compiled)
    for name, path in (_parse_pair("load", item) for item in args.load):
        db.load(name, path)
    policy = int(args.policy) if args.policy.isdigit() else args.policy
    for name, xquery in (_parse_pair("view", item)
                         for item in args.view):
        if name not in db.views():
            db.create_view(name, xquery, policy)
    server = ViewServer(db, host=args.host, port=args.port,
                        http_port=args.http_port, own_db=True,
                        max_sessions=args.max_sessions,
                        max_inflight=args.max_inflight,
                        request_timeout=args.request_timeout or None,
                        idle_timeout=args.idle_timeout,
                        backlog=args.backlog)
    await server.start()
    print(f"repro view server on {server.host}:{server.port}"
          + (f" (http {server.http_port})" if server.http_port else ""),
          flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_event_loop()
    for signame in ("SIGINT", "SIGTERM"):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(getattr(signal, signame), stop.set)
    try:
        await stop.wait()
    finally:
        print("shutting down...", flush=True)
        await server.stop()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(serve(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
