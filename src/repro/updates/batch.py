"""Batching of validated update trees (Section 5.3).

Heterogeneous sequences of updates are grouped into *batch update trees*:
maximal runs over the same document with the same update kind become one
:class:`repro.xat.DeltaSpec` and are propagated in a single pass.  Runs are
not reordered across kind/document boundaries — the paper's batches encode
updates "of possibly different types" that may share prefix paths, and
sequential semantics must be preserved.
"""

from __future__ import annotations

from ..xat.base import DeltaRoot, DeltaSpec
from .primitives import UpdateTree


def batch_update_trees(trees: list[UpdateTree]) -> list[DeltaSpec]:
    """Group consecutive same-document same-kind trees into DeltaSpecs."""
    batches: list[DeltaSpec] = []
    run: list[UpdateTree] = []

    def flush():
        if not run:
            return
        batches.append(DeltaSpec(
            run[0].document,
            tuple(DeltaRoot(t.root, t.kind) for t in run),
            run[0].kind))
        run.clear()

    for tree in trees:
        if run and (tree.document != run[0].document
                    or tree.kind != run[0].kind):
            flush()
        # Nested roots in one batch would double-propagate: keep only the
        # outermost root when one contains another.
        if any(t.root == tree.root or t.root.is_ancestor_of(tree.root)
               for t in run):
            continue
        run[:] = [t for t in run if not tree.root.is_ancestor_of(t.root)]
        run.append(tree)
    flush()
    return batches
