"""Batching of validated update trees (Section 5.3).

Heterogeneous sequences of updates are grouped into *batch update trees*:
maximal runs over the same document with the same update kind become one
:class:`repro.xat.DeltaSpec` and are propagated in a single pass.  Runs are
not reordered across kind/document boundaries — the paper's batches encode
updates "of possibly different types" that may share prefix paths, and
sequential semantics must be preserved.

:class:`RunBatcher` is the incremental form of this grouping.  It is the
single implementation of the run discipline, shared by the offline
:func:`batch_update_trees` helper, the single-view V-P-A driver
(:mod:`repro.multiview.pipeline`) and the multi-view registry
(:mod:`repro.multiview.registry`).
"""

from __future__ import annotations

from typing import Optional

from ..xat.base import MODIFY, DeltaRoot, DeltaSpec
from .primitives import UpdateTree


class RunBatcher:
    """Incrementally groups update trees into maximal same-document,
    same-kind runs.

    ``push`` returns ``(closed_run, accepted)``: ``closed_run`` is the
    previous run when the new tree crossed a document/kind boundary (else
    ``None``), and ``accepted`` is False when the tree is already covered
    by an enclosing root in the current run (nested roots in one batch
    would double-propagate, so only the outermost root is kept).

    Modify runs follow their own root discipline: modify roots replace a
    single element's direct text, so *nested* roots touch disjoint text
    and must all propagate (an ancestor refresh does not carry another
    element's retract/assert pair), while an *equal* root is the same
    text modified twice — the trees coalesce into one pair spanning the
    first old value and the latest new value.
    """

    def __init__(self):
        self._run: list[UpdateTree] = []

    @property
    def pending(self) -> list[UpdateTree]:
        """The trees of the still-open run (a copy)."""
        return list(self._run)

    def crosses(self, document: str, kind: str) -> bool:
        """Whether an update of this document/kind would close the open
        run.  The maintenance drivers check this *before* applying the
        update's storage change: a closed batch must propagate against
        exactly the state its own updates produced, so the boundary
        request's mutation must not leak into storage first.
        """
        return bool(self._run) and (document != self._run[0].document
                                    or kind != self._run[0].kind)

    def push(self, tree: UpdateTree
             ) -> tuple[Optional[list[UpdateTree]], bool]:
        closed = None
        if self._run and (tree.document != self._run[0].document
                          or tree.kind != self._run[0].kind):
            closed = self.close()
        if tree.kind == MODIFY:
            for existing in self._run:
                if existing.root == tree.root:
                    # Same element modified twice in one run: the latest
                    # text wins; a first-class pair keeps its original
                    # old value (net change across the whole run).
                    existing.new_value = tree.new_value
                    if existing.old_value is None:
                        existing.old_value = tree.old_value
                    return closed, False
            self._run.append(tree)
            return closed, True
        if any(t.root == tree.root or t.root.is_ancestor_of(tree.root)
               for t in self._run):
            return closed, False
        self._run = [t for t in self._run
                     if not tree.root.is_ancestor_of(t.root)]
        self._run.append(tree)
        return closed, True

    def close(self) -> Optional[list[UpdateTree]]:
        """End the current run, returning its trees (None when empty)."""
        if not self._run:
            return None
        run, self._run = self._run, []
        return run


def spec_for_run(run: list[UpdateTree]) -> DeltaSpec:
    """The :class:`DeltaSpec` propagating one closed run in a single pass."""
    return DeltaSpec(run[0].document,
                     tuple(DeltaRoot(t.root, t.kind, t.old_value,
                                     t.new_value) for t in run),
                     run[0].kind)


def batch_update_trees(trees: list[UpdateTree]) -> list[DeltaSpec]:
    """Group consecutive same-document same-kind trees into DeltaSpecs."""
    batcher = RunBatcher()
    batches: list[DeltaSpec] = []
    for tree in trees:
        closed, _accepted = batcher.push(tree)
        if closed is not None:
            batches.append(spec_for_run(closed))
    closed = batcher.close()
    if closed is not None:
        batches.append(spec_for_run(closed))
    return batches
