"""Source Access Pattern Trees: relevancy and sufficiency (Section 5.2).

A SAPT is built per source document from the view's plan: every navigation
operator contributes the absolute tag paths the view reads, each marked
with how it is used (``binding`` for unnests, ``value`` for collections,
``predicate`` for paths feeding selection/join conditions).

* An update is **relevant** iff its root's tag path intersects an accessed
  path (is a prefix of one, equals one, or extends one) — irrelevant
  updates are applied to storage but never propagated (Section 5.2.1).
* A modify update is **insufficient** when its target path feeds a
  predicate (join/selection/sort key): replacing such a value can
  re-route tuples, which a content-refresh cannot express.  The
  validator then turns it into a *first-class modify* — the update tree
  carries the ``(old, new)`` text pair and propagates as a paired
  retraction+assertion (Section 5.2.2's "annotate with missing
  information", carried in-flight instead of decomposed into delete +
  reinsert of the enclosing binding fragment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..flexkeys import FlexKey
from ..storage import StorageManager
from ..xat import (NavigateCollection, NavigateUnnest, Select, XatOperator,
                   conjuncts)
from ..xat.paths import DESCENDANT
from ..xat.relational import _BinaryJoinBase

BINDING = "binding"
VALUE = "value"
PREDICATE = "predicate"
EXPOSED = "exposed"

#: Usages whose access paths capture their whole subtree for relevancy.
_SUBTREE_USAGES = (VALUE, PREDICATE, EXPOSED)


@dataclass
class AccessPath:
    """One absolute access path of a document: tag steps plus usage."""

    steps: tuple[str, ...]          # element tags only ("*" for descendant)
    has_descendant: bool
    usages: set[str] = field(default_factory=set)


class Sapt:
    """Source Access Pattern Tree for one view (all documents)."""

    def __init__(self, paths: dict[str, list[AccessPath]]):
        self.paths = paths

    # -- construction ------------------------------------------------------------------

    @classmethod
    def from_plan(cls, plan: XatOperator) -> "Sapt":
        column_paths: dict[int, dict[str, tuple[Optional[str], tuple]]] = {}
        doc_paths: dict[str, list[AccessPath]] = {}
        predicate_cols: set[str] = set()
        from ..xat import OrderBy

        for op in plan.iter_operators():
            condition = getattr(op, "condition", None)
            if condition is not None:
                for comp in conjuncts(condition):
                    predicate_cols.update(comp.columns())
            if isinstance(op, OrderBy):
                # A modified sort value re-positions tuples, which a
                # content refresh cannot express: treat like a predicate.
                predicate_cols.update(op.cols)

        col_origin: dict[str, tuple[Optional[str], tuple[str, ...], bool]] = {}

        def record(document, steps, has_desc, usage):
            if document is None:
                return
            bucket = doc_paths.setdefault(document, [])
            for existing in bucket:
                if existing.steps == steps \
                        and existing.has_descendant == has_desc:
                    existing.usages.add(usage)
                    return
            bucket.append(AccessPath(steps, has_desc, {usage}))

        from ..xat import Source, Tagger

        # Columns whose node *content* reaches the view result: Tagger
        # content columns (Combine preserves column names, so combined
        # results are covered transitively).
        exposed_cols: set[str] = set()
        for op in plan.iter_operators():
            if isinstance(op, Tagger):
                exposed_cols.update(op.pattern.content_columns())

        for op in plan.iter_operators():
            if isinstance(op, Source):
                col_origin[op.out] = (op.document, (), False)
            elif isinstance(op, (NavigateUnnest, NavigateCollection)):
                origin = col_origin.get(op.col)
                if origin is None:
                    continue
                document, steps, has_desc = origin
                new_steps = list(steps)
                element_steps = list(steps)
                for step in op.path.steps:
                    if step.axis == DESCENDANT:
                        has_desc = True
                    new_steps.append(step.test)
                    if not step.is_value:
                        element_steps.append(step.test)
                usage = (BINDING if isinstance(op, NavigateUnnest)
                         else VALUE)
                if op.out in predicate_cols:
                    usage = PREDICATE
                # Value steps (@attr / text()) stay in the recorded path so
                # that reading an attribute does not capture the element's
                # whole subtree for relevancy.
                col_origin[op.out] = (document, tuple(element_steps),
                                      has_desc)
                record(document, tuple(new_steps), has_desc, usage)
                if op.out in exposed_cols and not op.path.ends_in_value:
                    record(document, tuple(new_steps), has_desc, EXPOSED)
        return cls(doc_paths)

    # -- checks -----------------------------------------------------------------------------

    def documents(self) -> list[str]:
        return list(self.paths)

    def is_relevant(self, storage: StorageManager, document: str,
                    target: FlexKey) -> bool:
        """Does an update rooted at ``target`` possibly affect the view?

        Relevant iff the target is at/above an accessed path, or below a
        path whose *subtree* is read (exposed content, read values or
        predicate inputs).  Updates strictly below binding-only paths do
        not reach the view (Section 5.2.1).
        """
        return self.relevant_for_tags(document,
                                      tag_path(storage, target))

    def relevant_for_tags(self, document: str,
                          tags: tuple[str, ...]) -> bool:
        """Relevancy against a precomputed root-to-target tag path.

        Splitting the tag-path walk from the path matching lets the
        multi-view router compute the walk once per update and reuse it
        across every registered view's path set.
        """
        if document not in self.paths:
            return False
        for access in self.paths[document]:
            if access.has_descendant:
                return True  # conservative: // can reach anywhere
            a, t = access.steps, tags
            if len(t) <= len(a) and a[:len(t)] == t:
                return True  # target at or above an accessed node
            if len(t) > len(a) and t[:len(a)] == a \
                    and access.usages & set(_SUBTREE_USAGES):
                return True  # target inside a subtree the view reads
        return False

    def predicate_paths(self, document: str) -> list[tuple[str, ...]]:
        return [a.steps for a in self.paths.get(document, [])
                if PREDICATE in a.usages]

    def modify_hits_predicate(self, storage: StorageManager, document: str,
                              target: FlexKey) -> bool:
        """True when a text replace at ``target`` feeds a predicate path."""
        return self.modify_hits_predicate_tags(
            document, tag_path(storage, target))

    def modify_hits_predicate_tags(self, document: str,
                                   tags: tuple[str, ...]) -> bool:
        """True when replacing the *direct text* of the element at
        ``tags`` changes a value some predicate/sort key reads."""
        for steps in self.predicate_paths(document):
            if modify_hits_steps(steps, tags):
                return True
        for access in self.paths.get(document, []):
            if access.has_descendant and PREDICATE in access.usages:
                return True
        return False

    def binding_anchor(self, storage: StorageManager, document: str,
                       target: FlexKey) -> Optional[FlexKey]:
        """Nearest ancestor-or-self of ``target`` that is a binding root."""
        binding_paths = {a.steps for a in self.paths.get(document, [])
                         if BINDING in a.usages}
        key: Optional[FlexKey] = target
        while key is not None:
            if tag_path(storage, key) in binding_paths:
                return key
            key = storage.parent_key(key)
        return None


def modify_hits_steps(steps: tuple[str, ...],
                      tags: tuple[str, ...]) -> bool:
    """Whether a text replace at the element path ``tags`` feeds the
    recorded predicate access path ``steps``.

    The one normalization rule shared by the single-view SAPT check and
    the multi-view router: a path ending in ``text()`` reads exactly the
    direct text of its element (strip the value step and compare element
    paths); a path ending in ``@attr`` can never be hit (modifies replace
    text, not attributes); an element-valued path compares by subtree
    text, which the element's own direct text feeds.
    """
    if steps and steps[-1].startswith("@"):
        return False
    if steps and steps[-1] == "text()":
        steps = steps[:-1]
    return steps == tags


def tag_path(storage: StorageManager, key: FlexKey) -> tuple[str, ...]:
    """The root-to-node element tag path of ``key`` in its document.

    Delegates to the storage manager, whose structural index caches the
    path per key (keys never relabel, tags never change), so classifying
    an update does not re-walk the target's ancestors.
    """
    return storage.tag_path(key)


_tag_path = tag_path  # historical name
