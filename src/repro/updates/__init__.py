"""Validate phase: update primitives, SAPT, batching (Chapter 5)."""

from .batch import RunBatcher, batch_update_trees, spec_for_run
from .errors import UpdateError
from .primitives import UpdateRequest, UpdateTree
from .sapt import AccessPath, Sapt

__all__ = ["AccessPath", "RunBatcher", "Sapt", "UpdateError",
           "UpdateRequest", "UpdateTree", "batch_update_trees",
           "spec_for_run"]
