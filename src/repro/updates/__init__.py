"""Validate phase: update primitives, SAPT, batching (Chapter 5)."""

from .batch import batch_update_trees
from .primitives import UpdateRequest, UpdateTree
from .sapt import AccessPath, Sapt

__all__ = ["AccessPath", "Sapt", "UpdateRequest", "UpdateTree",
           "batch_update_trees"]
