"""Source update primitives and update trees (Chapter 5).

An :class:`UpdateRequest` is the user-facing description of one source
update — insert a fragment at a position, delete a fragment, or replace a
leaf text value (the three primitives of Fig 1.3 / Fig 5.1).  The Validate
phase turns accepted requests into :class:`UpdateTree`\\ s — the (key, kind)
roots the Propagate phase navigates — applying the storage change at the
right point of the pipeline (inserts/modifies before propagation, deletes
after, so counts line up with Chapter 6's rules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..flexkeys import FlexKey
from ..xat.base import DELETE, INSERT, MODIFY
from ..xmlmodel import XmlNode, parse_fragment
from .errors import UpdateError

POSITIONS = ("after", "before", "into")


@dataclass
class UpdateRequest:
    """One source update primitive.

    * ``insert``: ``fragment`` is placed relative to ``target``
      (``position``: "after"/"before" sibling, or "into" = last child);
    * ``delete``: the subtree rooted at ``target`` is removed;
    * ``modify``: the text content of the element at ``target`` is replaced
      with ``new_value``.
    """

    kind: str
    document: str
    target: FlexKey
    fragment: Optional[XmlNode] = None
    position: str = "after"
    new_value: Optional[str] = None

    def __post_init__(self):
        if self.kind not in (INSERT, DELETE, MODIFY):
            raise UpdateError(f"unknown update kind {self.kind!r}")
        if self.position not in POSITIONS:
            # Validated for every kind: a bad position on a delete/modify
            # is a caller bug even though those kinds never read it.
            raise UpdateError(
                f"unknown position {self.position!r} for {self.kind} "
                f"(expected one of {', '.join(POSITIONS)})")
        if self.kind == INSERT and self.fragment is None:
            raise UpdateError("insert requires a fragment")
        if self.kind == MODIFY and self.new_value is None:
            raise UpdateError("modify requires new_value")

    @classmethod
    def insert(cls, document: str, target: FlexKey,
               fragment: XmlNode | str,
               position: str = "after") -> "UpdateRequest":
        if isinstance(fragment, str):
            nodes = parse_fragment(fragment)
            if len(nodes) != 1:
                raise UpdateError("insert fragment must be a single element")
            fragment = nodes[0]
        return cls(INSERT, document, target, fragment=fragment,
                   position=position)

    @classmethod
    def delete(cls, document: str, target: FlexKey) -> "UpdateRequest":
        return cls(DELETE, document, target)

    @classmethod
    def modify(cls, document: str, target: FlexKey,
               new_value: str) -> "UpdateRequest":
        return cls(MODIFY, document, target, new_value=new_value)


@dataclass
class UpdateTree:
    """A validated update root: the unit the Propagate phase consumes.

    A *first-class modify* tree carries the replaced text as an
    ``(old_value, new_value)`` pair: the Propagate phase then emits a
    paired retraction (old value, count -1) and assertion (new value,
    count +1) through the operator stack instead of a content refresh —
    the treatment value changes need when they feed predicates, join
    keys or sort keys (re-routing a derivation is not expressible as a
    count-neutral refresh).  Sufficient modifies leave the pair unset
    and propagate as refreshes, as before.
    """

    document: str
    root: FlexKey
    kind: str
    old_value: Optional[str] = None
    new_value: Optional[str] = None

    @property
    def sign(self) -> int:
        return {INSERT: 1, DELETE: -1, MODIFY: 0}[self.kind]

    @property
    def has_pair(self) -> bool:
        """Whether this is a first-class modify (retract/assert pair)."""
        return self.kind == MODIFY and self.old_value is not None
