"""Typed errors for the update layer and the session API built on it.

:class:`UpdateError` subclasses :class:`ValueError` so existing callers
that catch the bare built-in keep working, while new code can catch the
typed error and inspect *which* statement failed and how far a batch got
before failing.
"""

from __future__ import annotations

from typing import Any, Optional


class UpdateError(ValueError):
    """A source update was malformed, unresolvable, or failed to apply.

    ``statement`` carries the offending input when known — an
    :class:`~repro.api.Update`, an XQuery-update string, or the raw
    :class:`~repro.updates.UpdateRequest`.  ``applied`` counts the
    requests that reached storage before the failure (0 when the batch
    was rolled back before anything was applied).
    """

    def __init__(self, message: str, *, statement: Optional[Any] = None,
                 applied: int = 0):
        super().__init__(message)
        self.statement = statement
        self.applied = applied
