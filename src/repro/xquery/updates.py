"""Parser/evaluator for the XQuery update language subset of [TIHW01].

Covers the three primitives of Fig 1.3:

.. code-block:: none

    for $v in document("d.xml")/path[pred]
    (where $v/path = "literal")?
    update $v (
        insert <fragment/> (before | after | into) $v2
      | delete $v2
      | replace $v2 with "literal"
    )

``$v2`` is ``$v`` or a path below it.  Positional predicates ``[n]`` are
allowed in update targets (they are evaluated directly against storage,
unlike query predicates).  Evaluation turns the statement into concrete
:class:`~repro.updates.UpdateRequest` objects against a storage manager.

A ``replace`` statement resolves to a modify request; downstream, the
Validate phase classifies it per view — irrelevant (storage only),
sufficient (content refresh) or first-class (the replaced text travels
as a retract/assert pair when it feeds predicates or sort keys; see
:mod:`repro.updates.sapt`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from ..flexkeys import LEVEL_SEP, FlexKey
from ..storage import StorageManager
from ..updates.primitives import UpdateRequest
from ..xat.paths import Path
from .ast import PathExpr, PredicateExpr, VarRef
from .parser import XQueryParseError, XQueryParser


@dataclass
class UpdateStatement:
    """One parsed ``for … update …`` statement."""

    var: str
    binding: PathExpr
    where: Optional[tuple[str, str, str]]   # (relative path, op, literal)
    action: str                             # insert / delete / replace
    target_path: str                        # path below $v ("" = $v itself)
    fragment_xml: Optional[str] = None      # for insert
    position: Optional[str] = None          # before / after / into
    new_value: Optional[str] = None         # for replace


def parse_update(text: str) -> UpdateStatement:
    parser = _UpdateParser(text)
    statement = parser.parse()
    parser.skip_ws()
    if not parser.at_end():
        raise XQueryParseError("trailing input after update", parser.pos)
    return statement


class _UpdateParser(XQueryParser):
    def parse(self) -> UpdateStatement:
        if not self.take_keyword("for"):
            raise self.error("expected 'for'")
        self.expect("$")
        var = self.parse_name()
        if not self.take_keyword("in"):
            raise self.error("expected 'in'")
        binding = self.parse_single()
        if not isinstance(binding, PathExpr) or not binding.from_document:
            raise self.error("update binding must be a document path")
        where = None
        if self.take_keyword("where"):
            left = self.parse_single()
            self.skip_ws()
            op = None
            for candidate in ("!=", "<=", ">=", "=", "<", ">"):
                if self.try_token(candidate):
                    op = candidate
                    break
            if op is None:
                raise self.error("expected comparison in where")
            self.skip_ws()
            if self.peek() in "'\"“":
                literal = self.parse_string()
            else:
                literal = self.parse_number().value
            rel = self._relative_of(left, var)
            where = (rel, op, literal)
        if not self.take_keyword("update"):
            raise self.error("expected 'update'")
        self.expect("$")
        update_var = self.parse_name()
        if update_var != var:
            raise self.error(f"update variable ${update_var} is not ${var}")
        self.skip_ws()
        if self.take_keyword("insert"):
            fragment_xml = self._parse_raw_fragment()
            position = None
            for candidate in ("before", "after", "into"):
                if self.take_keyword(candidate):
                    position = candidate
                    break
            if position is None:
                raise self.error("expected before/after/into")
            target = self.parse_single()
            return UpdateStatement(var, binding, where, "insert",
                                   self._relative_of(target, var),
                                   fragment_xml=fragment_xml,
                                   position=position)
        if self.take_keyword("delete"):
            target = self.parse_single()
            return UpdateStatement(var, binding, where, "delete",
                                   self._relative_of(target, var))
        if self.take_keyword("replace"):
            target = self.parse_single()
            if not self.take_keyword("with"):
                raise self.error("expected 'with'")
            self.skip_ws()
            value = self.parse_string() if self.peek() in "'\"“" \
                else self.parse_number().value
            rel = self._relative_of(target, var)
            if rel.endswith("text()"):
                rel = rel[:-len("/text()")] if rel != "text()" else ""
            return UpdateStatement(var, binding, where, "replace", rel,
                                   new_value=value)
        raise self.error("expected insert/delete/replace")

    def _relative_of(self, expr, var: str) -> str:
        if isinstance(expr, VarRef):
            if expr.name != var:
                raise self.error(f"unknown variable ${expr.name}")
            return ""
        if isinstance(expr, PathExpr) and isinstance(expr.source, VarRef):
            if expr.source.name != var:
                raise self.error(f"unknown variable ${expr.source.name}")
            return expr.path
        raise self.error("expected $var or $var/path")

    def _parse_raw_fragment(self) -> str:
        """Capture the inserted XML verbatim (balanced element)."""
        self.skip_ws()
        if self.peek() != "<":
            raise self.error("expected an XML fragment")
        start = self.pos
        depth = 0
        i = self.pos
        text = self.text
        while i < len(text):
            if text.startswith("</", i):
                depth -= 1
                i = text.index(">", i) + 1
                if depth == 0:
                    self.pos = i
                    return text[start:i]
            elif text.startswith("<", i):
                end = text.index(">", i)
                if text[end - 1] == "/":
                    if depth == 0:
                        self.pos = end + 1
                        return text[start:end + 1]
                else:
                    depth += 1
                i = end + 1
            else:
                i += 1
        raise self.error("unterminated XML fragment")


def evaluate_update(statement: UpdateStatement, storage: StorageManager
                    ) -> list[UpdateRequest]:
    """Resolve a parsed update statement into concrete update requests."""
    document = statement.binding.source
    bindings = _resolve_binding(storage, statement.binding)
    if statement.where is not None:
        rel, op, literal = statement.where
        bindings = [key for key in bindings
                    if _where_matches(storage, key, rel, op, literal)]
    requests: list[UpdateRequest] = []
    for key in bindings:
        targets = _resolve_relative(storage, key, statement.target_path)
        for target in targets:
            if statement.action == "insert":
                position = statement.position
                requests.append(UpdateRequest.insert(
                    document, target, statement.fragment_xml,
                    position=position))
            elif statement.action == "delete":
                requests.append(UpdateRequest.delete(document, target))
            else:
                requests.append(UpdateRequest.modify(
                    document, target, statement.new_value))
    return requests


def parse_document_path(document: str, text: str) -> PathExpr:
    """Parse a path-addressed target like ``/bib/book[2]/title`` into a
    :class:`PathExpr` rooted at ``document``.

    The grammar is the update-target path language: child ``/`` and
    descendant ``//`` steps, ``@attr``/``text()`` value steps, positional
    predicates ``[n]`` and value predicates ``[rel/path op literal]`` on
    any step.  A leading slash is optional.  Parses are memoized — the
    result is a pure function of the input and is never mutated
    downstream, and sessions re-issue the same path strings constantly.
    """
    return _parse_document_path(document, text)


@lru_cache(maxsize=4096)
def _parse_document_path(document: str, text: str) -> PathExpr:
    stripped = text.strip()
    if not stripped:
        raise XQueryParseError("empty path", 0)
    if not stripped.startswith("/"):
        stripped = "/" + stripped
    parser = XQueryParser(stripped)
    path, predicates = parser._parse_relative_path()
    parser.skip_ws()
    if not parser.at_end():
        raise XQueryParseError(
            f"trailing input after path: {parser.text[parser.pos:]!r}",
            parser.pos)
    return PathExpr(document, path, predicates)


def resolve_path(storage: StorageManager, document: str,
                 text: str) -> list[FlexKey]:
    """Resolve a path-addressed target to concrete FlexKeys, in document
    order — the session API's path→key entry point."""
    return resolve_path_expr(storage, parse_document_path(document, text))


def resolve_path_expr(storage: StorageManager, expr: PathExpr,
                      cache: Optional[dict] = None) -> list[FlexKey]:
    """Resolve a document-rooted :class:`PathExpr`, applying each step's
    predicates before the following step navigates on.

    ``cache`` memoizes navigation segments across resolutions *of the
    same storage snapshot* (keyed by document, step prefix and the
    predicates already applied) — a transactional batch resolves every
    statement before applying any, so statements addressing siblings
    (``person[1]``, ``person[2]``, …) share one navigation pass.  Never
    reuse a cache across storage mutations.
    """
    if not expr.from_document:
        raise ValueError("path must be rooted at a document")
    pairs = Path.parse(expr.path).as_pairs()
    frontier: Optional[list[FlexKey]] = None
    consumed = 0
    applied: tuple = ()   # signature of the predicates applied so far

    def navigate(upto: int) -> list[FlexKey]:
        if cache is None:
            return storage.find_by_path(expr.source, pairs[consumed:upto],
                                        start=frontier)
        key = (expr.source, tuple(pairs[:upto]), applied)
        hit = cache.get(key)
        if hit is None:
            hit = storage.find_by_path(expr.source, pairs[consumed:upto],
                                       start=frontier)
            cache[key] = hit
        return hit

    for step_index in sorted(expr.predicates):
        frontier = navigate(step_index + 1)
        consumed = step_index + 1
        for predicate in expr.predicates[step_index]:
            frontier_key = ((expr.source, tuple(pairs[:consumed]), applied)
                            if cache is not None else None)
            frontier = _apply_predicate(storage, frontier, predicate,
                                        cache, frontier_key)
            applied += ((step_index, predicate.path, predicate.op,
                         predicate.literal),)
    return navigate(len(pairs))


def _resolve_binding(storage: StorageManager,
                     binding: PathExpr) -> list[FlexKey]:
    return resolve_path_expr(storage, binding)


def _apply_predicate(storage, keys, predicate: PredicateExpr,
                     cache: Optional[dict] = None,
                     frontier_key=None) -> list[FlexKey]:
    if predicate.path == "position()":
        position = int(predicate.literal)
        if position < 1:
            raise ValueError(
                f"positional predicate [{predicate.literal}] is invalid: "
                "positions start at 1")
        # XPath semantics: position counts within each parent's matches,
        # so ``/bib/book/author[2]`` addresses every book's second
        # author.  The per-parent grouping depends only on the frontier,
        # not the position, so a batch addressing siblings (person[1],
        # person[2], …) shares one grouping pass through the navigation
        # cache; parents are derived lexically from the FlexKeys (storage
        # keys never compose), avoiding a node resolution per candidate.
        groups = None
        groups_key = None
        if cache is not None and frontier_key is not None:
            groups_key = ("position-groups", frontier_key)
            groups = cache.get(groups_key)
        if groups is None:
            groups = {}
            for key in keys:
                value = key.value
                sep = value.rfind(LEVEL_SEP)
                groups.setdefault(value[:sep] if sep >= 0 else "",
                                  []).append(key)
            if groups_key is not None:
                cache[groups_key] = groups
        return [members[position - 1] for members in groups.values()
                if len(members) >= position]
    kept = []
    for key in keys:
        if _where_matches(storage, key, predicate.path, predicate.op,
                          predicate.literal):
            kept.append(key)
    return kept


def _where_matches(storage, key: FlexKey, relative: str, op: str,
                   literal: str) -> bool:
    values = []
    if relative in ("", "text()"):
        values.append(storage.text(key))
    else:
        path = Path.parse(relative)
        attribute = None
        for step in path.value_steps():
            if step.is_attribute:
                attribute = step.attribute_name
        for target in _resolve_relative(storage, key, relative):
            if attribute is not None:
                value = storage.attribute(target, attribute)
                if value is not None:
                    values.append(value)
            else:
                values.append(storage.text(target))
    import operator as _op

    table = {"=": _op.eq, "!=": _op.ne, "<": _op.lt, "<=": _op.le,
             ">": _op.gt, ">=": _op.ge}
    fn = table[op]
    for value in values:
        try:
            if fn(float(value), float(literal)):
                return True
        except ValueError:
            if fn(value, literal):
                return True
    return False


def _resolve_relative(storage, key: FlexKey, relative: str
                      ) -> list[FlexKey]:
    if not relative:
        return [key]
    path = Path.parse(relative)
    current = [key]
    for step in path.element_steps():
        matched: list[FlexKey] = []
        for k in current:
            if step.axis == "child":
                matched.extend(storage.children(k, step.test))
            else:
                matched.extend(storage.descendants(k, step.test))
        current = matched
    return current


def apply_xquery_update(text: str, storage: StorageManager
                        ) -> list[UpdateRequest]:
    """Parse an XQuery-update statement and resolve it against storage."""
    return evaluate_update(parse_update(text), storage)
