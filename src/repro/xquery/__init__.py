"""XQuery subset: AST, parser, normalization (Sections 2.1, 2.3)."""

from . import ast
from .normalize import normalize
from .parser import XQueryParseError, XQueryParser, parse_query

__all__ = ["XQueryParseError", "XQueryParser", "ast", "normalize",
           "parse_query"]
