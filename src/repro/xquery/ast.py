"""Abstract syntax tree for the paper's XQuery subset (Fig 2.1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass
class StringLiteral:
    value: str


@dataclass
class NumberLiteral:
    value: str  # kept textual; comparisons coerce


@dataclass
class VarRef:
    name: str  # without the leading $


@dataclass
class PredicateExpr:
    """A step predicate ``[relative/path op literal]`` (lifted to WHERE
    during normalization, Rule 3)."""

    path: str
    op: str
    literal: str


@dataclass
class PathExpr:
    """``doc("name")/steps`` or ``$var/steps`` with optional predicates.

    ``predicates`` maps a step index to the predicates attached there.
    """

    source: Union[str, VarRef]           # document name or variable
    path: str                            # textual path, e.g. "bib/book/@year"
    predicates: dict[int, list[PredicateExpr]] = field(default_factory=dict)

    @property
    def from_document(self) -> bool:
        return isinstance(self.source, str)


@dataclass
class FunctionCall:
    """distinct-values, count, sum, avg, min, max."""

    name: str
    argument: "Expression"


@dataclass
class Comparison:
    left: "Expression"
    op: str
    right: "Expression"


@dataclass
class BoolAnd:
    conjuncts: list["Expression"]


@dataclass
class ForClause:
    var: str
    binding: "Expression"


@dataclass
class LetClause:
    var: str
    binding: "Expression"


@dataclass
class FLWOR:
    fors: list[ForClause]
    lets: list[LetClause]
    where: Optional["Expression"]
    order_by: list["Expression"]
    ret: "Expression"


@dataclass
class TextContent:
    text: str


@dataclass
class ElementConstructor:
    tag: str
    attributes: list[tuple[str, "Expression"]]
    content: list["Expression"]


@dataclass
class Sequence:
    items: list["Expression"]


Expression = Union[StringLiteral, NumberLiteral, VarRef, PathExpr,
                   FunctionCall, Comparison, BoolAnd, FLWOR, TextContent,
                   ElementConstructor, Sequence]
