"""Recursive-descent parser for the XQuery subset of Fig 2.1.

Character-level (no separate lexer) because element constructors switch the
language mode mid-stream: ``<result>{ FLWOR }</result>`` mixes XML content
with query expressions inside ``{ }``.
"""

from __future__ import annotations

from typing import Optional

from .ast import (BoolAnd, Comparison, ElementConstructor, Expression,
                  FLWOR, ForClause, FunctionCall, LetClause, NumberLiteral,
                  PathExpr, PredicateExpr, Sequence, StringLiteral,
                  TextContent, VarRef)

_KEYWORDS = {"for", "let", "where", "order", "by", "return", "in", "and"}
_FUNCTIONS = {"distinct-values", "count", "sum", "avg", "min", "max"}
_COMPARE_OPS = ("!=", "<=", ">=", "=", "<", ">")


class XQueryParseError(ValueError):
    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


def parse_query(text: str) -> Expression:
    """Parse a complete query expression."""
    parser = XQueryParser(text)
    expr = parser.parse_expression()
    parser.skip_ws()
    if not parser.at_end():
        raise XQueryParseError("trailing input after query", parser.pos)
    return expr


class XQueryParser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    # -- low level ------------------------------------------------------------------

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < len(self.text) else ""

    def skip_ws(self) -> None:
        while not self.at_end():
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("(:", self.pos):
                end = self.text.find(":)", self.pos)
                if end < 0:
                    raise XQueryParseError("unterminated comment", self.pos)
                self.pos = end + 2
            else:
                return

    def error(self, message: str) -> XQueryParseError:
        return XQueryParseError(message, self.pos)

    def expect(self, token: str) -> None:
        self.skip_ws()
        if not self.text.startswith(token, self.pos):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def try_token(self, token: str) -> bool:
        self.skip_ws()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def peek_keyword(self, word: str) -> bool:
        """Case-insensitive keyword lookahead (paper figures use FOR/WHERE)."""
        self.skip_ws()
        if self.text[self.pos:self.pos + len(word)].lower() != word.lower():
            return False
        after = self.peek(len(word))
        return not (after.isalnum() or after in "_-")

    def take_keyword(self, word: str) -> bool:
        if self.peek_keyword(word):
            self.pos += len(word)
            return True
        return False

    def parse_name(self) -> str:
        self.skip_ws()
        start = self.pos
        while not self.at_end():
            ch = self.text[self.pos]
            if ch.isalnum() or ch in "_-.":
                self.pos += 1
            else:
                break
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start:self.pos]

    def parse_string(self) -> str:
        self.skip_ws()
        quote = self.peek()
        pairs = {"'": "'", '"': '"', "“": "”"}
        if quote not in pairs:
            raise self.error("expected a string literal")
        self.pos += 1
        end = self.text.find(pairs[quote], self.pos)
        if end < 0:
            raise self.error("unterminated string literal")
        value = self.text[self.pos:end]
        self.pos = end + 1
        return value

    # -- expressions -------------------------------------------------------------------

    def parse_expression(self) -> Expression:
        self.skip_ws()
        if self.peek_keyword("for") or self.peek_keyword("let"):
            return self.parse_flwor()
        return self.parse_single()

    def parse_single(self) -> Expression:
        self.skip_ws()
        ch = self.peek()
        if ch == "<":
            return self.parse_constructor()
        if ch == "(":
            self.pos += 1
            expr = self.parse_expression()
            self.expect(")")
            return expr
        if ch in ("'", '"'):
            return StringLiteral(self.parse_string())
        if ch.isdigit() or (ch == "-" and self.peek(1).isdigit()):
            return self.parse_number()
        if ch == "$":
            return self.parse_var_path()
        # function call or doc(...) path
        save = self.pos
        name = self.parse_name()
        self.skip_ws()
        if name in ("doc", "document") and self.peek() == "(":
            return self.parse_doc_path()
        if name in _FUNCTIONS and self.peek() == "(":
            self.expect("(")
            argument = self.parse_expression()
            self.expect(")")
            # allow a trailing path on distinct-values(doc(..)/a/@b) form
            return FunctionCall(name, argument)
        self.pos = save
        raise self.error(f"unexpected token near {self.text[self.pos:self.pos+20]!r}")

    def parse_number(self) -> NumberLiteral:
        self.skip_ws()
        start = self.pos
        if self.peek() == "-":
            self.pos += 1
        while not self.at_end() and (self.peek().isdigit() or self.peek() == "."):
            self.pos += 1
        return NumberLiteral(self.text[start:self.pos])

    # -- paths -----------------------------------------------------------------------

    def parse_var_path(self) -> Expression:
        self.expect("$")
        name = self.parse_name()
        path, predicates = self._parse_relative_path()
        if not path:
            return VarRef(name)
        return PathExpr(VarRef(name), path, predicates)

    def parse_doc_path(self) -> PathExpr:
        self.expect("(")
        doc_name = self.parse_string()
        self.expect(")")
        path, predicates = self._parse_relative_path()
        return PathExpr(doc_name, path, predicates)

    def _parse_relative_path(self) -> tuple[str, dict[int, list[PredicateExpr]]]:
        """Steps after the entry point; returns (path text, predicates)."""
        parts: list[str] = []
        predicates: dict[int, list[PredicateExpr]] = {}
        step_index = -1
        while True:
            if self.text.startswith("//", self.pos):
                self.pos += 2
                sep = "//"
            elif self.peek() == "/":
                self.pos += 1
                sep = "/"
            else:
                break
            # step name: @name, text(), or element name
            if self.peek() == "@":
                self.pos += 1
                name = "@" + self.parse_name()
            else:
                name = self.parse_name()
                if name == "text" and self.peek() == "(":
                    self.expect("(")
                    self.expect(")")
                    name = "text()"
            parts.append(("//" if sep == "//" else "/") + name)
            step_index += 1
            while self.peek() == "[":
                predicates.setdefault(step_index, []).append(
                    self._parse_predicate())
        return "".join(parts), predicates

    def _parse_predicate(self) -> PredicateExpr:
        self.expect("[")
        self.skip_ws()
        if self.peek().isdigit():
            # positional predicate: only allowed in update targets
            start = self.pos
            while self.peek().isdigit():
                self.pos += 1
            position = self.text[start:self.pos]
            self.expect("]")
            return PredicateExpr("position()", "=", position)
        path_parts = []
        while True:
            if self.peek() == "@":
                self.pos += 1
                path_parts.append("@" + self.parse_name())
            else:
                name = self.parse_name()
                if name == "text" and self.peek() == "(":
                    self.expect("(")
                    self.expect(")")
                    name = "text()"
                path_parts.append(name)
            if self.peek() == "/":
                self.pos += 1
                continue
            break
        self.skip_ws()
        for op in _COMPARE_OPS:
            if self.try_token(op):
                self.skip_ws()
                value = self.parse_string() if self.peek() in "'\"" \
                    else self.parse_number().value
                self.expect("]")
                return PredicateExpr("/".join(path_parts), op, value)
        raise self.error("expected comparison operator in predicate")

    # -- FLWOR -------------------------------------------------------------------------

    def parse_flwor(self) -> FLWOR:
        fors: list[ForClause] = []
        lets: list[LetClause] = []
        while True:
            if self.take_keyword("for"):
                while True:
                    self.expect("$")
                    var = self.parse_name()
                    if not (self.take_keyword("in") or self.take_keyword("IN")):
                        raise self.error("expected 'in'")
                    fors.append(ForClause(var, self.parse_single()))
                    if not self.try_token(","):
                        break
                    self.skip_ws()
                    # a comma may also start another "for $x in"-style binding
                    if self.peek_keyword("for"):
                        self.take_keyword("for")
                continue
            if self.take_keyword("let"):
                while True:
                    self.expect("$")
                    var = self.parse_name()
                    self.expect(":=")
                    lets.append(LetClause(var, self.parse_single()))
                    if not self.try_token(","):
                        break
                continue
            break
        where = None
        if self.take_keyword("where"):
            where = self.parse_condition()
        order_by: list[Expression] = []
        if self.take_keyword("order"):
            if not self.take_keyword("by"):
                raise self.error("expected 'by'")
            while True:
                order_by.append(self.parse_single())
                if not self.try_token(","):
                    break
        if not self.take_keyword("return"):
            raise self.error("expected 'return'")
        ret = self.parse_return_expr()
        return FLWOR(fors, lets, where, order_by, ret)

    def parse_condition(self) -> Expression:
        conjuncts = [self.parse_comparison()]
        while self.take_keyword("and"):
            conjuncts.append(self.parse_comparison())
        if len(conjuncts) == 1:
            return conjuncts[0]
        return BoolAnd(conjuncts)

    def parse_comparison(self) -> Comparison:
        left = self.parse_single()
        self.skip_ws()
        for op in _COMPARE_OPS:
            if self.try_token(op):
                right = self.parse_single()
                return Comparison(left, "=" if op == "==" else op, right)
        raise self.error("expected comparison operator")

    def parse_return_expr(self) -> Expression:
        self.skip_ws()
        items = [self.parse_expression()]
        while self.try_token(","):
            items.append(self.parse_expression())
        # Adjacent { } groups in return clauses arrive via constructors;
        # a bare juxtaposition like {$a} {$b} only occurs inside content.
        if len(items) == 1:
            return items[0]
        return Sequence(items)

    # -- element constructors --------------------------------------------------------------

    def parse_constructor(self) -> ElementConstructor:
        self.expect("<")
        tag = self.parse_name()
        attributes: list[tuple[str, Expression]] = []
        while True:
            self.skip_ws()
            if self.try_token("/>"):
                return ElementConstructor(tag, attributes, [])
            if self.try_token(">"):
                break
            attr = self.parse_name()
            self.expect("=")
            self.skip_ws()
            quote = self.peek()
            if quote not in ("'", '"', "“"):
                raise self.error("expected quoted attribute value")
            self.pos += 1
            value = self._parse_attribute_value(quote)
            attributes.append((attr, value))
        content = self._parse_content(tag)
        return ElementConstructor(tag, attributes, content)

    def _parse_attribute_value(self, quote: str) -> Expression:
        closer = "”" if quote == "“" else quote
        parts: list[Expression] = []
        buffer: list[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated attribute value")
            ch = self.peek()
            if ch == closer or (quote == "“" and ch == "“"):
                self.pos += 1
                break
            if ch == "{":
                if buffer:
                    parts.append(TextContent("".join(buffer)))
                    buffer = []
                self.pos += 1
                parts.append(self.parse_expression())
                self.expect("}")
                continue
            buffer.append(ch)
            self.pos += 1
        if buffer:
            text = "".join(buffer)
            if text.strip():
                parts.append(TextContent(text))
        if len(parts) == 1:
            return parts[0]
        if not parts:
            return TextContent("")
        return Sequence(parts)

    def _parse_content(self, tag: str) -> list[Expression]:
        content: list[Expression] = []
        buffer: list[str] = []

        def flush():
            if buffer:
                text = "".join(buffer).strip()
                if text:
                    content.append(TextContent(text))
                buffer.clear()

        while True:
            if self.at_end():
                raise self.error(f"unterminated constructor <{tag}>")
            if self.text.startswith("</", self.pos):
                flush()
                self.pos += 2
                name = self.parse_name()
                if name != tag:
                    raise self.error(
                        f"mismatched close tag </{name}> for <{tag}>")
                self.expect(">")
                return content
            ch = self.peek()
            if ch == "{":
                flush()
                self.pos += 1
                content.append(self.parse_expression())
                self.expect("}")
                continue
            if ch == "<":
                # A nested constructor, or a FLWOR keyword would have been
                # inside braces; bare '<' means nested element.
                flush()
                content.append(self.parse_constructor())
                continue
            # Bare FLWOR inside element content (the paper writes
            # <books> FOR ... </books> without braces).  peek_keyword skips
            # whitespace as a side effect, so save/restore the position.
            if not "".join(buffer).strip():
                saved = self.pos
                if self.peek_keyword("for"):
                    flush()
                    content.append(self.parse_flwor())
                    continue
                self.pos = saved
            buffer.append(ch)
            self.pos += 1
