"""Source-level XQuery normalization (Section 2.3.1).

* **Rule 1** — let-variables are inlined: every occurrence of the variable
  is substituted with its binding expression (the algebraic plan later
  shares the common subexpression, turning the tree into a DAG).
* **Rule 2** — multi-variable for clauses are already kept as ordered
  clause lists by the parser; nothing further is needed.
* **Rule 3** — XPath predicates referring to the navigation's own steps are
  carried on :class:`PathExpr` and lifted into selections by the
  translator.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from .ast import (BoolAnd, Comparison, ElementConstructor, Expression,
                  FLWOR, ForClause, FunctionCall, LetClause, NumberLiteral,
                  PathExpr, Sequence, StringLiteral, TextContent, VarRef)


def normalize(expr: Expression) -> Expression:
    """Apply the normalization rules to a parsed query."""
    return _inline_lets(expr, {})


def _inline_lets(expr: Expression, env: dict[str, Expression]) -> Expression:
    if isinstance(expr, FLWOR):
        new_env = dict(env)
        # Let-variables are visible to the whole block (the parser hoists
        # clause order); inline them first, then let for-vars shadow.
        for let in expr.lets:
            new_env[let.var] = _inline_lets(let.binding, new_env)
        fors = []
        for clause in expr.fors:
            fors.append(ForClause(clause.var,
                                  _inline_lets(clause.binding, new_env)))
            new_env.pop(clause.var, None)  # for-vars shadow outer lets
        where = (_inline_lets(expr.where, new_env)
                 if expr.where is not None else None)
        order_by = [_inline_lets(e, new_env) for e in expr.order_by]
        ret = _inline_lets(expr.ret, new_env)
        return FLWOR(fors, [], where, order_by, ret)
    if isinstance(expr, VarRef):
        return env.get(expr.name, expr)
    if isinstance(expr, PathExpr):
        if isinstance(expr.source, VarRef) and expr.source.name in env:
            bound = env[expr.source.name]
            if isinstance(bound, PathExpr):
                merged_preds = dict(bound.predicates)
                offset = len([s for s in bound.path.split("/") if s])
                for idx, preds in expr.predicates.items():
                    merged_preds[idx + offset] = list(preds)
                # Path texts carry their leading slash: plain concatenation.
                merged_path = (bound.path + expr.path if expr.path
                               else bound.path)
                return PathExpr(bound.source, merged_path, merged_preds)
            raise ValueError(
                f"cannot inline let ${expr.source.name} under a path")
        return expr
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name, _inline_lets(expr.argument, env))
    if isinstance(expr, Comparison):
        return Comparison(_inline_lets(expr.left, env), expr.op,
                          _inline_lets(expr.right, env))
    if isinstance(expr, BoolAnd):
        return BoolAnd([_inline_lets(c, env) for c in expr.conjuncts])
    if isinstance(expr, ElementConstructor):
        return ElementConstructor(
            expr.tag,
            [(name, _inline_lets(value, env))
             for name, value in expr.attributes],
            [_inline_lets(c, env) for c in expr.content])
    if isinstance(expr, Sequence):
        return Sequence([_inline_lets(i, env) for i in expr.items])
    if isinstance(expr, (StringLiteral, NumberLiteral, TextContent)):
        return expr
    raise TypeError(f"unexpected AST node {expr!r}")


def flwor_variables(expr: FLWOR) -> list[str]:
    return [clause.var for clause in expr.fors]
