"""The counting rules of Chapter 6 (Tables 6.1 and 6.2) as checkable data.

Count annotations record the number of derivations of every node/tuple so
that delete updates remove exactly the derivations they cancel.  The rules
are *implemented inside the operators* (tuple counts ride along with
execution); this module states them declaratively so tests can assert the
implementation matches the specification, and users can inspect them.
"""

from __future__ import annotations

from dataclasses import dataclass

QUERY_TIME = "query-execution time"
MAINTENANCE_TIME = "view-maintenance time"


@dataclass(frozen=True)
class CountRule:
    operator: str
    rule: str


#: Table 6.1 — count computation during normal query execution.
QUERY_TIME_RULES: tuple[CountRule, ...] = (
    CountRule("Source", "the document root tuple has count 1"),
    CountRule("Navigate Unnest",
              "output tuple count = input tuple count (every source node "
              "carries one derivation)"),
    CountRule("Navigate Collection",
              "output tuple count = input tuple count"),
    CountRule("Select", "tuple counts pass through unchanged"),
    CountRule("Join / Cartesian Product",
              "output tuple count = left count x right count"),
    CountRule("Left Outer Join",
              "joined tuples multiply counts; a null-padded tuple carries "
              "its left tuple's count"),
    CountRule("Distinct",
              "output count = SUM of the duplicate input counts per value"),
    CountRule("Group By",
              "group tuple count = SUM of member counts; combined items "
              "carry (item count x member tuple count)"),
    CountRule("Tagger",
              "the constructed node's count is its tuple's count (stored "
              "relative to the tuple; absolute at consumption)"),
    CountRule("Combine / XML Union",
              "items keep their absolute derivation counts"),
)

#: Table 6.2 — count computation during view maintenance.
MAINTENANCE_TIME_RULES: tuple[CountRule, ...] = (
    CountRule("Navigate Unnest",
              "crossing into an insert root multiplies +1, into a delete "
              "root -1, into a modify root marks the tuple refresh "
              "(count-neutral); the sign applies exactly once per chain"),
    CountRule("Navigate (final ancestor)",
              "stopping at a proper ancestor of a root marks the tuple "
              "refresh: the exposed fragment's content changed"),
    CountRule("Join family",
              "Δ(A x B) = ΔA x B_new + A_old x ΔB, counts multiplying as "
              "at query time; B_new/A_old are realized by full/anti "
              "evaluation depending on the update phase"),
    CountRule("Distinct / Group By",
              "linear in Z-semantics: evaluated over the delta, counts "
              "summed (negative counts cancel positive ones)"),
    CountRule("Deep Union (apply)",
              "node counts add; a node reaching count <= 0 is disconnected "
              "at its root; refresh nodes merge count-neutrally"),
)


def rules(phase: str) -> tuple[CountRule, ...]:
    if phase == QUERY_TIME:
        return QUERY_TIME_RULES
    if phase == MAINTENANCE_TIME:
        return MAINTENANCE_TIME_RULES
    raise ValueError(f"unknown phase {phase!r}")
