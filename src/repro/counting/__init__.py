"""Counting solution for delete updates (Chapter 6)."""

from .rules import (MAINTENANCE_TIME, MAINTENANCE_TIME_RULES, QUERY_TIME,
                    QUERY_TIME_RULES, CountRule, rules)

__all__ = ["CountRule", "MAINTENANCE_TIME", "MAINTENANCE_TIME_RULES",
           "QUERY_TIME", "QUERY_TIME_RULES", "rules"]
