"""View handles and refresh subscriptions for the session API."""

from __future__ import annotations

import time
from typing import Callable

from ..multiview.registry import RefreshEvent
from ..obs.core import STATE as _OBS

__all__ = ["Subscription", "View"]


class View:
    """A named materialized view under :class:`~repro.api.Database`
    maintenance — a key-free handle over the registry's registered view."""

    def __init__(self, db, name: str):
        self._db = db
        self.name = name

    @property
    def _registered(self):
        return self._db.registry.view(self.name)

    @property
    def query_text(self) -> str:
        return self._db._view_queries.get(self.name, "")

    @property
    def policy(self):
        return self._registered.policy

    @property
    def stats(self):
        return self._registered.stats

    def read(self) -> str:
        """The view's XML, flushing pending deltas first (the lazy flush
        point of deferred/threshold policies)."""
        return self._db.registry.query(self.name)

    def peek(self) -> str:
        """The current extent *without* flushing (deferred views may be
        stale by design)."""
        return self._db.registry.to_xml(self.name)

    def recompute(self) -> str:
        """Full recomputation over current sources — the correctness
        oracle; the maintained extent is untouched."""
        return self._db.registry.recompute_xml(self.name)

    def pending_trees(self) -> int:
        return self._registered.pending_trees()

    def subscribe(self, callback: Callable[[RefreshEvent], None], *,
                  deliver_mutations: bool = False) -> "Subscription":
        return self._db.subscribe(self.name, callback,
                                  deliver_mutations=deliver_mutations)

    def drop(self) -> None:
        self._db.drop_view(self.name)

    def __repr__(self) -> str:
        return f"<View {self.name!r} policy={self.policy.kind}>"


class Subscription:
    """One ``db.subscribe(view, callback)`` registration.

    The callback receives every :class:`~repro.multiview.RefreshEvent`
    of the subscribed view — fired when maintenance changes its extent,
    whether triggered by an update stream, a read of a deferred view, or
    an explicit flush.  ``cancel()`` is idempotent.
    """

    def __init__(self, db, view_name: str,
                 callback: Callable[[RefreshEvent], None]):
        self._db = db
        self.view_name = view_name
        self.callback = callback
        self.active = True

    def _dispatch(self, event: RefreshEvent) -> None:
        if not (self.active and event.view == self.view_name):
            return
        if not _OBS.enabled:
            self.callback(event)
            return
        metrics = self._db.registry.metrics
        metrics.counter("subscriber_callbacks",
                        "Refresh events delivered to subscribers",
                        view=self.view_name).inc()
        started = time.perf_counter()
        try:
            self.callback(event)
        finally:
            metrics.histogram(
                "subscriber_callback_seconds",
                "Time spent inside subscriber callbacks",
                view=self.view_name).observe(
                    time.perf_counter() - started)

    def cancel(self) -> None:
        if not self.active:
            return
        self.active = False
        self._db.registry.remove_refresh_listener(self._dispatch)
        self._db._subscriptions.discard(self)

    def __repr__(self) -> str:
        state = "active" if self.active else "cancelled"
        return f"<Subscription {self.view_name!r} [{state}]>"
