"""The unified ``Database`` session facade over the V-P-A engine.

One key-free entry point for the whole system (the paper's *service*
reading: clients issue source updates and read maintained XQuery views):

* :meth:`Database.load` registers source documents;
* :meth:`Database.create_view` registers + materializes named views with
  per-view maintenance policies;
* :meth:`Database.update` opens the fluent path-addressed builder
  (``db.update("bib.xml").at("/bib/book[2]").insert(...)``);
* :meth:`Database.execute` runs TIHW01-style XQuery-update strings
  through the same submission path;
* :meth:`Database.batch` collects statements and flushes them through
  :meth:`ViewRegistry.apply_updates` as **one routed stream** — every
  statement classified exactly once by the shared validation router,
  delete barriers preserved;
* :meth:`Database.query` answers ad-hoc XQuery reads;
* :meth:`Database.subscribe` fires callbacks on view refresh;
* :meth:`Database.metrics` / :meth:`Database.render_prometheus` /
  :meth:`Database.explain` expose the engine's observability layer
  (see :mod:`repro.obs`);
* the context manager delegates to :meth:`ViewRegistry.close`.

Transactional semantics of a batch: every statement is resolved against
the storage snapshot the batch opened on, *before* anything is applied.
A statement that fails to resolve (malformed path, no matching node, bad
position) aborts the whole batch with a typed
:class:`~repro.updates.UpdateError` carrying the offending statement —
storage and views untouched.  If the routed stream itself fails mid-way
(cross-statement interference, e.g. a later statement touching a subtree
an earlier one deleted), the unapplied remainder is rolled back
(discarded) and the raised :class:`UpdateError` reports how many storage
operations had been applied.
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Optional, Union

from ..durability import DurabilityManager, RecoveryReport
from ..multiview.cost import CostModel
from ..multiview.pipeline import _REMOVED
from ..multiview.policies import MaintenancePolicy
from ..multiview.registry import MultiViewReport, RefreshEvent, ViewRegistry
from ..obs import MetricsRegistry, Tracer, render_prometheus
from ..obs.core import STATE as _OBS
from ..storage import StorageManager
from ..translate import translate_query
from ..updates.errors import UpdateError
from ..xmlmodel import XmlDocument
from ..xquery.parser import XQueryParseError
from ..xquery.updates import evaluate_update, parse_update
from .builder import DocumentUpdater, Update
from .views import Subscription, View

__all__ = ["Batch", "Database"]


class Database:
    """A session over one storage manager and one view registry.

    ``Database()`` owns a fresh :class:`StorageManager`;
    ``Database(storage=...)`` wraps an existing one (the registry
    listener is detached again on :meth:`close`).

    ``Database(compiled=False)`` runs views on the per-tuple tree
    interpreter instead of the default compiled delta-plan VM (see
    :mod:`repro.plan`) — same semantics, used as the differential
    oracle and for bisecting engine regressions.

    ``Database(durable_path=dir)`` opens a **durable** session: update
    batches are write-ahead logged before they mutate anything, the
    engine state (documents, structural index, view extents, operator
    state) is checkpointed every ``checkpoint_every`` logged records and
    on :meth:`close`, and opening over an existing directory *recovers*
    — newest verified checkpoint restored, WAL tail replayed through
    the normal pipeline, torn trailing records discarded.  ``fsync`` is
    ``"always"`` (a batch acknowledged is a batch on disk), ``"batch"``
    (bounded loss on power failure) or ``"off"``; the resulting
    :class:`~repro.durability.RecoveryReport` is at :attr:`recovery`.
    """

    def __init__(self, storage: Optional[StorageManager] = None, *,
                 indexed: bool = True, operator_state: bool = True,
                 compiled: bool = True,
                 durable_path=None, fsync: str = "batch",
                 checkpoint_every: int = 256, durability_fs=None,
                 modify_decomposition=_REMOVED):
        if modify_decomposition is not _REMOVED:
            raise TypeError(
                "modify_decomposition was removed: the legacy "
                "delete+reinsert decomposition of insufficient modifies "
                "is gone after its one-release deprecation window; "
                "modifies always propagate as first-class retract/assert "
                "pairs now")
        self.storage = (storage if storage is not None
                        else StorageManager(indexed=indexed))
        self.registry = ViewRegistry(
            self.storage, operator_state=operator_state,
            compiled=compiled)
        self._batch: Optional["Batch"] = None
        self._subscriptions: set = set()
        self._view_queries: dict[str, str] = {}
        self._closed = False
        self._durability: Optional[DurabilityManager] = None
        self.recovery: Optional[RecoveryReport] = None
        if durable_path is not None:
            manager = DurabilityManager(durable_path, fs=durability_fs,
                                        fsync=fsync,
                                        checkpoint_every=checkpoint_every)
            had_state = manager.has_state()
            if had_state and storage is not None:
                raise ValueError(
                    "cannot wrap an existing StorageManager around a "
                    "durable directory that already holds state; open "
                    "with storage=None to recover it")
            self._durability = manager
            self.recovery = manager.recover(self.registry)
            for name in self.registry.names():
                self._view_queries[name] = \
                    self.registry.view(name).query_text
            manager.bind(self.registry)
            if not had_state and self.storage.document_names:
                # A pre-populated StorageManager over a fresh directory:
                # its contents were never logged, so bootstrap a
                # checkpoint covering them before anything else happens.
                manager.checkpoint(self.registry)

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def durable(self) -> bool:
        return self._durability is not None

    @property
    def durability(self) -> Optional[DurabilityManager]:
        """The bound durability manager (None for in-memory sessions)."""
        return self._durability

    def checkpoint(self) -> int:
        """Cut a checkpoint now; returns its LSN (durable sessions only)."""
        if self._durability is None:
            raise RuntimeError(
                "checkpoint() requires a durable session: open the "
                "database with durable_path=...")
        return self._durability.checkpoint(self.registry)

    def close(self) -> None:
        """End the session: flush durable state (final checkpoint + WAL
        sync), cancel subscriptions and detach the registry from storage
        (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for subscription in list(self._subscriptions):
            subscription.cancel()
        if self._durability is not None:
            self._durability.close(self.registry)
            self.registry.wal = None
        self.registry.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- documents ---------------------------------------------------------------------

    def load(self, name: str, source: Union[str, "os.PathLike", XmlDocument]
             ) -> "Database":
        """Register a source document under ``name``.

        ``source`` is XML text, a filesystem path to an XML file, or a
        prepared :class:`XmlDocument`.  Returns the database for
        chaining: ``db.load("bib.xml", BIB).load("prices.xml", PRICES)``.
        """
        if isinstance(source, XmlDocument):
            if source.name != name:
                raise ValueError(
                    f"document is named {source.name!r}, not {name!r}")
            document = source
        else:
            if isinstance(source, str) and source.lstrip().startswith("<"):
                text = source
            else:
                with open(os.fspath(source), "r", encoding="utf-8") as fh:
                    text = fh.read()
            document = XmlDocument.from_string(name, text)
        self.storage.register(document)
        if self.registry.wal is not None:
            self.registry.wal.log_load(name, document)
        return self

    def documents(self) -> List[str]:
        return self.storage.document_names

    # -- views -------------------------------------------------------------------------

    def create_view(self, name: str, query: str,
                    policy: Union[MaintenancePolicy, str, int] = "immediate",
                    *, cost_model: Optional[CostModel] = None,
                    materialize: bool = True) -> View:
        """Define, register and (by default) materialize a named view.

        ``policy`` is ``"immediate"``, ``"deferred"``, an int K
        (threshold), or a :class:`MaintenancePolicy`.
        """
        self.registry.register(name, query, policy=policy,
                               cost_model=cost_model,
                               materialize=materialize)
        self._view_queries[name] = query
        return View(self, name)

    def drop_view(self, name: str) -> None:
        self.registry.unregister(name)
        self._view_queries.pop(name, None)
        for subscription in list(self._subscriptions):
            if subscription.view_name == name:
                subscription.cancel()

    def views(self) -> List[str]:
        return self.registry.names()

    def view(self, name: str) -> View:
        if name not in self.registry:
            raise KeyError(f"no view named {name!r}")
        return View(self, name)

    def read(self, name: str) -> str:
        """A view's XML, flushing its pending deltas first."""
        return self.registry.query(name)

    def flush(self, name: Optional[str] = None) -> None:
        """Propagate pending deltas of one view (or of all views) now."""
        self.registry.flush(name)

    # -- ad-hoc reads ------------------------------------------------------------------

    def query(self, xquery: str) -> str:
        """Execute an XQuery string once and return its XML result
        (no extent is kept — use :meth:`create_view` for that)."""
        return self.registry.engine.query(translate_query(xquery))

    # -- updates -----------------------------------------------------------------------

    def update(self, document: str) -> DocumentUpdater:
        """Open the fluent path-addressed builder for ``document``."""
        if not self.storage.has_document(document):
            raise KeyError(f"no document named {document!r}; "
                           f"loaded: {self.storage.document_names}")
        return DocumentUpdater(self, document)

    def execute(self, statement: str) -> Update:
        """Submit one XQuery-update statement (the TIHW01 string form).

        The statement is parsed now — malformed input raises
        :class:`UpdateError` at the call site — and resolved against
        storage when it applies (immediately, or at batch flush).  A
        statement whose binding matches nothing is a no-op, mirroring
        the update language's FLWOR semantics.
        """
        try:
            parsed = parse_update(statement)
        except XQueryParseError as exc:
            raise UpdateError(f"malformed update statement: {exc}",
                              statement=statement) from exc
        update = Update(
            "execute", parsed.binding.source, statement=statement,
            require_match=False,
            _resolver=lambda storage, cache=None:
                evaluate_update(parsed, storage))
        return self._submit(update)

    def batch(self) -> "Batch":
        """A transactional batch: ``with db.batch() as batch: ...``
        collects every statement submitted in the block and flushes them
        through the registry as one routed stream on exit."""
        return Batch(self)

    # -- subscriptions -----------------------------------------------------------------

    def subscribe(self, view_name: str,
                  callback: Callable[[RefreshEvent], None], *,
                  deliver_mutations: bool = False) -> Subscription:
        """Call ``callback(event)`` whenever ``view_name`` refreshes.

        With ``deliver_mutations=True`` each *propagate* refresh carries
        the flush's visible extent mutations as JSON-ready records on
        ``event.mutations`` (the delta payload the network server pushes
        over the wire); recompute refreshes carry ``None`` — re-read the
        view.  Callbacks are isolated: one raising neither aborts the
        flush nor starves other subscribers (counted in the
        ``subscriber_errors`` metric family)."""
        if view_name not in self.registry:
            raise KeyError(f"no view named {view_name!r}")
        subscription = Subscription(self, view_name, callback)
        self.registry.add_refresh_listener(
            subscription._dispatch, deliver_mutations=deliver_mutations)
        self._subscriptions.add(subscription)
        return subscription

    # -- observability -----------------------------------------------------------------

    @property
    def obs_metrics(self) -> MetricsRegistry:
        """The engine's live metrics registry (shared with the view
        registry; exporters read it, hot paths feed it)."""
        return self.registry.metrics

    @property
    def tracer(self) -> Tracer:
        return self.registry.tracer

    def metrics(self) -> dict:
        """A structured, JSON-serializable snapshot of every engine
        metric — router classifications, operator-state serves,
        structural-index scans, per-view flush/recompute activity and
        phase timings, statement latency."""
        return self.registry.metrics_snapshot()

    def render_prometheus(self) -> str:
        """The same metrics in Prometheus text exposition format (the
        roadmap's network server mounts this as its scrape endpoint)."""
        return render_prometheus(self.registry.metrics)

    def explain(self, view_name: str) -> str:
        """The view's algebra plan annotated with live per-operator
        counters (tuples in/out in full and delta mode, operator-state
        serves) plus its maintenance stats and cost-model calibration."""
        if view_name not in self.registry:
            raise KeyError(f"no view named {view_name!r}")
        return self.registry.explain(view_name)

    def add_trace_sink(self, sink) -> None:
        """Attach a :class:`repro.obs.TraceSink` receiving span-complete
        events from every maintenance pass of this session."""
        self.registry.add_trace_sink(sink)

    def remove_trace_sink(self, sink) -> None:
        self.registry.remove_trace_sink(sink)

    # -- the submission path -----------------------------------------------------------

    def _submit(self, update: Update) -> Update:
        if self._batch is not None:
            self._batch.add(update)
        else:
            self._apply([update])
        return update

    def _apply(self, updates: List[Update]) -> Optional[MultiViewReport]:
        """Resolve every statement against the current snapshot, then
        flush all resolved requests as one routed stream."""
        requests = []
        resolved: list[tuple[Update, list]] = []
        # One navigation cache for the whole flush: every statement
        # resolves against the same pre-apply snapshot, so statements
        # addressing siblings share their path navigation.
        navigation_cache: dict = {}
        for update in updates:
            try:
                batch_requests = update.resolve(self.storage,
                                                navigation_cache)
            except UpdateError as exc:
                if exc.statement is None:
                    exc.statement = update
                raise
            except (ValueError, KeyError) as exc:
                raise UpdateError(
                    f"cannot resolve {update.describe()}: {exc}",
                    statement=update) from exc
            if not batch_requests and update.require_match:
                raise UpdateError(
                    f"{update.describe()} addressed no node",
                    statement=update)
            resolved.append((update, batch_requests))
            requests.extend(batch_requests)

        applied_ops = 0

        def count(op, key):
            nonlocal applied_ops
            applied_ops += 1

        self.storage.add_listener(count)
        started = time.perf_counter()
        try:
            report = self.registry.apply_updates(requests)
        except Exception as exc:
            raise UpdateError(
                f"batch failed after {applied_ops} storage operation(s); "
                f"the unapplied remainder was rolled back: {exc}",
                applied=applied_ops) from exc
        finally:
            self.storage.remove_listener(count)
        if _OBS.enabled:
            metrics = self.registry.metrics
            metrics.counter("db_statements",
                            "Update statements applied").inc(len(updates))
            metrics.histogram(
                "db_apply_seconds",
                "Latency of one statement-submission flush").observe(
                    time.perf_counter() - started)
        for update, batch_requests in resolved:
            update.requests = batch_requests
            update.applied = True
            update.report = report
        return report


class Batch:
    """Collects update statements and flushes them transactionally.

    Statements submitted inside the ``with`` block — builder statements
    and :meth:`Database.execute` strings alike — are queued, then
    resolved together against the snapshot and applied through
    :meth:`ViewRegistry.apply_updates` as one routed stream when the
    block exits.  An exception inside the block discards the queue
    (nothing is applied); a resolution failure at flush rolls the whole
    batch back and re-raises as :class:`UpdateError`.
    """

    def __init__(self, db: Database):
        self._db = db
        self.updates: List[Update] = []
        self.report: Optional[MultiViewReport] = None

    def add(self, update: Update) -> None:
        self.updates.append(update)

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self):
        return iter(self.updates)

    def __enter__(self) -> "Batch":
        if self._db._batch is not None:
            raise RuntimeError("a batch is already open on this database")
        self._db._batch = self
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self._db._batch = None
        if exc_type is not None:
            self.updates.clear()   # abort: nothing was applied
            return False
        if self.updates:
            self.report = self._db._apply(self.updates)
        return False
