"""The fluent, path-addressed update builder.

``db.update("bib.xml").at("/bib/book[2]").insert(fragment,
position="after")`` builds a first-class :class:`Update` — a *statement*
addressing nodes by location path, not by raw FlexKey.  Paths are parsed
eagerly (malformed paths fail at the call site) but resolved to keys
lazily, when the statement is applied: immediately outside a batch, at
flush time inside one, always against the storage snapshot the whole
batch sees.

Terminal methods (:meth:`UpdateSite.insert` / :meth:`~UpdateSite.delete`
/ :meth:`~UpdateSite.replace_with`) submit the statement to the owning
:class:`~repro.api.Database` and return it; after application the
statement carries the concrete resolved requests and the maintenance
report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..flexkeys import FlexKey
from ..storage import StorageManager
from ..updates.errors import UpdateError
from ..updates.primitives import POSITIONS, UpdateRequest
from ..xmlmodel import XmlNode, parse_fragment
from ..xquery.updates import parse_document_path, resolve_path_expr

__all__ = ["DocumentUpdater", "Update", "UpdateSite"]


@dataclass
class Update:
    """One submitted update statement (builder- or string-originated).

    Before application, the statement is a *description*; ``resolve``
    turns it into concrete :class:`~repro.updates.UpdateRequest`\\ s
    against a storage snapshot.  After application ``applied`` is True,
    ``requests`` holds the resolved primitives and ``report`` the
    :class:`~repro.multiview.MultiViewReport` of the stream that carried
    them.
    """

    action: str                      # insert / delete / replace / execute
    document: str
    path: Optional[str] = None       # builder statements
    statement: Optional[str] = None  # execute() statements
    position: Optional[str] = None
    require_match: bool = True       # builder paths must address something
    applied: bool = False
    requests: List[UpdateRequest] = field(default_factory=list)
    report: object = None
    _resolver: Optional[Callable[..., List[UpdateRequest]]] = None

    def resolve(self, storage: StorageManager,
                cache: Optional[dict] = None) -> List[UpdateRequest]:
        """Resolve this statement to concrete update requests.

        ``cache`` shares navigation work across the statements of one
        flush (they all resolve against the same snapshot)."""
        return self._resolver(storage, cache)

    def describe(self) -> str:
        if self.action == "execute":
            return f"execute: {self.statement}"
        where = f"{self.path} in {self.document!r}"
        if self.action == "insert":
            return f"insert {self.position} {where}"
        if self.action == "replace":
            return f"replace text at {where}"
        return f"{self.action} {where}"

    def __repr__(self) -> str:  # keeps tracebacks and errors readable
        state = "applied" if self.applied else "pending"
        return f"<Update {self.describe()} [{state}]>"


class DocumentUpdater:
    """``db.update(document)`` — the entry of the fluent builder."""

    def __init__(self, db, document: str):
        self._db = db
        self.document = document

    def at(self, path: str) -> "UpdateSite":
        """Address the node(s) at ``path`` (e.g. ``/bib/book[2]``).

        The path is parsed now — typos fail here, with the offending
        path — and resolved against storage when the statement applies.
        A path may address several nodes; the statement then expands to
        one update request per node, in document order.
        """
        try:
            expr = parse_document_path(self.document, path)
        except ValueError as exc:
            raise UpdateError(
                f"malformed path {path!r}: {exc}", statement=path) from exc
        return UpdateSite(self._db, self.document, path, expr)


class UpdateSite:
    """A path-addressed site; terminal methods build and submit Updates."""

    def __init__(self, db, document: str, path: str, expr):
        self._db = db
        self.document = document
        self.path = path
        self._expr = expr

    def _keys(self, storage: StorageManager,
              cache: Optional[dict] = None) -> List[FlexKey]:
        return resolve_path_expr(storage, self._expr, cache)

    def insert(self, fragment, position: str = "after") -> Update:
        """Insert ``fragment`` relative to the addressed node(s):
        ``after``/``before`` as a sibling, ``into`` as the last child."""
        if position not in POSITIONS:
            raise UpdateError(
                f"unknown position {position!r} "
                f"(expected one of {', '.join(POSITIONS)})")
        if isinstance(fragment, str):
            nodes = parse_fragment(fragment)
            if len(nodes) != 1:
                raise UpdateError("insert fragment must be a single element")
            node = nodes[0]
        elif isinstance(fragment, XmlNode):
            node = fragment
        else:
            raise UpdateError(
                f"insert fragment must be an XML string or XmlNode, "
                f"not {type(fragment).__name__}")

        def resolver(storage: StorageManager,
                     cache=None) -> List[UpdateRequest]:
            # A fresh copy per target: storage takes ownership of the
            # inserted tree, so one node object must never alias two
            # insertion sites (the build-time parse is reused — the
            # fragment is parsed once, not once per target).
            return [UpdateRequest.insert(
                self.document, key, node.deep_copy(), position=position)
                for key in self._keys(storage, cache)]

        return self._submit("insert", resolver, position=position)

    def delete(self) -> Update:
        """Delete the subtree(s) rooted at the addressed node(s)."""

        def resolver(storage: StorageManager,
                     cache=None) -> List[UpdateRequest]:
            return [UpdateRequest.delete(self.document, key)
                    for key in self._keys(storage, cache)]

        return self._submit("delete", resolver)

    def replace_with(self, value) -> Update:
        """Replace the text content of the addressed node(s) with
        ``value`` (the XQuery-update ``replace … with`` primitive)."""
        text = value if isinstance(value, str) else str(value)

        def resolver(storage: StorageManager,
                     cache=None) -> List[UpdateRequest]:
            return [UpdateRequest.modify(self.document, key, text)
                    for key in self._keys(storage, cache)]

        return self._submit("replace", resolver)

    def _submit(self, action: str, resolver, position=None) -> Update:
        update = Update(action, self.document, path=self.path,
                        position=position, _resolver=resolver)
        return self._db._submit(update)
