"""The recommended public surface: one :class:`Database` session object.

.. code-block:: python

    from repro.api import Database

    with Database() as db:
        db.load("bib.xml", BIB_XML)
        by_year = db.create_view("by_year", QUERY, policy="deferred")
        db.subscribe("by_year", lambda event: print("refreshed:", event))

        with db.batch():
            db.update("bib.xml").at("/bib/book[2]") \\
              .insert("<book year='1994'>...</book>", position="after")
            db.update("bib.xml").at("/bib/book[1]/title") \\
              .replace_with("TCP/IP Illustrated, 2nd ed")
        db.execute('for $b in document("bib.xml")/bib/book '
                   'where $b/title = "Data on the Web" '
                   'update $b delete $b')

        print(by_year.read())
        assert by_year.read() == by_year.recompute()

Everything funnels through the shared validation router exactly once;
no raw FlexKeys, storage managers or update requests appear in user
code.  The older per-layer surface (:class:`repro.StorageManager`,
:class:`repro.MaterializedXQueryView`, :class:`repro.ViewRegistry`, …)
stays available for engine-level work.
"""

from ..multiview.registry import RefreshEvent
from ..updates.errors import UpdateError
from .builder import DocumentUpdater, Update, UpdateSite
from .database import Batch, Database
from .views import Subscription, View

__all__ = [
    "Batch",
    "Database",
    "DocumentUpdater",
    "RefreshEvent",
    "Subscription",
    "Update",
    "UpdateError",
    "UpdateSite",
    "View",
]
