"""Specialized kernels for hot delta opcodes.

A kernel is ``fn(instr, ctx, inputs) -> XatTable | None`` where
``inputs`` are the already-computed input tables from the VM's register
file.  Returning ``None`` means "this batch shape is outside my fast
path" — the VM then runs the interpreter's operator, so a kernel can
guard aggressively and never be wrong, only slower.

Each kernel is a *faithful port* of its operator's delta path with the
per-batch invariants hoisted out of the per-tuple loops:

* compile-time statics (navigation step tables, equi-key columns,
  flattened lineage recipes) live on the instruction's
  :class:`~repro.plan.compiler.PreparedOp` record, shared across
  structurally-equal subplans of different views;
* the document membership check of ``_classify`` — one first-atom parse
  and dict probe per navigated key in the interpreter — is hoisted to
  one check per entry item (navigation never leaves the entry's
  document), after which classification is a memo probe on the run's
  :class:`~repro.plan.vm.FastDeltaSpec`;
* the two classification passes per navigation target (admission
  filtering, then status annotation) merge into one;
* per-tuple profiler context managers are dropped (they cost a
  ``perf_counter`` call each even when profiling is off).

The differential suite runs every view and mutator kind under both
execution modes; any divergence between a kernel and its operator is a
test failure, not a silent wrong answer.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..flexkeys import COMPOSE_SEP, FlexKey
from ..storage import ContentItem, Skeleton
from ..xat.base import DELTA, FULL
from ..xat.conditions import Literal, item_value
from ..xat.grouping import assign_overriding_orders, compute_aggregate
from ..xat.navigation import (_ANCESTOR, _AT, _element_targets, _emit_pair,
                              _pair_variants, _related_targets, _value_items)
from ..xat.relational import (_hash_keys, _probe_union, old_side_handle,
                              side_handle)
from ..xat.semantic_ids import constructed_id, lineage_token_of_item
from ..xat.table import (AtomicItem, Item, NodeItem, XatTable, XatTuple,
                         items_of, single_item)

__all__ = ["kernel_for", "prepare_statics", "register_kernel"]

#: (operator class name, mode) -> kernel callable
_KERNELS: dict[tuple[str, str], Callable] = {}


def register_kernel(op_class_name: str, *modes: str):
    """Decorator registering one specialized kernel for the given modes."""
    def wrap(fn: Callable) -> Callable:
        for mode in modes:
            _KERNELS[(op_class_name, mode)] = fn
        return fn
    return wrap


def kernel_for(op, mode: str) -> Optional[Callable]:
    return _KERNELS.get((type(op).__name__, mode))


# ---------------------------------------------------------------------------
# compile-time statics
# ---------------------------------------------------------------------------


def _lineage_terminals(schema, col: str, out: list) -> None:
    """Flatten the static recursion of ``lineage_tokens`` into a recipe.

    The Context Schema is fixed at prepare time, so the recursive
    column-reference resolution always terminates in the same ordered
    sequence of ``("*", None)`` / ``("self", col)`` terminals; resolving
    the recipe per tuple is then a flat loop over cells.
    """
    spec = schema.spec(col)
    if spec.is_all_lineage:
        out.append(("*", None))
    elif spec.is_self_lineage:
        out.append(("self", col))
    else:
        for ref_col, _cid in spec.lineage:
            _lineage_terminals(schema, ref_col, out)


def _tagger_statics(op) -> dict:
    schema = op.inputs[0].schema
    id_cols = op._id_source_columns()
    terminals: list = []
    for col in id_cols:
        _lineage_terminals(schema, col, terminals)
    content_cols = op.pattern.content_columns()
    if content_cols:
        order_spec = schema.spec(content_cols[0]).order
    else:
        order_spec = ()
    attributes = tuple(
        (name, operand.value if isinstance(operand, Literal) else None,
         None if isinstance(operand, Literal) else operand.column)
        for name, operand in op.pattern.attributes)
    multi = len(op.pattern.content) > 1
    content = tuple(
        (isinstance(entry, str), entry if isinstance(entry, str)
         else entry[1],
         Tagger_column_ids[index] if multi else None)
        for index, entry in enumerate(op.pattern.content))
    return {"has_ids": bool(id_cols), "terminals": tuple(terminals),
            "order_spec": order_spec or None, "attrs": attributes,
            "content": content, "tag": op.pattern.tag}


#: per-entry order prefixes for multi-content Taggers (same scheme as
#: XML Union's column ids)
Tagger_column_ids = "abcdefghijklmnopqrstuvwxyz"


def prepare_statics(op) -> dict:
    """Kernel-independent static metadata hoisted at compile time.

    The dict is signature-shared, so the work happens once per plan
    structure, not once per view or per batch.
    """
    name = type(op).__name__
    if name in ("NavigateUnnest", "NavigateCollection"):
        return {"element_steps": tuple(op.path.element_steps()),
                "value_steps": tuple(op.path.value_steps())}
    if name in ("Join", "LeftOuterJoin", "CartesianProduct"):
        return {"equi": op._equi_key_columns()}
    if name == "Tagger":
        return _tagger_statics(op)
    if name == "GroupBy":
        return {"order_schema": op.inputs[0].schema.order_schema}
    return {}


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _fast_keys(tup, cols, ctx) -> list[tuple]:
    """``_hash_keys`` with the single-column / single-item fast path."""
    if len(cols) == 1:
        cell = tup.cells.get(cols[0])
        if cell is None:
            return []
        if isinstance(cell, Item):
            if type(cell) is AtomicItem:
                return [(cell.value,)]
            return [(item_value(cell, ctx),)]
        if len(cell) == 1:
            return [(item_value(cell[0], ctx),)]
    return _hash_keys(tup, cols, ctx)


# ---------------------------------------------------------------------------
# source / structural pass-through
# ---------------------------------------------------------------------------


@register_kernel("Source", DELTA)
def _source_delta(instr, ctx, inputs):
    """Source is mode-independent and consumers never mutate its table:
    cache the one-tuple result per storage manager across batches."""
    statics = instr.prepared.statics
    cached = statics.get("source")
    if cached is not None and cached[0] is ctx.storage:
        return cached[1]
    table = instr.xop.execute(ctx)
    statics["source"] = (ctx.storage, table)
    return table


@register_kernel("Expose", DELTA, FULL)
def _expose(instr, ctx, inputs):
    return inputs[0]


@register_kernel("Select", DELTA)
def _select_delta(instr, ctx, inputs):
    op = instr.xop
    condition = op.condition
    table = XatTable(op.schema)
    append = table.append
    for tup in inputs[0].tuples:
        if condition.evaluate(tup, ctx):
            append(tup)
    return table


# ---------------------------------------------------------------------------
# navigation
# ---------------------------------------------------------------------------


@register_kernel("NavigateUnnest", DELTA)
def _nav_unnest_delta(instr, ctx, inputs):
    spec = ctx.delta
    if spec is None:
        return None
    op = instr.xop
    statics = instr.prepared.statics
    element_steps = statics["element_steps"]
    value_steps = statics["value_steps"]
    storage = ctx.storage
    document_of_key = storage.document_of_key
    classify = spec.classify
    sign_at = spec.sign_at
    doc = spec.document
    col = op.col
    out = op.out
    table = XatTable(op.schema)
    append = table.append
    n_last = len(element_steps) - 1
    attr_value = bool(value_steps) and value_steps[0].is_attribute
    attr_inert = spec.phase == "modify" and attr_value
    pairs_possible = (spec.phase == "modify" and spec.has_pairs
                      and not attr_value)
    attr_name = value_steps[0].attribute_name if attr_value else None
    for tup in inputs[0].tuples:
        cell = tup.cells.get(col)
        if cell is None:
            continue
        entries = (cell,) if isinstance(cell, Item) else cell
        tup_touched = tup.touched
        tup_count = tup.count
        tup_refresh = tup.refresh
        for entry in entries:
            if not isinstance(entry, NodeItem):
                continue
            entry_key = entry.key.without_override()
            in_doc = document_of_key(entry_key) == doc
            if not in_doc and not tup_touched:
                # Every product would come out untouched and be dropped
                # (no classification, no sign, no pair can apply in a
                # foreign document) — skip the walk entirely.
                continue
            entry_status = classify(entry_key) if in_doc else None
            frontier = [(entry_key, 1, False, entry_status)]
            is_first = storage.is_document_root(entry_key)
            seeking = not tup_touched
            for index, step in enumerate(element_steps):
                is_last = index == n_last
                nxt: list = []
                for key, mult, refresh, status in frontier:
                    if seeking and in_doc and status != _AT:
                        targets = _related_targets(ctx, key, step,
                                                   is_first)
                    else:
                        targets = _element_targets(ctx, key, step,
                                                   is_first)
                    if not targets:
                        continue
                    if status == _AT or not in_doc:
                        # Inside a root's subtree everything is admitted
                        # unannotated; outside the batch's document no
                        # target classifies.
                        for tgt in targets:
                            nxt.append((tgt, mult, refresh,
                                        classify(tgt) if in_doc
                                        else None))
                        continue
                    classified = [(tgt, classify(tgt)) for tgt in targets]
                    related = [tc for tc in classified
                               if tc[1] is not None]
                    if related:
                        classified = related
                    for tgt, cls in classified:
                        if cls == _AT:
                            sign = sign_at(tgt)
                            if sign == 0:
                                nxt.append((tgt, mult, True, cls))
                            else:
                                nxt.append((tgt, mult * sign, refresh,
                                            cls))
                        elif cls == _ANCESTOR and is_last:
                            nxt.append((tgt, mult, True, cls))
                        else:
                            nxt.append((tgt, mult, refresh, cls))
                frontier = nxt
                is_first = False
            entry_at = entry_status == _AT
            for key, mult, refresh, status in frontier:
                if attr_inert:
                    refresh = False
                    status = None
                touched = (tup_touched or refresh or mult != 1
                           or status is not None or entry_at)
                if not touched:
                    continue
                if pairs_possible:
                    variants = _pair_variants(ctx, key, value_steps)
                    if variants is not None:
                        _emit_pair(table, tup, out, variants,
                                   tup_count * mult)
                        continue
                if attr_name is not None:
                    value = storage.attribute(key, attr_name)
                    if value is None:
                        continue
                    cells = dict(tup.cells)
                    cells[out] = AtomicItem(value, source_key=key)
                    append(XatTuple(cells, tup_count * mult,
                                    tup_refresh or refresh, touched,
                                    tup.era))
                elif value_steps:
                    for item in _value_items(ctx, key, value_steps):
                        cells = dict(tup.cells)
                        cells[out] = item
                        append(XatTuple(cells, tup_count * mult,
                                        tup_refresh or refresh, touched,
                                        tup.era))
                else:
                    cells = dict(tup.cells)
                    cells[out] = NodeItem(key)
                    append(XatTuple(cells, tup_count * mult,
                                    tup_refresh or refresh, touched,
                                    tup.era))
    return table


@register_kernel("NavigateCollection", DELTA)
def _nav_collect_delta(instr, ctx, inputs):
    spec = ctx.delta
    if spec is None:
        return None
    op = instr.xop
    statics = instr.prepared.statics
    element_steps = statics["element_steps"]
    value_steps = statics["value_steps"]
    storage = ctx.storage
    document_of_key = storage.document_of_key
    classify = spec.classify
    sign_at = spec.sign_at
    doc = spec.document
    col = op.col
    out = op.out
    member_variants = op._member_variants
    table = XatTable(op.schema)
    append = table.append
    n_last = len(element_steps) - 1
    modify_pairs = spec.phase == "modify" and spec.has_pairs
    for tup in inputs[0].tuples:
        collected: list[Item] = []
        old_members: list[Item] = []
        new_members: list[Item] = []
        changed = False
        refresh = False
        cell = tup.cells.get(col)
        entries = (() if cell is None
                   else (cell,) if isinstance(cell, Item) else cell)
        for entry in entries:
            if not isinstance(entry, NodeItem):
                continue
            entry_key = entry.key.without_override()
            in_doc = document_of_key(entry_key) == doc
            entry_status = classify(entry_key) if in_doc else None
            entry_at = entry_status == _AT
            frontier = [entry_key]
            is_first = storage.is_document_root(entry_key)
            for index, step in enumerate(element_steps):
                is_last = index == n_last
                nxt: list = []
                for key in frontier:
                    targets = _element_targets(ctx, key, step, is_first)
                    if entry_at or not in_doc:
                        nxt.extend(targets)
                        continue
                    for tgt in targets:
                        cls = classify(tgt)
                        if cls == _AT:
                            # Collections never change tuple multiplicity:
                            # any crossing that is not a plain insert
                            # (+1) marks the tuple refresh instead.
                            if sign_at(tgt) != 1:
                                refresh = True
                        elif cls == _ANCESTOR and is_last:
                            refresh = True
                        nxt.append(tgt)
                frontier = nxt
                is_first = False
            for key in frontier:
                items = (_value_items(ctx, key, value_steps)
                         if value_steps else [NodeItem(key)])
                collected.extend(items)
                if entry_at:
                    # The whole tuple is inside an update root: cells
                    # read one state, never a pair.
                    old_members.extend(items)
                    new_members.extend(items)
                    continue
                if not in_doc and not modify_pairs:
                    old_members.extend(items)
                    new_members.extend(items)
                    continue
                olds, news, member_changed = member_variants(
                    ctx, key, items, value_steps)
                old_members.extend(olds)
                new_members.extend(news)
                changed = changed or member_changed
        if tup.era is not None:
            members = old_members if tup.era == "old" else new_members
            cells = dict(tup.cells)
            cells[out] = members
            append(XatTuple(cells, tup.count, False, True, tup.era))
            continue
        if changed:
            cells = dict(tup.cells)
            cells[out] = old_members
            append(XatTuple(cells, -tup.count, False, True, "old"))
            cells = dict(tup.cells)
            cells[out] = new_members
            append(XatTuple(cells, tup.count, False, True, "new"))
            continue
        cells = dict(tup.cells)
        cells[out] = collected
        append(XatTuple(cells, tup.count, tup.refresh or refresh,
                        tup.touched, tup.era))
    return table


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


@register_kernel("Join", DELTA)
def _join_delta(instr, ctx, inputs):
    spec = ctx.delta
    if spec is None or ctx.bindings:
        return None
    op = instr.xop
    equi = instr.prepared.statics["equi"]
    if equi is None:
        return None  # theta join: interpreter's nested-loop term
    lcols, rcols = equi
    table = XatTable(op.schema)
    append = table.append
    ldelta, rdelta = inputs
    # The VM's compile-time short-circuit (and the interpreter's own
    # evaluate-level one) already makes the delta of a subtree outside the
    # batch's document empty, so emptiness subsumes the doc checks of the
    # interpreter's two-term expansion.
    if ldelta.tuples:
        other = side_handle(ctx, op.inputs[1], ctx.mode_for_new, rcols)
        probe = other.probe
        for dt in ldelta.tuples:
            for ot in _probe_union(probe,
                                   _fast_keys(dt, lcols, ctx)):
                append(dt.merged(ot))
    if rdelta.tuples:
        other = old_side_handle(ctx, op.inputs[0], ctx.mode_for_old,
                                lcols)
        probe = other.probe
        for dt in rdelta.tuples:
            for ot in _probe_union(probe,
                                   _fast_keys(dt, rcols, ctx)):
                append(ot.merged(dt))
    return table


@register_kernel("LeftOuterJoin", DELTA)
def _loj_delta(instr, ctx, inputs):
    spec = ctx.delta
    if spec is None or ctx.bindings:
        return None
    op = instr.xop
    equi = instr.prepared.statics["equi"]
    if equi is None:
        return None
    lcols, rcols = equi
    table = XatTable(op.schema)
    append = table.append
    modify = spec.phase == "modify"
    ldelta, rdelta = inputs
    if ldelta.tuples:
        # Inner term over (ΔA, B_new) with LOJ null-padding; under a
        # modify batch count-carrying ΔA rows pad against the old right
        # state (see LeftOuterJoin._combine_delta).
        other = side_handle(ctx, op.inputs[1], ctx.mode_for_new, rcols)
        probe = other.probe
        old_check = None
        for dt in ldelta.tuples:
            matches = _probe_union(probe,
                                   _fast_keys(dt, lcols, ctx))
            for ot in matches:
                append(dt.merged(ot))
            if not modify or dt.refresh:
                if not matches:
                    append(op._null_padded(dt, dt.count))
                continue
            if old_check is None:
                old_check = old_side_handle(ctx, op.inputs[1],
                                            ctx.mode_for_old, rcols)
            if not op._handle_has_match(ctx, dt, lcols, old_check):
                append(op._null_padded(dt, dt.count))
    if rdelta.tuples:
        # Old-left inner term plus dangling-status flip corrections.
        other = old_side_handle(ctx, op.inputs[0], ctx.mode_for_old,
                                lcols)
        probe = other.probe
        matched_lefts: dict[int, XatTuple] = {}
        for dt in rdelta.tuples:
            for lt in _probe_union(probe,
                                   _fast_keys(dt, rcols, ctx)):
                append(lt.merged(dt))
                matched_lefts.setdefault(id(lt), lt)
        if not matched_lefts:
            return table
        if modify:
            if not spec.has_pairs:
                return table  # refresh-only modify: no re-routing
            new_check = side_handle(ctx, op.inputs[1], ctx.mode_for_new,
                                    rcols)
            old_check = old_side_handle(ctx, op.inputs[1],
                                        ctx.mode_for_old, rcols)
            for lt in matched_lefts.values():
                if lt.era is not None:
                    continue  # synthetic diff row, not an extent left
                has_new = op._handle_has_match(ctx, lt, lcols, new_check)
                has_old = op._handle_has_match(ctx, lt, lcols, old_check)
                if has_old and not has_new:
                    append(op._null_padded(lt, lt.count))
                elif has_new and not has_old:
                    append(op._null_padded(lt, -lt.count))
            return table
        check_mode = (ctx.mode_for_old if spec.phase == "insert"
                      else ctx.mode_for_new)
        check = side_handle(ctx, op.inputs[1], check_mode, rcols)
        for lt in matched_lefts.values():
            if _probe_union(check.probe,
                            _fast_keys(lt, lcols, ctx)):
                continue
            if spec.phase == "insert":
                append(op._null_padded(lt, -lt.count))
            else:  # delete
                append(op._null_padded(lt, lt.count))
    return table


# ---------------------------------------------------------------------------
# grouping / distinct / combine
# ---------------------------------------------------------------------------


def _cell_group_value(cell):
    """One column's contribution to a value-based grouping key."""
    if cell is None:
        return None
    if isinstance(cell, Item):
        item = cell
    else:
        if not cell:
            return None
        if len(cell) > 1:
            raise ValueError(
                f"expected singleton cell, got {len(cell)} items")
        item = cell[0]
    if isinstance(item, AtomicItem):
        return item.value
    return item.key.value


@register_kernel("Distinct", DELTA)
def _distinct_delta(instr, ctx, inputs):
    op = instr.xop
    col = op.col
    table = XatTable(op.schema)
    groups: dict = {}
    for tup in inputs[0].tuples:
        key = _cell_group_value(tup.cells.get(col))
        existing = groups.get(key)
        if existing is None:
            groups[key] = XatTuple({col: tup.cells.get(col)}, tup.count,
                                   tup.refresh, era=tup.era)
        else:
            existing.count += tup.count
            existing.refresh = existing.refresh or tup.refresh
            if existing.era != tup.era:
                existing.era = None  # mixed pair halves: era unusable
    append = table.append
    for tup in groups.values():
        if tup.count != 0 or tup.refresh:
            append(tup)
    return table


@register_kernel("Combine", DELTA)
def _combine_delta(instr, ctx, inputs):
    op = instr.xop
    source = inputs[0]
    items = assign_overriding_orders(source.tuples, op.col,
                                     source.schema.order_schema, ctx)
    table = XatTable(op.schema)
    table.append(XatTuple({op.col: items}))
    return table


@register_kernel("GroupBy", DELTA)
def _groupby_delta(instr, ctx, inputs):
    op = instr.xop
    source = inputs[0]
    group_cols = op.group_cols
    order_schema = instr.prepared.statics["order_schema"]
    groups: dict[tuple, list[XatTuple]] = {}
    single = len(group_cols) == 1
    gcol = group_cols[0] if single else None
    for tup in source.tuples:
        if single:
            key = (_cell_group_value(tup.cells.get(gcol)),)
        else:
            key = tuple(_cell_group_value(tup.cells.get(c))
                        for c in group_cols)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [tup]
        else:
            bucket.append(tup)
    table = XatTable(op.schema)
    result_col = op._result_col()
    combine_col = op.combine_col
    agg = op.agg
    plain_cols = tuple(c for c in op.schema.columns if c != result_col)

    def emit(members: list[XatTuple]) -> None:
        count = 0
        refresh = False
        for t in members:
            count += t.count
            refresh = refresh or t.refresh
        eras = {t.era for t in members}
        era = eras.pop() if len(eras) == 1 else None
        cells: dict = {}
        first = members[0]
        for c in plain_cols:
            value = first.cells.get(c)
            if value is None:
                for member in members[1:]:
                    other = member.cells.get(c)
                    if other is not None:
                        value = other
                        break
            cells[c] = value
        if combine_col is not None:
            cells[combine_col] = assign_overriding_orders(
                members, combine_col, order_schema, ctx)
            if count == 0 and not refresh and not cells[combine_col]:
                return
        else:
            kind, in_col, out_col = agg
            state = compute_aggregate(kind, members, in_col, ctx)
            cells[out_col] = AtomicItem(state.value(), agg=state)
        table.append(XatTuple(cells, count, refresh, era=era))

    for members in groups.values():
        # Count-carrying and count-neutral (refresh) members emit as
        # separate group tuples — see GroupBy.execute.
        refreshers = [t for t in members if t.refresh]
        counted = [t for t in members if not t.refresh]
        if refreshers and counted:
            emit(counted)
            emit(refreshers)
            continue
        emit(members)
    return table


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------


def _prefixed_fast(item: Item, cid: str) -> Item:
    """``assignColIdPrfx`` without the per-item profiler timer."""
    token = item.order_token()
    override = FlexKey(cid + "." + token if token else cid)
    if isinstance(item, NodeItem):
        return NodeItem(item.key.with_override(override), item.count,
                        item.refresh, item.skeleton)
    source = (item.source_key or FlexKey("z")).with_override(override)
    return AtomicItem(item.value, source, item.count, item.refresh,
                      item.order_value, item.agg)


@register_kernel("Tagger", DELTA, FULL)
def _tagger(instr, ctx, inputs):
    op = instr.xop
    statics = instr.prepared.statics
    terminals = statics["terminals"]
    has_ids = statics["has_ids"]
    order_spec = statics["order_spec"]
    attrs = statics["attrs"]
    content_recipe = statics["content"]
    tag = statics["tag"]
    out = op.out
    table = XatTable(op.schema)
    append = table.append
    for tup in inputs[0].tuples:
        cells_in = tup.cells
        body: list[str] = []
        for kind, col in terminals:
            if kind == "*":
                body.append("*")
                continue
            cell = cells_in.get(col)
            if cell is None:
                continue
            if isinstance(cell, Item):
                body.append(lineage_token_of_item(cell))
            else:
                for item in cell:
                    body.append(lineage_token_of_item(item))
        if has_ids and not body:
            # Null-padded (outer-join) tuple: no node constructed.
            cells = dict(cells_in)
            cells[out] = None
            append(XatTuple(cells, tup.count, tup.refresh, tup.touched,
                            tup.era))
            continue
        node_id = constructed_id(body)
        override = None
        if order_spec is not None:
            tokens = []
            for order_col in order_spec:
                item = single_item(cells_in.get(order_col))
                tokens.append(item.order_token() if item is not None
                              else "")
            if tokens:
                override = FlexKey(COMPOSE_SEP.join(tokens))
        attributes = {}
        for name, literal, col in attrs:
            if col is None:
                attributes[name] = literal
            else:
                item = single_item(cells_in.get(col))
                attributes[name] = (item_value(item, ctx)
                                    if item is not None else "")
        content: list[ContentItem] = []
        for is_col, payload, cid in content_recipe:
            if is_col:
                for item in items_of(cells_in.get(payload)):
                    if cid is not None:
                        item = _prefixed_fast(item, cid)
                    if isinstance(item, NodeItem):
                        content.append(ContentItem.ref(
                            item.key, item.count, item.refresh,
                            item.skeleton))
                    else:
                        entry = ContentItem.value(item.value, item.count,
                                                  item.refresh)
                        entry.agg = item.agg
                        if (item.source_key is not None
                                and item.source_key.override is not None):
                            entry.key = item.source_key
                        content.append(entry)
            else:
                literal = ContentItem.value(payload)
                if cid is not None:
                    literal.key = FlexKey("z").with_override(FlexKey(cid))
                content.append(literal)
        skeleton = Skeleton(node_id, tag, attributes, content, count=1)
        item = NodeItem(node_id if override is None
                        else node_id.with_override(override),
                        count=1, refresh=tup.refresh, skeleton=skeleton)
        cells = dict(cells_in)
        cells[out] = item
        append(XatTuple(cells, tup.count, tup.refresh, tup.touched,
                        tup.era))
    return table
