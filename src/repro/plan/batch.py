"""Columnar tuple batches and zero-copy composite row accessors.

A :class:`TupleBatch` stores one operator output as parallel arrays —
one list per column of cell values plus flat ``counts`` / ``refresh`` /
``touched`` / ``era`` arrays — instead of a list of per-tuple dicts.
Kernels iterate positionally over the arrays; a dict materializes only
at the boundary to an interpreter-backed consumer (:meth:`to_table`).

Join outputs avoid even that: a :class:`CompositeAccessor` maps each
output column to ``(side, source column)`` so a matched ``(left row,
right row)`` pair *is* the output row — no merged dict per match.
:meth:`CompositeAccessor.emit` materializes an :class:`XatTuple` only
for the pairs that survive the join's residual predicate.
"""

from __future__ import annotations

from typing import Optional

from ..xat.table import TableSchema, XatTable, XatTuple

__all__ = ["CompositeAccessor", "TupleBatch", "merge_signed_counts"]


class TupleBatch:
    """One table as parallel column arrays.

    ``columns`` maps column name -> list of cell values (each a
    ``CellValue``: None, an Item or a list of Items).  All per-tuple
    annotations live in flat arrays of the same length.
    """

    __slots__ = ("schema", "columns", "counts", "refresh", "touched",
                 "eras", "length")

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.columns: dict[str, list] = {c: [] for c in schema.columns}
        self.counts: list[int] = []
        self.refresh: list[bool] = []
        self.touched: list[bool] = []
        self.eras: list[Optional[str]] = []
        self.length = 0

    def __len__(self) -> int:
        return self.length

    def append_row(self, cells: dict, count: int = 1,
                   refresh: bool = False, touched: bool = False,
                   era: Optional[str] = None) -> None:
        for name, column in self.columns.items():
            column.append(cells.get(name))
        self.counts.append(count)
        self.refresh.append(refresh)
        self.touched.append(touched)
        self.eras.append(era)
        self.length += 1

    # -- interpreter boundary ----------------------------------------------------------

    @classmethod
    def from_table(cls, table: XatTable) -> "TupleBatch":
        batch = cls(table.schema)
        columns = batch.columns
        for tup in table.tuples:
            cells = tup.cells
            for name, column in columns.items():
                column.append(cells.get(name))
            batch.counts.append(tup.count)
            batch.refresh.append(tup.refresh)
            batch.touched.append(tup.touched)
            batch.eras.append(tup.era)
        batch.length = len(table.tuples)
        return batch

    def to_table(self) -> XatTable:
        table = XatTable(self.schema)
        names = list(self.columns)
        column_lists = [self.columns[name] for name in names]
        append = table.tuples.append
        for i in range(self.length):
            cells = {}
            for name, column in zip(names, column_lists):
                value = column[i]
                if value is not None:
                    cells[name] = value
            append(XatTuple(cells, self.counts[i], self.refresh[i],
                            self.touched[i], self.eras[i]))
        return table

    def row(self, i: int) -> XatTuple:
        """Materialize one row as an :class:`XatTuple` (boundary only)."""
        cells = {name: column[i] for name, column in self.columns.items()
                 if column[i] is not None}
        return XatTuple(cells, self.counts[i], self.refresh[i],
                        self.touched[i], self.eras[i])


class CompositeAccessor:
    """Zero-copy column map for a join output.

    Maps each output column to its source side (0 = left, 1 = right);
    columns present on both sides resolve to the right side, matching
    :meth:`XatTuple.merged`'s ``dict.update`` overwrite order.
    """

    __slots__ = ("schema", "side_of")

    def __init__(self, left_schema: TableSchema,
                 right_schema: TableSchema,
                 out_schema: TableSchema):
        self.schema = out_schema
        left = set(left_schema.columns)
        right = set(right_schema.columns)
        self.side_of: dict[str, int] = {}
        for column in out_schema.columns:
            if column in right:
                self.side_of[column] = 1
            elif column in left:
                self.side_of[column] = 0

    def cell(self, column: str, left_row: XatTuple,
             right_row: XatTuple):
        side = self.side_of.get(column)
        if side is None:
            return None
        return (right_row if side else left_row).cells.get(column)

    def emit(self, left_row: XatTuple, right_row: XatTuple) -> XatTuple:
        """Materialize one surviving match as a merged tuple.

        Semantics mirror :meth:`XatTuple.merged`: counts multiply,
        refresh/touched or-combine, the left era wins when both are set.
        """
        cells = {}
        lcells = left_row.cells
        rcells = right_row.cells
        for column, side in self.side_of.items():
            value = (rcells if side else lcells).get(column)
            if value is not None:
                cells[column] = value
        return XatTuple(cells, left_row.count * right_row.count,
                        left_row.refresh or right_row.refresh,
                        left_row.touched or right_row.touched,
                        left_row.era or right_row.era)


def merge_signed_counts(entries) -> dict:
    """Net count-signed ``(key, count)`` entries, dropping zeros.

    The count-state patch primitive: a retract/assert stream over the
    same key nets to its final count, order-free (the Z-set discipline
    of the count annotations).  Returns ``{key: net_count}`` with no
    zero entries.
    """
    netted: dict = {}
    for key, count in entries:
        total = netted.get(key, 0) + count
        if total:
            netted[key] = total
        elif key in netted:
            del netted[key]
    return netted
