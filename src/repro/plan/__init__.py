"""Compiled execution: XAT algebra trees lowered to a linear delta-plan
IR run by a register VM over columnar tuple batches.

The tree interpreter (:meth:`repro.xat.base.ExecutionContext.evaluate`)
remains the semantic oracle; this package is the production executor in
front of it:

* :mod:`repro.plan.ir` — opcodes, instructions, the register model and
  the compiled-plan container (with per-instruction counters for the
  live ``EXPLAIN`` listing);
* :mod:`repro.plan.batch` — :class:`TupleBatch` (parallel key/value/
  count arrays instead of per-tuple dicts) and the zero-copy
  :class:`CompositeAccessor` used for join outputs;
* :mod:`repro.plan.compiler` — lowering rules per XAT operator,
  common-subplan sharing across views via structural signatures, and
  the :class:`PlanCache` (compile timings + hit/miss counters that feed
  the obs registry);
* :mod:`repro.plan.vm` — the :class:`PlanVM` executing a lowered plan
  over an :class:`~repro.xat.base.ExecutionContext`, seeding the
  interpreter memo as it goes so un-lowered corners resolve lazily with
  identical semantics;
* :mod:`repro.plan.kernels` — specialized columnar kernels for the hot
  delta opcodes (guarded: a batch shape outside a kernel's fast path
  falls back to the interpreter's operator, never to wrong answers).
"""

from .batch import CompositeAccessor, TupleBatch, merge_signed_counts
from .compiler import PlanCache, lower
from .ir import CompiledPlan, Instruction, opcode_for
from .vm import FastDeltaSpec, PlanVM

__all__ = [
    "CompiledPlan",
    "CompositeAccessor",
    "FastDeltaSpec",
    "Instruction",
    "PlanCache",
    "PlanVM",
    "TupleBatch",
    "lower",
    "merge_signed_counts",
    "opcode_for",
]
