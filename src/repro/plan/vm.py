"""The batch VM: executes a lowered plan over a register file.

The register file doubles as the run's memo: every computed table is
also seeded into the :class:`~repro.xat.base.ExecutionContext` cache
under the interpreter's own ``(id(op), mode)`` key, so any evaluation
the schedule does not cover — a join's FULL side with no state store,
a correlated Map body — resolves lazily through the interpreter with
*identical* semantics.  A specialized kernel that declines a batch
shape (returns ``None``) falls back the same way.  The compiled
executor can therefore only ever differ from the tree interpreter in
speed, never in results; the differential suite pins that claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..obs.core import STATE as _OBS
from ..xat.base import (DELTA, DeltaSpec, ExecutionContext, XatOperator,
                        _obs_record)
from ..xat.table import XatTable
from .compiler import PlanCache
from .ir import CompiledPlan

__all__ = ["FastDeltaSpec", "PlanVM"]


@dataclass
class FastDeltaSpec(DeltaSpec):
    """A :class:`DeltaSpec` with per-run memoized root classification.

    ``classify`` / ``sign_at`` / ``modify_pair`` / ``pair_roots_below``
    are pure in the (immutable) root set, yet the interpreter calls them
    per navigated key per operator — linear scans over the roots each
    time.  One compiled pass touches the same few keys thousands of
    times, so a per-spec memo keyed by the bare key bytes turns the scan
    into a dict hit.  ``old_text`` memoizes too: within one propagate
    pass the pre-batch text of a node is fixed by the pair roots.
    """

    _classify_memo: dict = field(default_factory=dict, repr=False,
                                 compare=False)
    _sign_memo: dict = field(default_factory=dict, repr=False,
                             compare=False)
    _pair_memo: dict = field(default_factory=dict, repr=False,
                             compare=False)
    _below_memo: dict = field(default_factory=dict, repr=False,
                              compare=False)
    _old_text_memo: dict = field(default_factory=dict, repr=False,
                                 compare=False)

    @classmethod
    def wrap(cls, spec: DeltaSpec) -> "FastDeltaSpec":
        if isinstance(spec, cls):
            return spec
        return cls(spec.document, spec.roots, spec.phase)

    def classify(self, key):
        bare = key.without_override()
        value = bare.value
        memo = self._classify_memo
        if value in memo:
            return memo[value]
        result = DeltaSpec.classify(self, bare)
        memo[value] = result
        return result

    def sign_at(self, key):
        bare = key.without_override()
        value = bare.value
        memo = self._sign_memo
        if value in memo:
            return memo[value]
        result = DeltaSpec.sign_at(self, bare)
        memo[value] = result
        return result

    def modify_pair(self, key):
        bare = key.without_override()
        value = bare.value
        memo = self._pair_memo
        if value in memo:
            return memo[value]
        result = DeltaSpec.modify_pair(self, bare)
        memo[value] = result
        return result

    def pair_roots_below(self, key):
        bare = key.without_override()
        value = bare.value
        memo = self._below_memo
        if value in memo:
            return memo[value]
        result = DeltaSpec.pair_roots_below(self, bare)
        memo[value] = result
        return result

    def old_text(self, storage, key):
        bare = key.without_override()
        value = bare.value
        memo = self._old_text_memo
        if value in memo:
            return memo[value]
        result = DeltaSpec.old_text(self, storage, bare)
        memo[value] = result
        return result


class PlanVM:
    """Executes compiled plans; one per pipeline (cache may be shared)."""

    __slots__ = ("cache",)

    def __init__(self, cache: Optional[PlanCache] = None):
        self.cache = cache if cache is not None else PlanCache()

    def run(self, root: XatOperator, ctx: ExecutionContext) -> XatTable:
        """Compile (or fetch) the plan for ``ctx.mode`` and execute it."""
        return self.execute(self.cache.plan(root, ctx.mode), ctx)

    def execute(self, cplan: CompiledPlan,
                ctx: ExecutionContext) -> XatTable:
        regs: list = [None] * cplan.nregs
        cache = self.cache
        memo = ctx._cache
        delta = ctx.delta
        delta_mode_doc = (delta.document
                          if delta is not None else None)
        executed = 0
        for instr in cplan.instructions:
            op = instr.xop
            mode = instr.mode
            key = (id(op), mode)
            existing = memo.get(key)
            if existing is not None:
                regs[instr.dest] = existing
                continue
            executed += 1
            if (mode == DELTA and delta_mode_doc is not None
                    and delta_mode_doc
                    not in instr.prepared.source_documents):
                # Empty-Δ short-circuit, resolved at compile time: the
                # batch's document feeds nothing under this subtree.
                result = XatTable(op.schema)
                memo[key] = result
                regs[instr.dest] = result
                if _OBS.enabled:
                    _obs_record(op, mode, result)
                instr.record(0, 0, kernel=False, shortcircuit=True)
                continue
            rows_in = 0
            for src in instr.srcs:
                table = regs[src]
                if table is not None:
                    rows_in += len(table.tuples)
            result = None
            if instr.kernel is not None:
                result = instr.kernel(
                    instr, ctx, [regs[src] for src in instr.srcs])
            if result is not None:
                memo[key] = result
                if _OBS.enabled:
                    _obs_record(op, mode, result)
                used_kernel = True
                cache.kernel_runs += 1
            else:
                result = ctx.evaluate(op, mode)
                used_kernel = False
                cache.fallback_runs += 1
            regs[instr.dest] = result
            instr.record(rows_in, len(result.tuples),
                         kernel=used_kernel)
        cache.instructions_executed += executed
        return regs[cplan.root]
