"""Lowering XAT trees to linear plans, and the cross-view plan cache.

Lowering is a postorder walk of the ``(operator, mode)`` DAG: every node
gets one register and one instruction; inputs are scheduled before
consumers, so the emitted list executes straight-line.  A join's FULL/
ANTI side evaluation is *not* scheduled under Δ — with an operator-state
store attached the side is a stored hash index probe, and without one
the interpreter's lazy memo resolves it on first touch — which keeps
the instruction stream exactly the work the delta pass performs.

Compile-time statics (source-document sets, navigation step tables,
join key columns) live on :class:`PreparedOp` records keyed by the
operator's *structural signature* — the same signatures
:mod:`repro.engine.opstate` shares cached tables under — so
structurally-equal subplans across views compile once and share their
prepared metadata.  The :class:`PlanCache` owns those records plus the
per-root plan memo, and keeps the plain-int counters the obs registry
mirrors (``plan_compile_seconds``, ``plan_cache_hits/misses``).
"""

from __future__ import annotations

import time
from typing import Optional

from ..engine.opstate import subplan_signature
from ..xat.base import DELTA, FULL, XatOperator
from ..xat.construction import Map
from .ir import CompiledPlan, Instruction, opcode_for
from .kernels import kernel_for, prepare_statics

__all__ = ["PlanCache", "PreparedOp", "lower"]


class PreparedOp:
    """Compile-time statics of one operator structure (signature-keyed).

    ``source_documents`` backs the VM's per-instruction empty-Δ
    short-circuit without re-walking the subtree every batch.
    ``statics`` is the kernel-specific table (navigation steps, equi-key
    columns, …) filled by :func:`repro.plan.kernels.prepare_statics`.
    """

    __slots__ = ("signature", "source_documents", "statics")

    def __init__(self, signature, source_documents: frozenset, statics):
        self.signature = signature
        self.source_documents = source_documents
        self.statics = statics


class PlanCache:
    """Compiled-plan and prepared-metadata cache shared across views.

    One instance per :class:`~repro.multiview.ViewRegistry` (or per
    standalone pipeline): plans memoize per root operator and mode;
    prepared metadata memoizes per structural signature, so a subplan
    prefix two views share compiles once.  All counters are plain ints
    (mirrored into the metrics registry by a sync hook, never
    incremented through it).
    """

    def __init__(self):
        self._plans: dict[tuple[int, str], CompiledPlan] = {}
        self._prepared: dict[tuple, PreparedOp] = {}
        # -- counters (mirrored by obs sync hooks) --
        self.compiles = 0
        self.compile_seconds = 0.0
        self.hits = 0
        self.misses = 0
        self.instructions_executed = 0
        self.kernel_runs = 0
        self.fallback_runs = 0

    # -- prepared metadata -------------------------------------------------------------

    def prepared_for(self, op: XatOperator) -> PreparedOp:
        signature = subplan_signature(op)
        prepared = self._prepared.get(signature)
        if prepared is not None:
            self.hits += 1
            return prepared
        self.misses += 1
        prepared = PreparedOp(signature,
                              frozenset(op.source_documents()),
                              prepare_statics(op))
        self._prepared[signature] = prepared
        return prepared

    # -- plans -------------------------------------------------------------------------

    def plan(self, root: XatOperator, mode: str) -> CompiledPlan:
        key = (id(root), mode)
        cached = self._plans.get(key)
        if cached is not None:
            return cached
        started = time.perf_counter()
        shared_before = self.hits
        compiled = lower(root, mode, cache=self)
        compiled.compile_seconds = time.perf_counter() - started
        compiled.shared_prefix_instructions = self.hits - shared_before
        self.compiles += 1
        self.compile_seconds += compiled.compile_seconds
        self._plans[key] = compiled
        return compiled

    def plans_for(self, root: XatOperator) -> list[CompiledPlan]:
        """The compiled plans of one root, FULL before Δ (for EXPLAIN)."""
        return [plan for mode in (FULL, DELTA)
                if (plan := self._plans.get((id(root), mode))) is not None]

    def invalidate(self, root: Optional[XatOperator] = None) -> None:
        """Drop compiled plans (all, or one root's) — prepared metadata
        is structural and stays."""
        if root is None:
            self._plans.clear()
            return
        for mode in (FULL, DELTA):
            self._plans.pop((id(root), mode), None)

    def stats(self) -> dict:
        return {"compiles": self.compiles,
                "compile_seconds": self.compile_seconds,
                "hits": self.hits,
                "misses": self.misses,
                "instructions_executed": self.instructions_executed,
                "kernel_runs": self.kernel_runs,
                "fallback_runs": self.fallback_runs}


def lower(root: XatOperator, mode: str,
          cache: Optional[PlanCache] = None) -> CompiledPlan:
    """Lower ``root`` (and its whole tree) for one execution mode.

    Returns a :class:`CompiledPlan` whose instructions are in dependency
    order.  ``cache`` supplies (and is populated with) shared prepared
    metadata; a private cache is used when none is given.
    """
    if root.schema is None:
        raise RuntimeError("plan not prepared; call plan.prepare()")
    owned_cache = cache if cache is not None else PlanCache()
    instructions: list[Instruction] = []
    reg_of: dict[tuple[int, str], int] = {}

    def visit(op: XatOperator, op_mode: str) -> int:
        key = (id(op), op_mode)
        reg = reg_of.get(key)
        if reg is not None:
            return reg
        # A Map's RHS is correlated: it evaluates per binding inside the
        # operator and must never be scheduled (or memoized) standalone.
        inputs = op.inputs[:1] if isinstance(op, Map) else op.inputs
        srcs = tuple(visit(child, op_mode) for child in inputs)
        reg = len(instructions)
        reg_of[key] = reg
        prepared = owned_cache.prepared_for(op)
        instructions.append(Instruction(
            opcode_for(op, op_mode), reg, srcs, op, op_mode,
            kernel=kernel_for(op, op_mode), prepared=prepared))
        return reg

    root_reg = visit(root, mode)
    return CompiledPlan(instructions, len(instructions), root_reg, mode,
                        subplan_signature(root))
