"""The linear delta-plan IR.

A compiled plan is a topologically ordered list of instructions over a
flat register file.  Each instruction computes one ``(operator, mode)``
node of the algebra DAG and writes its table into its destination
register; operands name the registers holding the already-computed
inputs.  The same operator appearing under several modes (a join's Δ
pass next to its FULL side) occupies distinct registers — the register
file *is* the per-run memo, laid out ahead of time.

Opcodes name the operator family plus the execution mode so a listing
reads like a program (``NAV_UNNEST.d r3 <- r2``).  Per-instruction
counters (executions, rows in/out, Δ rows, kernel vs fallback runs)
accumulate on the instruction and feed ``EXPLAIN``'s listing section.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..xat.base import DELTA

#: operator class name -> opcode mnemonic
_OPCODES = {
    "Source": "SOURCE",
    "NavigateUnnest": "NAV_UNNEST",
    "NavigateCollection": "NAV_COLLECT",
    "Select": "SELECT",
    "Rename": "RENAME",
    "Join": "JOIN",
    "LeftOuterJoin": "LOJOIN",
    "CartesianProduct": "PRODUCT",
    "Distinct": "DISTINCT",
    "OrderBy": "ORDER_BY",
    "GroupBy": "GROUP_BY",
    "Aggregate": "AGGREGATE",
    "TupleFunction": "FUNCTION",
    "Combine": "COMBINE",
    "Tagger": "TAGGER",
    "XmlUnion": "UNION",
    "XmlUnique": "UNIQUE",
    "Merge": "MERGE",
    "VariableBinding": "BIND",
    "Map": "MAP",
    "Expose": "EXPOSE",
    "Pattern": "PATTERN",
}

#: mode -> mnemonic suffix ("full" stays bare; Δ and anti are marked)
_MODE_SUFFIX = {"full": "", "delta": ".d", "anti": ".a"}


def opcode_for(op, mode: str) -> str:
    """The instruction mnemonic for one ``(operator, mode)`` node."""
    base = _OPCODES.get(type(op).__name__, "EVAL")
    return base + _MODE_SUFFIX.get(mode, "." + mode)


class Instruction:
    """One step of a compiled plan: ``dest <- opcode(srcs)``.

    ``xop`` is the XAT operator instance the instruction realizes and
    ``mode`` the execution mode it runs under.  ``kernel`` is the
    specialized columnar implementation bound at lowering time (``None``
    means the generic interpreter-backed implementation).  ``prepared``
    carries compile-time static metadata (navigation step tables, join
    key columns, source-document sets) shared across structurally-equal
    subplans.
    """

    __slots__ = ("opcode", "dest", "srcs", "xop", "mode", "kernel",
                 "prepared", "executed", "kernel_runs", "fallback_runs",
                 "shortcircuits", "rows_in", "rows_out", "delta_rows")

    def __init__(self, opcode: str, dest: int, srcs: tuple, xop, mode: str,
                 kernel: Optional[Callable] = None, prepared=None):
        self.opcode = opcode
        self.dest = dest
        self.srcs = srcs
        self.xop = xop
        self.mode = mode
        self.kernel = kernel
        self.prepared = prepared
        # -- live counters (rendered by the EXPLAIN listing) --
        self.executed = 0
        self.kernel_runs = 0
        self.fallback_runs = 0
        self.shortcircuits = 0
        self.rows_in = 0
        self.rows_out = 0
        self.delta_rows = 0

    def record(self, rows_in: int, rows_out: int, *, kernel: bool,
               shortcircuit: bool = False) -> None:
        self.executed += 1
        self.rows_in += rows_in
        self.rows_out += rows_out
        if self.mode == DELTA:
            self.delta_rows += rows_out
        if shortcircuit:
            self.shortcircuits += 1
        elif kernel:
            self.kernel_runs += 1
        else:
            self.fallback_runs += 1

    def render(self) -> str:
        srcs = ", ".join(f"r{s}" for s in self.srcs) or "-"
        text = (f"r{self.dest:<3} <- {self.opcode:<13} {srcs:<12}"
                f" runs={self.executed}"
                f" in={self.rows_in} out={self.rows_out}")
        if self.mode == DELTA:
            text += f" Δ={self.delta_rows}"
        if self.kernel is not None:
            text += (f" kernel={self.kernel_runs}"
                     f"/fallback={self.fallback_runs}")
        if self.shortcircuits:
            text += f" skip={self.shortcircuits}"
        return text


class CompiledPlan:
    """A lowered plan: instructions in dependency order plus metadata.

    ``signature`` is the root operator's structural signature (shared
    with :mod:`repro.engine.opstate`), which keys the plan cache and the
    cross-view sharing of compile artifacts.  ``root`` is the register
    holding the final result.
    """

    __slots__ = ("instructions", "nregs", "root", "mode", "signature",
                 "compile_seconds", "shared_prefix_instructions")

    def __init__(self, instructions: list, nregs: int, root: int,
                 mode: str, signature, compile_seconds: float = 0.0,
                 shared_prefix_instructions: int = 0):
        self.instructions = instructions
        self.nregs = nregs
        self.root = root
        self.mode = mode
        self.signature = signature
        self.compile_seconds = compile_seconds
        self.shared_prefix_instructions = shared_prefix_instructions

    def __len__(self) -> int:
        return len(self.instructions)

    def listing(self) -> str:
        """The rendered instruction listing (one line per instruction)."""
        head = (f"compiled plan [{self.mode}]"
                f" {len(self.instructions)} instructions,"
                f" {self.nregs} registers, root=r{self.root}")
        if self.shared_prefix_instructions:
            head += (f", shared-prefix="
                     f"{self.shared_prefix_instructions}")
        return "\n".join([head] + ["  " + instr.render()
                                   for instr in self.instructions])
