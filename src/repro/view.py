"""The public facade: materialized XQuery views under V-P-A maintenance.

:class:`MaterializedXQueryView` ties the whole system together (Fig 1.5):

* **define** — an XQuery string (or a prepared XAT plan) over documents
  registered in a :class:`~repro.storage.StorageManager`;
* **materialize** — execute once, keeping the extent (with semantic ids,
  order tokens and count annotations);
* **apply_updates** — the V-P-A pipeline: *Validate* each update against
  the view's SAPT (irrelevant updates only touch storage; insufficient
  modifies are decomposed into delete+insert of their binding fragment),
  *Propagate* batch update trees through the same plan in delta mode, and
  *Apply* the resulting delta update trees with the count-aware Deep Union.

Updates are processed in order; maximal runs over the same document with
the same kind form one batch update tree (one delta pass).  Inserts and
modifies reach storage before their batch propagates, deletes after — the
phase/count discipline of Chapter 6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Union

from .apply import ExtentNode, FusionReport, deep_union
from .apply.deep_union import fuse_forest
from .engine import Engine
from .storage import StorageManager
from .translate import translate_query
from .updates.primitives import UpdateRequest, UpdateTree
from .updates.sapt import Sapt
from .xat import DELETE, DELTA, INSERT, MODIFY, Profiler, XatOperator
from .xat.base import DeltaRoot, DeltaSpec
from .xmlmodel import XmlNode, serialize


@dataclass
class MaintenanceReport:
    """What one ``apply_updates`` call did, with timing per V-P-A phase."""

    accepted: int = 0
    irrelevant: int = 0
    decomposed: int = 0
    batches: int = 0
    validate_seconds: float = 0.0
    propagate_seconds: float = 0.0
    apply_seconds: float = 0.0
    recomputed: bool = False
    fusion: FusionReport = field(default_factory=FusionReport)

    @property
    def total_seconds(self) -> float:
        return (self.validate_seconds + self.propagate_seconds
                + self.apply_seconds)


class MaterializedXQueryView:
    """A materialized XQuery view maintained incrementally."""

    def __init__(self, storage: StorageManager,
                 query: Union[str, XatOperator],
                 validate_updates: bool = True):
        self.storage = storage
        self.engine = Engine(storage)
        if isinstance(query, str):
            self.query_text: Optional[str] = query
            self.plan = translate_query(query)
        else:
            self.query_text = None
            self.plan = query if query.schema is not None else query.prepare()
        self.sapt = Sapt.from_plan(self.plan)
        self.validate_updates = validate_updates
        self.extent: Optional[ExtentNode] = None
        self._materialized = False

    # -- materialization ---------------------------------------------------------------

    def materialize(self, profiler: Optional[Profiler] = None) -> str:
        """Execute the view and keep the extent; returns the XML string."""
        self.extent, _report = self.engine.materialize(self.plan,
                                                       profiler=profiler)
        self._materialized = True
        return self.to_xml()

    def to_xml(self) -> str:
        """Serialized current extent (content and order)."""
        return Engine.serialize_extent(self.extent)

    def recompute_xml(self) -> str:
        """Full recomputation over current sources (the correctness oracle)."""
        extent, _ = self.engine.materialize(self.plan)
        return Engine.serialize_extent(extent)

    def extent_size(self) -> int:
        return self.extent.subtree_size() if self.extent is not None else 0

    # -- maintenance (V-P-A) ---------------------------------------------------------------

    def apply_updates(self, updates: list[UpdateRequest],
                      profiler: Optional[Profiler] = None
                      ) -> MaintenanceReport:
        """Validate, propagate and apply a heterogeneous update sequence."""
        if not self._materialized:
            raise RuntimeError("materialize() the view before updating it")
        report = MaintenanceReport()
        run: list[UpdateTree] = []
        deferred_deletes: list[UpdateRequest] = []

        def flush_run():
            if not run:
                return
            report.batches += 1
            spec = DeltaSpec(run[0].document,
                             tuple(DeltaRoot(t.root, t.kind) for t in run),
                             run[0].kind)
            started = time.perf_counter()
            forest = self.engine.result_forest(self.plan, mode=DELTA,
                                               delta=spec,
                                               profiler=profiler)
            for request in deferred_deletes:
                self.storage.delete_subtree(request.target)
            report.propagate_seconds += time.perf_counter() - started
            started = time.perf_counter()
            self.extent, _ = fuse_forest(self.extent, forest, report.fusion)
            report.apply_seconds += time.perf_counter() - started
            run.clear()
            deferred_deletes.clear()

        queue = list(updates)
        index = 0
        while index < len(queue):
            request = queue[index]
            index += 1
            started = time.perf_counter()
            outcome = self._validate_one(request, report)
            report.validate_seconds += time.perf_counter() - started
            if outcome is None:
                continue
            if isinstance(outcome, list):  # decomposed modify
                queue[index:index] = outcome
                continue
            tree, deferred = outcome
            if run and (tree.document != run[0].document
                        or tree.kind != run[0].kind):
                flush_run()
            if any(t.root == tree.root or t.root.is_ancestor_of(tree.root)
                   for t in run):
                continue  # already covered by an enclosing root
            run[:] = [t for t in run if not tree.root.is_ancestor_of(t.root)]
            run.append(tree)
            if deferred is not None:
                deferred_deletes.append(deferred)
        flush_run()

        if report.fusion.aggregate_refreshes:
            # min/max eviction: fall back to recomputation (Section 7.6).
            started = time.perf_counter()
            self.extent, _ = self.engine.materialize(self.plan)
            report.recomputed = True
            report.apply_seconds += time.perf_counter() - started
        return report

    # -- validate phase ------------------------------------------------------------------------

    def _validate_one(self, request: UpdateRequest,
                      report: MaintenanceReport):
        """Returns (UpdateTree, deferred delete request | None), a list of
        replacement requests (decomposition), or None (irrelevant)."""
        storage = self.storage
        if request.kind == INSERT:
            key = self._insert_fragment(request)
            if self.validate_updates and not self.sapt.is_relevant(
                    storage, request.document, key):
                report.irrelevant += 1
                return None
            report.accepted += 1
            return UpdateTree(request.document, key, INSERT), None
        if request.kind == DELETE:
            if self.validate_updates and not self.sapt.is_relevant(
                    storage, request.document, request.target):
                storage.delete_subtree(request.target)
                report.irrelevant += 1
                return None
            report.accepted += 1
            return (UpdateTree(request.document, request.target, DELETE),
                    request)
        # MODIFY
        if self.validate_updates and not self.sapt.is_relevant(
                storage, request.document, request.target):
            storage.replace_text(request.target, request.new_value)
            report.irrelevant += 1
            return None
        if self.validate_updates and self.sapt.modify_hits_predicate(
                storage, request.document, request.target):
            report.decomposed += 1
            return self._decompose_modify(request)
        report.accepted += 1
        storage.replace_text(request.target, request.new_value)
        return UpdateTree(request.document, request.target, MODIFY), None

    def _decompose_modify(self, request: UpdateRequest
                          ) -> list[UpdateRequest]:
        """A modify on a predicate path becomes delete+insert of its
        binding fragment (the sufficiency treatment of Section 5.2.2)."""
        storage = self.storage
        anchor = self.sapt.binding_anchor(storage, request.document,
                                          request.target)
        if anchor is None:
            anchor = storage.parent_key(request.target) or request.target
        parent = storage.parent_key(anchor)
        if parent is None:
            raise ValueError("cannot decompose a modify at a document root")
        anchor_node = storage.node(anchor)
        siblings = anchor_node.parent.children
        position_index = siblings.index(anchor_node)
        before_key = (siblings[position_index + 1].key
                      if position_index + 1 < len(siblings) else None)

        replacement = anchor_node.deep_copy()
        target_copy = self._copy_path_target(anchor, request.target,
                                             replacement)
        for child in list(target_copy.children):
            if child.is_text:
                target_copy.remove(child)
        target_copy.append(XmlNode.text(request.new_value))

        if before_key is not None:
            insert = UpdateRequest.insert(request.document, before_key,
                                          replacement, position="before")
        else:
            insert = UpdateRequest.insert(request.document, parent,
                                          replacement, position="into")
        return [UpdateRequest.delete(request.document, anchor), insert]

    def _copy_path_target(self, anchor, target, replacement: XmlNode
                          ) -> XmlNode:
        """Locate inside ``replacement`` the copy of the node at ``target``."""
        storage = self.storage
        chain = []
        probe = target
        while probe != anchor:
            chain.append(storage.node(probe))
            probe = storage.parent_key(probe)
        node_copy = replacement
        original = storage.node(anchor)
        for step in reversed(chain):
            node_copy = node_copy.children[original.children.index(step)]
            original = step
        return node_copy

    # -- storage application ---------------------------------------------------------------------

    def _insert_fragment(self, request: UpdateRequest):
        storage = self.storage
        if request.position == "into":
            return storage.insert_fragment(request.target, request.fragment)
        parent = storage.parent_key(request.target)
        if parent is None:
            raise ValueError("cannot insert next to a document root")
        if request.position == "after":
            return storage.insert_fragment(parent, request.fragment,
                                           after=request.target)
        return storage.insert_fragment(parent, request.fragment,
                                       before=request.target)
