"""The public facade: materialized XQuery views under V-P-A maintenance.

:class:`MaterializedXQueryView` ties the whole system together (Fig 1.5):

* **define** — an XQuery string (or a prepared XAT plan) over documents
  registered in a :class:`~repro.storage.StorageManager`;
* **materialize** — execute once, keeping the extent (with semantic ids,
  order tokens and count annotations);
* **apply_updates** — the V-P-A pipeline: *Validate* each update against
  the view's SAPT (irrelevant updates only touch storage; insufficient
  modifies travel as first-class retract/assert pairs), *Propagate* batch
  update trees through the same plan in delta mode, and *Apply* the
  resulting delta update trees with the count-aware Deep Union.

Updates are processed in order; maximal runs over the same document with
the same kind form one batch update tree (one delta pass).  Inserts and
modifies reach storage before their batch propagates, deletes after — the
phase/count discipline of Chapter 6.

The machinery itself lives in :mod:`repro.multiview.pipeline` and is
shared with :class:`repro.multiview.ViewRegistry`, which maintains many
views over one storage from a single update stream.

This class is a thin engine-level shim kept for plan-in-hand and
single-view work; application code should prefer the key-free session
surface :class:`repro.api.Database` (``create_view`` / path-addressed
``update`` / ``batch`` / ``subscribe``), which funnels every write
through the shared validation router exactly once.
"""

from __future__ import annotations

from typing import Optional, Union

from .apply import ExtentNode
from .engine import Engine
from .multiview.pipeline import (_REMOVED, MaintenanceReport, ViewPipeline,
                                 run_maintenance)
from .storage import StorageManager
from .translate import translate_query
from .updates.primitives import UpdateRequest
from .xat import Profiler, XatOperator

__all__ = ["MaintenanceReport", "MaterializedXQueryView"]


class MaterializedXQueryView:
    """A materialized XQuery view maintained incrementally."""

    def __init__(self, storage: StorageManager,
                 query: Union[str, XatOperator],
                 validate_updates: bool = True,
                 operator_state: bool = True,
                 compiled: bool = True,
                 modify_decomposition=_REMOVED):
        if modify_decomposition is not _REMOVED:
            raise TypeError(
                "modify_decomposition was removed: the legacy "
                "delete+reinsert decomposition of insufficient modifies "
                "is gone after its one-release deprecation window; "
                "modifies always propagate as first-class retract/assert "
                "pairs now")
        self.storage = storage
        self.engine = Engine(storage)
        if isinstance(query, str):
            self.query_text: Optional[str] = query
            plan = translate_query(query)
        else:
            self.query_text = None
            plan = query
        extra = {} if operator_state else {"state_store": None}
        self._pipeline = ViewPipeline(
            self.engine, plan, validate_updates=validate_updates,
            compiled=compiled, **extra)

    # -- pipeline state (kept as attributes for API compatibility) -----------------------

    @property
    def plan(self) -> XatOperator:
        return self._pipeline.plan

    @property
    def sapt(self):
        return self._pipeline.sapt

    @property
    def validate_updates(self) -> bool:
        return self._pipeline.validate_updates

    @validate_updates.setter
    def validate_updates(self, value: bool) -> None:
        self._pipeline.validate_updates = value

    @property
    def extent(self) -> Optional[ExtentNode]:
        return self._pipeline.extent

    @extent.setter
    def extent(self, value: Optional[ExtentNode]) -> None:
        self._pipeline.extent = value

    @property
    def _materialized(self) -> bool:
        return self._pipeline.materialized

    @property
    def state_store(self):
        """The pipeline's persistent operator-state store (None when
        disabled via ``operator_state=False``)."""
        return self._pipeline.state_store

    @property
    def compiled(self) -> bool:
        """Whether execution runs through the compiled plan VM (the
        default) or the tree interpreter (``compiled=False``)."""
        return self._pipeline.compiled

    def close(self) -> None:
        """Detach view-owned storage listeners (idempotent).

        A view with operator state owns a mutation listener on its
        storage manager; call this (or use the view as a context
        manager) when discarding a view whose StorageManager outlives
        it, like :meth:`ViewRegistry.close`.
        """
        self._pipeline.close()

    def __enter__(self) -> "MaterializedXQueryView":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- materialization ---------------------------------------------------------------

    def materialize(self, profiler: Optional[Profiler] = None) -> str:
        """Execute the view and keep the extent; returns the XML string."""
        self._pipeline.materialize(profiler=profiler)
        return self.to_xml()

    def to_xml(self) -> str:
        """Serialized current extent (content and order)."""
        return self._pipeline.to_xml()

    def recompute_xml(self) -> str:
        """Full recomputation over current sources (the correctness oracle)."""
        return self._pipeline.recompute_xml()

    def extent_size(self) -> int:
        return self._pipeline.extent_size()

    # -- maintenance (V-P-A) ---------------------------------------------------------------

    def apply_updates(self, updates: list[UpdateRequest],
                      profiler: Optional[Profiler] = None
                      ) -> MaintenanceReport:
        """Validate, propagate and apply a heterogeneous update sequence."""
        return run_maintenance(self._pipeline, updates, profiler=profiler)
