"""The reusable V-P-A pipeline (Validate / Propagate / Apply).

This module is the single implementation of the maintenance machinery of
Chapters 5-7, extracted from the original single-view facade so that both
:class:`repro.MaterializedXQueryView` (one view) and
:class:`repro.multiview.ViewRegistry` (N views over one storage) run the
same code:

* the **Validate** helpers — relevancy classification against a SAPT,
  storage application of accepted primitives, and the first-class
  treatment of insufficient modifies (Section 5.2.2): the replaced text
  travels as an ``(old, new)`` pair on the update tree and propagates as
  a retraction+assertion (the legacy delete+reinsert decomposition was
  removed after its one-release deprecation window);
* the **Propagate/Apply** step — :meth:`ViewPipeline.propagate_run` runs
  one batch update tree through the plan in delta mode and fuses the delta
  forest into the extent with the count-aware Deep Union;
* the sequential driver :func:`run_maintenance` — the exact single-view
  discipline: updates processed in order, maximal same-document same-kind
  runs batched (via :class:`repro.updates.batch.RunBatcher`), inserts and
  modifies applied to storage before their batch propagates, deletes
  after.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..apply import ExtentNode, FusionReport
from ..engine import Engine
from ..engine.opstate import OperatorStateStore
from ..updates.batch import RunBatcher, spec_for_run
from ..updates.primitives import UpdateRequest, UpdateTree
from ..updates.sapt import Sapt
from ..storage import StorageManager
from ..xat import DELETE, INSERT, MODIFY, Profiler, XatOperator

#: sentinel: "the caller did not pass the removed keyword" — anything
#: else (even None/False) trips the removal TypeError below.
_REMOVED = object()


@dataclass
class MaintenanceReport:
    """What one maintenance pass did, with timing per V-P-A phase.

    ``state_hits`` / ``state_misses`` / ``state_patches`` expose the
    operator-state store's activity during this view's propagation:
    side tables served from persistent state, side tables that had to be
    (re)computed, and cached tables patched from batch deltas.
    """

    accepted: int = 0
    irrelevant: int = 0
    batches: int = 0
    validate_seconds: float = 0.0
    propagate_seconds: float = 0.0
    apply_seconds: float = 0.0
    recomputed: bool = False
    fusion: FusionReport = field(default_factory=FusionReport)
    state_hits: int = 0
    state_misses: int = 0
    state_patches: int = 0

    @property
    def total_seconds(self) -> float:
        return (self.validate_seconds + self.propagate_seconds
                + self.apply_seconds)

    def as_dict(self) -> dict:
        return {"accepted": self.accepted,
                "irrelevant": self.irrelevant,
                "batches": self.batches,
                "validate_seconds": self.validate_seconds,
                "propagate_seconds": self.propagate_seconds,
                "apply_seconds": self.apply_seconds,
                "total_seconds": self.total_seconds,
                "recomputed": self.recomputed,
                "state_hits": self.state_hits,
                "state_misses": self.state_misses,
                "state_patches": self.state_patches,
                "fusion": self.fusion.as_dict()}

    def merge(self, other: "MaintenanceReport") -> "MaintenanceReport":
        """Fold another pass's activity into this report.

        Counters and phase timings add; ``recomputed`` ors (any pass
        falling back to recomputation taints the merged summary).  Used
        by benchmark summaries and :class:`MultiViewReport` merging to
        aggregate across flushes.
        """
        self.accepted += other.accepted
        self.irrelevant += other.irrelevant
        self.batches += other.batches
        self.validate_seconds += other.validate_seconds
        self.propagate_seconds += other.propagate_seconds
        self.apply_seconds += other.apply_seconds
        self.recomputed = self.recomputed or other.recomputed
        self.state_hits += other.state_hits
        self.state_misses += other.state_misses
        self.state_patches += other.state_patches
        self.fusion.merge(other.fusion)
        return self


# -- Validate phase: storage application helpers ----------------------------------------


def apply_insert(storage: StorageManager, request: UpdateRequest):
    """Apply an insert request to storage, returning the new root's key."""
    if request.position == "into":
        return storage.insert_fragment(request.target, request.fragment)
    parent = storage.parent_key(request.target)
    if parent is None:
        raise ValueError("cannot insert next to a document root")
    if request.position == "after":
        return storage.insert_fragment(parent, request.fragment,
                                       after=request.target)
    return storage.insert_fragment(parent, request.fragment,
                                   before=request.target)


def direct_text(storage: StorageManager, key) -> str:
    """The concatenated *direct* text children of the element at ``key``
    — exactly what the modify primitive replaces (``storage.text`` would
    concatenate the whole subtree)."""
    return "".join(child.value or ""
                   for child in storage.node(key).children
                   if child.is_text)


def validate_one(storage: StorageManager, sapt: Sapt,
                 request: UpdateRequest, report: MaintenanceReport,
                 validate_updates: bool = True):
    """Single-view Validate: classify one request and apply its storage
    change at the right point of the pipeline.

    Returns ``(UpdateTree, deferred delete request | None)`` or ``None``
    (irrelevant — the storage change has been applied, nothing
    propagates).

    An insufficient modify (the value feeds a predicate or sort key)
    becomes a *first-class modify tree* carrying the ``(old, new)`` text
    pair; the Propagate phase turns it into a retraction+assertion that
    re-routes derivations in one pass.
    """
    if request.kind == INSERT:
        key = apply_insert(storage, request)
        if validate_updates and not sapt.is_relevant(
                storage, request.document, key):
            report.irrelevant += 1
            return None
        report.accepted += 1
        return UpdateTree(request.document, key, INSERT), None
    if request.kind == DELETE:
        if validate_updates and not sapt.is_relevant(
                storage, request.document, request.target):
            storage.delete_subtree(request.target)
            report.irrelevant += 1
            return None
        report.accepted += 1
        return (UpdateTree(request.document, request.target, DELETE),
                request)
    # MODIFY
    if validate_updates and not sapt.is_relevant(
            storage, request.document, request.target):
        storage.replace_text(request.target, request.new_value)
        report.irrelevant += 1
        return None
    if validate_updates and sapt.modify_hits_predicate(
            storage, request.document, request.target):
        report.accepted += 1
        old_value = direct_text(storage, request.target)
        storage.replace_text(request.target, request.new_value)
        return UpdateTree(request.document, request.target, MODIFY,
                          old_value=old_value,
                          new_value=request.new_value), None
    report.accepted += 1
    storage.replace_text(request.target, request.new_value)
    return UpdateTree(request.document, request.target, MODIFY), None


# -- the maintainable state of one view ------------------------------------------------


#: sentinel: "create a store of your own" (None means "disabled")
_OWN_STORE = object()


class ViewPipeline:
    """Plan, SAPT and extent of one materialized view, plus its P-A step.

    This is the view-side state the registry manages per registered view
    and the facade wraps for the single-view API.

    ``state_store`` is the persistent operator-state store used by the
    Propagate step: by default the pipeline owns a fresh one; the registry
    passes one *shared* store so structurally-equal subplans across views
    resolve to the same cached tables; ``None`` disables persistent state
    (every run re-derives its side tables, the pre-store behaviour).

    ``tracer`` is an optional :class:`repro.obs.Tracer`; when set (the
    registry wires its own in) the Propagate/Apply phase timings of each
    batch are emitted as child spans of whatever span is current.
    """

    def __init__(self, engine: Engine, plan: XatOperator,
                 sapt: Optional[Sapt] = None, validate_updates: bool = True,
                 state_store=_OWN_STORE, compiled: bool = True,
                 plan_cache=None, modify_decomposition=_REMOVED):
        if modify_decomposition is not _REMOVED:
            raise TypeError(
                "modify_decomposition was removed: the legacy "
                "delete+reinsert decomposition of insufficient modifies "
                "is gone after its one-release deprecation window; "
                "modifies always propagate as first-class retract/assert "
                "pairs now")
        self.engine = engine
        self.storage = engine.storage
        self.plan = plan if plan.schema is not None else plan.prepare()
        self.sapt = sapt if sapt is not None else Sapt.from_plan(self.plan)
        self.validate_updates = validate_updates
        self.tracer = None
        self.extent: Optional[ExtentNode] = None
        self.materialized = False
        self._closed = False
        # Compiled execution: lower the plan to the linear IR and run it
        # on the batch VM (``compiled=False`` keeps the tree interpreter
        # as the execution engine — the differential oracle setting).
        # ``plan_cache`` shares compiled subplans across views (the
        # registry passes its own); a standalone pipeline owns one.
        if compiled:
            from ..plan import PlanCache, PlanVM
            self.vm = PlanVM(plan_cache if plan_cache is not None
                             else PlanCache())
        else:
            self.vm = None
        if state_store is _OWN_STORE:
            self.state_store = OperatorStateStore(self.storage)
            self._owns_store = True
        else:
            self.state_store = state_store
            self._owns_store = False

    @property
    def compiled(self) -> bool:
        return self.vm is not None

    def close(self) -> None:
        """Detach pipeline-owned resources from storage (idempotent —
        double-close must never detach another owner's listeners)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_store and self.state_store is not None:
            self.state_store.close()

    def materialize(self, profiler: Optional[Profiler] = None) -> None:
        self.extent, _report = self.engine.materialize(self.plan,
                                                       profiler=profiler,
                                                       vm=self.vm)
        self.materialized = True

    def recompute(self) -> None:
        """Replace the extent by full recomputation over current sources."""
        self.extent, _report = self.engine.materialize(self.plan,
                                                       vm=self.vm)

    def to_xml(self) -> str:
        return Engine.serialize_extent(self.extent)

    def recompute_xml(self) -> str:
        """Full recomputation over current sources (the correctness
        oracle) — does not touch the maintained extent."""
        extent, _report = self.engine.materialize(self.plan)
        return Engine.serialize_extent(extent)

    def extent_size(self) -> int:
        return self.extent.subtree_size() if self.extent is not None else 0

    def propagate_run(self, run: list[UpdateTree],
                      report: MaintenanceReport,
                      profiler: Optional[Profiler] = None,
                      before_fuse=None) -> None:
        """Propagate one closed run (one batch update tree) and fuse the
        delta into the extent."""
        report.batches += 1
        store = self.state_store
        before = store.stats.snapshot() if store is not None else None
        tracer = self.tracer
        tracing = tracer is not None and tracer.active
        if tracing:
            propagate_before = report.propagate_seconds
            apply_before = report.apply_seconds
        self.extent, _fusion = self.engine.propagate(
            self.plan, self.extent, spec_for_run(run), profiler=profiler,
            report=report, before_fuse=before_fuse, store=store,
            vm=self.vm)
        if store is not None:
            hits, misses, patches, _inv = store.stats.snapshot()
            report.state_hits += hits - before[0]
            report.state_misses += misses - before[1]
            report.state_patches += patches - before[2]
        if tracing:
            tracer.record(
                "phase.propagate",
                report.propagate_seconds - propagate_before,
                trees=len(run), kind=run[0].kind)
            tracer.record("phase.apply",
                          report.apply_seconds - apply_before,
                          trees=len(run))


# -- the single-view V-P-A driver ------------------------------------------------------


def run_maintenance(view: ViewPipeline, updates: list[UpdateRequest],
                    profiler: Optional[Profiler] = None
                    ) -> MaintenanceReport:
    """Validate, propagate and apply a heterogeneous update sequence
    against one view — the Fig 1.5 loop."""
    if not view.materialized:
        raise RuntimeError("materialize() the view before updating it")
    storage = view.storage
    report = MaintenanceReport()
    batcher = RunBatcher()
    deferred_deletes: list[UpdateRequest] = []

    def flush(run, deletes):
        if run is None:
            return

        def apply_deletes():
            # Deletes reach storage only after propagation has read the
            # doomed subtrees (the phase/count discipline of Chapter 6).
            for request in deletes:
                storage.delete_subtree(request.target)

        view.propagate_run(run, report, profiler=profiler,
                           before_fuse=apply_deletes)

    for request in updates:
        # A kind/document boundary closes the pending run — flushed
        # before validate_one applies this request's storage change
        # (see RunBatcher.crosses; a leaked mutation would be seen by
        # the closed batch's delta pass *and* by its own batch later,
        # double-applying it).
        if batcher.crosses(request.document, request.kind):
            flush(batcher.close(), deferred_deletes)
            deferred_deletes = []
        started = time.perf_counter()
        outcome = validate_one(storage, view.sapt, request, report,
                               view.validate_updates)
        report.validate_seconds += time.perf_counter() - started
        if outcome is None:
            continue
        tree, deferred = outcome
        closed, accepted = batcher.push(tree)
        assert closed is None  # the boundary flush above closed the run
        if not accepted:
            continue  # already covered by an enclosing root in the run
        if deferred is not None:
            deferred_deletes.append(deferred)
    flush(batcher.close(), deferred_deletes)

    if report.fusion.aggregate_refreshes:
        # min/max eviction: fall back to recomputation (Section 7.6).
        started = time.perf_counter()
        view.recompute()
        report.recomputed = True
        report.apply_seconds += time.perf_counter() - started
    return report
