"""Per-view maintenance policies.

A registered view chooses *when* its queued delta batches propagate:

* ``immediate`` — at every batch boundary of the shared update stream
  (the single-view facade's behaviour);
* ``deferred`` — queue batches and flush lazily, on the next read
  (:meth:`ViewRegistry.query`) or an explicit
  :meth:`ViewRegistry.flush`;
* ``threshold(K)`` — queue batches and flush as soon as ``K`` or more
  update trees are pending.

Whatever the policy, **delete batches are barriers**: a source subtree
can only leave storage after every relevant view has propagated it (the
Propagate phase reads the doomed subtree — Chapter 6's phase/count
discipline), so a delete forces all views it is relevant to, deferred or
not, to flush through it first.  Deferral is thereby bounded by delete
barriers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

IMMEDIATE_KIND = "immediate"
DEFERRED_KIND = "deferred"
THRESHOLD_KIND = "threshold"

_KINDS = (IMMEDIATE_KIND, DEFERRED_KIND, THRESHOLD_KIND)


@dataclass(frozen=True)
class MaintenancePolicy:
    """When a view's pending delta batches are propagated."""

    kind: str
    threshold: Optional[int] = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown maintenance policy {self.kind!r}")
        if self.kind == THRESHOLD_KIND:
            if self.threshold is None or self.threshold < 1:
                raise ValueError("threshold policy needs a bound >= 1")
        elif self.threshold is not None:
            raise ValueError(f"{self.kind} policy takes no threshold")

    @classmethod
    def parse(cls, value: Union["MaintenancePolicy", str, int]
              ) -> "MaintenancePolicy":
        """Accepts a policy, ``"immediate"``/``"deferred"``, or an int K
        (shorthand for ``threshold(K)``)."""
        if isinstance(value, cls):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return threshold(value)
        if isinstance(value, str):
            if value == THRESHOLD_KIND:
                raise ValueError("threshold policy needs a bound: "
                                 "use threshold(K)")
            return cls(value)
        raise TypeError(f"cannot parse a policy from {value!r}")


IMMEDIATE = MaintenancePolicy(IMMEDIATE_KIND)
DEFERRED = MaintenancePolicy(DEFERRED_KIND)


def threshold(bound: int) -> MaintenancePolicy:
    """Flush once ``bound`` or more update trees are pending."""
    return MaintenancePolicy(THRESHOLD_KIND, bound)
