"""Shared validation routing — the multi-view Validate phase.

With N views over shared documents, running each view's SAPT relevancy
check independently repeats the expensive steps — walking the update
target's root-to-node tag path and prefix-matching it against access
paths — once per view.  :class:`SharedValidationRouter` merges every
subscribed view's access paths into one *interned* index: identical
``(steps, has_descendant)`` paths across views collapse into a single
entry that remembers which views subscribe and with which usage strength
(any usage ⇒ relevant at/above the path; subtree usages ⇒ relevant below
it; predicate usage ⇒ modifies decompose).  Each update is then classified
**exactly once** — one tag-path walk plus one scan of the merged index —
and yields the set of affected views.  Updates relevant to no view are
reported as such so the caller can apply them to storage once and move on.

The per-view decision is provably identical to calling
:meth:`repro.updates.sapt.Sapt.is_relevant` view by view (the index is a
re-grouping of the same path sets); ``benchmarks/bench_multiview.py``
checks that equivalence and measures the saving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..flexkeys import FlexKey
from ..storage import StorageManager
from ..updates.sapt import (PREDICATE, _SUBTREE_USAGES, Sapt,
                            modify_hits_steps)


@dataclass
class RouterStats:
    """Counters proving each update is classified exactly once."""

    classifications: int = 0
    routed: int = 0                   # updates relevant to >= 1 view
    irrelevant_everywhere: int = 0
    predicate_checks: int = 0         # modifies probed for insufficiency
    predicate_modifies: int = 0       # modifies some view saw as
                                      # insufficient (retract/assert pair)

    def as_dict(self) -> dict:
        return {"classifications": self.classifications,
                "routed": self.routed,
                "irrelevant_everywhere": self.irrelevant_everywhere,
                "predicate_checks": self.predicate_checks,
                "predicate_modifies": self.predicate_modifies}


@dataclass
class RouteResult:
    """Outcome of classifying one update target."""

    views: frozenset                  # names of affected views
    tags: tuple[str, ...]             # the (single) tag-path walk, reusable


@dataclass
class _PathEntry:
    """One interned access path with its subscribers by usage strength."""

    steps: tuple[str, ...]
    any_views: set = field(default_factory=set)
    subtree_views: set = field(default_factory=set)
    predicate_views: set = field(default_factory=set)


class SharedValidationRouter:
    """Classifies updates once against the merged path index of N views."""

    def __init__(self):
        self._sapts: dict[str, Sapt] = {}
        self.stats = RouterStats()
        # document -> interned entries / wildcard subscriber sets
        self._index: dict[str, list[_PathEntry]] = {}
        self._wildcard: dict[str, set] = {}
        self._predicate_wildcard: dict[str, set] = {}

    # -- subscription ------------------------------------------------------------------

    def subscribe(self, name: str, sapt: Sapt) -> None:
        self._sapts[name] = sapt
        self._rebuild()

    def unsubscribe(self, name: str) -> None:
        del self._sapts[name]
        self._rebuild()

    def subscribers(self) -> list[str]:
        return list(self._sapts)

    def _rebuild(self) -> None:
        index: dict[str, dict[tuple, _PathEntry]] = {}
        wildcard: dict[str, set] = {}
        predicate_wildcard: dict[str, set] = {}
        subtree_usages = set(_SUBTREE_USAGES)
        for name, sapt in self._sapts.items():
            for document, accesses in sapt.paths.items():
                for access in accesses:
                    if access.has_descendant:
                        # A // path makes every target in the document
                        # relevant to this view (Sapt.is_relevant's
                        # conservative rule) — no entry matching needed.
                        wildcard.setdefault(document, set()).add(name)
                        if PREDICATE in access.usages:
                            predicate_wildcard.setdefault(
                                document, set()).add(name)
                        continue
                    bucket = index.setdefault(document, {})
                    entry = bucket.get(access.steps)
                    if entry is None:
                        entry = bucket[access.steps] = _PathEntry(
                            access.steps)
                    entry.any_views.add(name)
                    if access.usages & subtree_usages:
                        entry.subtree_views.add(name)
                    if PREDICATE in access.usages:
                        entry.predicate_views.add(name)
        self._index = {doc: list(bucket.values())
                       for doc, bucket in index.items()}
        self._wildcard = wildcard
        self._predicate_wildcard = predicate_wildcard

    # -- classification ----------------------------------------------------------------

    def route(self, storage: StorageManager, document: str,
              target: FlexKey) -> RouteResult:
        """Classify one update target: one tag-path lookup (served from
        the storage manager's structural-index cache — no ancestor walk
        for live keys), one scan of the merged index, all views."""
        self.stats.classifications += 1
        tags = storage.tag_path(target)
        views = set(self._wildcard.get(document, ()))
        for entry in self._index.get(document, ()):
            a, t = entry.steps, tags
            if len(t) <= len(a) and a[:len(t)] == t:
                views |= entry.any_views      # target at/above the path
            elif t[:len(a)] == a:
                views |= entry.subtree_views  # target inside a read subtree
        if views:
            self.stats.routed += 1
        else:
            self.stats.irrelevant_everywhere += 1
        return RouteResult(frozenset(views), tags)

    def predicate_hitters(self, document: str, tags: tuple[str, ...],
                          candidates: frozenset) -> set:
        """Which of ``candidates`` see a modify at ``tags`` as
        insufficient (feeding a predicate or sort key) — those views
        need the first-class retract/assert pair.  Path matching shares
        :func:`repro.updates.sapt.modify_hits_steps` with the
        single-view check, so the two classifiers cannot drift.
        """
        self.stats.predicate_checks += 1
        hitters = set(self._predicate_wildcard.get(document, ())
                      ) & candidates
        for entry in self._index.get(document, ()):
            if entry.predicate_views and modify_hits_steps(entry.steps,
                                                           tags):
                hitters |= entry.predicate_views & candidates
        if hitters:
            self.stats.predicate_modifies += 1
        return hitters
