"""ViewRegistry: N materialized views over one storage, one update stream.

The registry generalizes the single-view V-P-A facade (Fig 1.5) to many
simultaneously maintained views:

* **register / unregister** views by name; each carries its own plan,
  SAPT, extent, :class:`~repro.multiview.policies.MaintenancePolicy` and
  :class:`~repro.multiview.cost.CostModel`;
* **shared Validate** — every :class:`~repro.updates.primitives
  .UpdateRequest` entering :meth:`apply_updates` is classified *once* by
  the :class:`~repro.multiview.router.SharedValidationRouter` and
  dispatched only to the views it can affect; updates irrelevant to every
  view hit storage exactly once and propagate nowhere;
* **shared batching** — the stream is grouped into maximal same-document
  same-kind runs by the same :class:`~repro.updates.batch.RunBatcher`
  the single-view driver uses; each relevant view propagates its own
  subset of a run's trees (relevance is ancestor-monotone, so the global
  nested-root dedup never hides a root from a view that needs it);
* **policies** — immediate views propagate at every batch boundary;
  deferred/threshold views queue batches and flush lazily.  Delete
  batches are barriers: the doomed subtrees leave storage only after
  every relevant view (whatever its policy) has propagated them;
* **cost-based fallback** — at flush time each view's cost model compares
  the estimated propagation cost of its pending trees against observed
  recomputation cost and recomputes the extent wholesale when
  incremental maintenance would lose (Section 9.1's enable-cost
  trade-off, applied per batch).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Union

from ..engine import Engine
from ..engine.opstate import OperatorStateStore
from ..obs import MetricsRegistry, Tracer
from ..obs.core import STATE as _OBS
from ..storage import StorageManager
from ..translate import translate_query
from ..updates.batch import RunBatcher
from ..updates.primitives import UpdateRequest, UpdateTree
from ..xat import (DELETE, INSERT, MODIFY, Aggregate, CartesianProduct,
                   Distinct, GroupBy, Join, LeftOuterJoin, Profiler,
                   XatOperator, XmlUnique)
from ..xat.grouping import TupleFunction
from .cost import CostModel
from .pipeline import (_REMOVED, MaintenanceReport, ViewPipeline,
                       apply_insert, direct_text)
from .policies import IMMEDIATE_KIND, THRESHOLD_KIND, MaintenancePolicy
from .router import SharedValidationRouter


@dataclass
class RoutedTree(UpdateTree):
    """An update tree annotated with the names of the views it affects."""

    views: frozenset = frozenset()


@dataclass(frozen=True)
class RefreshEvent:
    """One view's extent just changed under maintenance.

    ``reason`` is ``"propagate"`` (pending delta batches were propagated
    into the extent) or ``"recompute"`` (the cost model or a min/max
    eviction forced full recomputation).  ``trees`` counts the update
    trees the refresh consumed.  ``duration_seconds`` is the wall-clock
    cost of the refresh itself, ``delta_tuples`` the honest size of the
    change (extent mutations fused on propagation; extent node count on
    recomputation), and ``sequence`` the view's monotonically increasing
    refresh number (starting at 1) — a per-view subscriber that sees a
    gap has missed a refresh.

    ``mutations`` is the refresh's *payload*: the tuple of JSON-ready
    visible-mutation records the Apply phase captured (see the record
    schema in :mod:`repro.apply.deep_union`), present only when at least
    one listener registered with ``deliver_mutations=True`` **and** the
    refresh propagated deltas.  ``None`` means either capture was off or
    the extent was recomputed wholesale (``reason == "recompute"``) — a
    payload subscriber must re-read the view then.
    """

    view: str
    reason: str
    trees: int = 0
    duration_seconds: float = 0.0
    delta_tuples: int = 0
    sequence: int = 0
    mutations: Optional[tuple] = None


@dataclass
class ViewStats:
    """Maintenance activity of one registered view."""

    flushes: int = 0
    recomputes: int = 0
    propagated_trees: int = 0
    routed_trees: int = 0

    def as_dict(self) -> dict:
        return {"flushes": self.flushes,
                "recomputes": self.recomputes,
                "propagated_trees": self.propagated_trees,
                "routed_trees": self.routed_trees}


@dataclass
class MultiViewReport:
    """What one :meth:`ViewRegistry.apply_updates` call did."""

    updates: int = 0                 # requests processed
    classifications: int = 0         # router classifications (exactly once
                                     # per processed request)
    routed: int = 0                  # requests relevant to >= 1 view
    irrelevant_everywhere: int = 0   # requests that only touched storage
    storage_ops: int = 0             # storage mutations performed
    validate_seconds: float = 0.0    # shared routing time (not per view)
    views: dict = field(default_factory=dict)  # name -> cumulative report

    def as_dict(self) -> dict:
        return {"updates": self.updates,
                "classifications": self.classifications,
                "routed": self.routed,
                "irrelevant_everywhere": self.irrelevant_everywhere,
                "storage_ops": self.storage_ops,
                "validate_seconds": self.validate_seconds,
                "views": {name: report.as_dict()
                          for name, report in self.views.items()}}

    def merge(self, other: "MultiViewReport") -> "MultiViewReport":
        """Fold another pass into this one (benchmark summaries merging
        across flushes).  Per-view reports merge by name; a view report
        shared by both passes (the registry exposes *cumulative* per-view
        reports) is kept once, not double-counted.
        """
        self.updates += other.updates
        self.classifications += other.classifications
        self.routed += other.routed
        self.irrelevant_everywhere += other.irrelevant_everywhere
        self.storage_ops += other.storage_ops
        self.validate_seconds += other.validate_seconds
        for name, report in other.views.items():
            own = self.views.get(name)
            if own is None:
                self.views[name] = report
            elif own is not report:
                own.merge(report)
        return self


#: Operators whose output rows draw on *multiple* source items: a group
#: absorbs every member with its key, a join row both sides, a dedup
#: cell every duplicate.  Through them, a queued count-signed tree that
#: re-derives at flush time against post-mutation storage can pick up
#: another tree's contribution and inflate derivation counts.
_ENTANGLING_OPS = (Aggregate, CartesianProduct, Distinct, GroupBy, Join,
                   LeftOuterJoin, TupleFunction, XmlUnique)


def _derivations_entangled(plan: XatOperator) -> bool:
    """Whether any output of ``plan`` can derive from more than one
    source item (selections/projections/navigations are per-item linear
    and immune to cross-batch count inflation)."""
    seen: set[int] = set()
    stack = [plan]
    while stack:
        op = stack.pop()
        if id(op) in seen:
            continue
        seen.add(id(op))
        if isinstance(op, _ENTANGLING_OPS):
            return True
        stack.extend(op.inputs)
    return False


class RegisteredView:
    """One view under registry maintenance (a handle, also used
    internally)."""

    def __init__(self, name: str, pipeline: ViewPipeline,
                 policy: MaintenancePolicy, cost: CostModel):
        self.name = name
        self.pipeline = pipeline
        self.policy = policy
        self.cost = cost
        self.pending: list[list[RoutedTree]] = []
        self.report = MaintenanceReport()
        self.stats = ViewStats()
        self.refresh_sequence = 0
        self.query_text = ""
        self.entangled = _derivations_entangled(pipeline.plan)

    def pending_trees(self) -> int:
        return sum(len(batch) for batch in self.pending)

    def to_xml(self) -> str:
        return self.pipeline.to_xml()


class ViewRegistry:
    """Manages N materialized views over one :class:`StorageManager`.

    ``operator_state`` controls the persistent per-operator state of the
    Propagate phase: by default the registry owns one shared
    :class:`~repro.engine.opstate.OperatorStateStore`, handed to every
    registered view's pipeline so structurally-equal subplans across
    views (same signature) resolve to the *same* cached side tables and
    hash indexes — the cross-view analogue of the shared validation
    router.  Pass ``operator_state=False`` to disable (every maintenance
    run then re-derives its side tables from storage).
    """

    def __init__(self, storage: StorageManager,
                 operator_state: bool = True,
                 compiled: bool = True,
                 modify_decomposition=_REMOVED):
        if modify_decomposition is not _REMOVED:
            raise TypeError(
                "modify_decomposition was removed: the legacy "
                "delete+reinsert decomposition of insufficient modifies "
                "is gone after its one-release deprecation window; "
                "modifies always propagate as first-class retract/assert "
                "pairs now")
        self.storage = storage
        self.engine = Engine(storage)
        self.router = SharedValidationRouter()
        self.state_store = (OperatorStateStore(storage)
                            if operator_state else None)
        # One shared plan cache: structurally-equal subplans across
        # views compile once (mirroring the shared operator-state store).
        self.compiled = compiled
        if compiled:
            from ..plan import PlanCache
            self.plan_cache = PlanCache()
        else:
            self.plan_cache = None
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.metrics.add_sync_hook(self._sync_metrics)
        #: a bound :class:`~repro.durability.DurabilityManager` (set via
        #: its ``bind``); when present, every batch entering
        #: :meth:`apply_updates` is logged *before* mutation and view
        #: DDL is logged on success.
        self.wal = None
        self._views: dict[str, RegisteredView] = {}
        self._storage_ops = 0
        #: (listener, deliver_mutations) pairs; mutation capture in the
        #: Apply phase runs only while at least one listener wants it.
        self._refresh_listeners: list[tuple] = []
        self._mutation_listeners = 0
        self._subscriber_errors = 0
        self._closed = False
        storage.add_listener(self._count_storage_op)

    def _count_storage_op(self, op: str, key) -> None:
        self._storage_ops += 1

    # -- observability ------------------------------------------------------------------

    def _sync_metrics(self, metrics: MetricsRegistry) -> None:
        """Mirror the always-on plain-int stats of every hot component
        into the metrics registry — runs before each snapshot/render, so
        the hot paths themselves never pay a registry lookup."""
        for key, value in self.router.stats.as_dict().items():
            metrics.counter(f"router_{key}",
                            "Shared-validation router activity").set(value)
        metrics.counter("storage_mutations",
                        "Storage mutations observed").set(self._storage_ops)
        metrics.counter(
            "subscriber_errors",
            "Refresh listeners that raised (isolated, flush unharmed)"
            ).set(self._subscriber_errors)
        index = self.storage.index
        if index is not None:
            stats = index.stats()
            for key in ("range_scans", "walk_fallbacks", "path_lookups"):
                metrics.counter(
                    f"index_{key}",
                    "Structural-index navigation activity").set(stats[key])
            metrics.gauge("index_interned_keys",
                          "Live keys interned by the structural index"
                          ).set(stats["interned_keys"])
        if self.plan_cache is not None:
            plan_stats = self.plan_cache.stats()
            metrics.histogram(
                "plan_compile_seconds",
                "Wall-clock cost of lowering XAT trees to the plan IR"
                ).set_total(plan_stats["compiles"],
                            plan_stats["compile_seconds"])
            metrics.counter("plan_cache_hits",
                            "Prepared subplans served from the shared "
                            "plan cache (cross-view structural sharing)"
                            ).set(plan_stats["hits"])
            metrics.counter("plan_cache_misses",
                            "Subplan structures lowered fresh"
                            ).set(plan_stats["misses"])
            metrics.counter("vm_instructions_executed",
                            "Batch-VM instructions executed (kernel, "
                            "fallback and short-circuit)"
                            ).set(plan_stats["instructions_executed"])
            metrics.counter("vm_kernel_runs",
                            "Instructions served by specialized "
                            "columnar kernels"
                            ).set(plan_stats["kernel_runs"])
            metrics.counter("vm_fallback_runs",
                            "Instructions served by the interpreter "
                            "fallback"
                            ).set(plan_stats["fallback_runs"])
        if self.state_store is not None:
            for key, value in self.state_store.stats.as_dict().items():
                metrics.counter(
                    f"opstate_{key}",
                    "Operator-state store activity").set(value)
            metrics.gauge("opstate_cached_signatures",
                          "Distinct subplan signatures with cached state"
                          ).set(len(self.state_store.per_signature()))
        for name, view in self._views.items():
            for key, value in view.stats.as_dict().items():
                metrics.counter(f"view_{key}",
                                "Per-view maintenance activity",
                                view=name).set(value)
            metrics.gauge("view_pending_trees",
                          "Update trees queued but not yet flushed",
                          view=name).set(view.pending_trees())
            metrics.gauge("view_extent_nodes", "Materialized extent size",
                          view=name).set(view.pipeline.extent_size())
            metrics.counter("view_refreshes",
                            "Refreshes (monotone sequence number)",
                            view=name).set(view.refresh_sequence)
            report = view.report
            for phase in ("validate", "propagate", "apply"):
                metrics.counter(
                    "view_phase_seconds",
                    "Cumulative V-P-A phase time", view=name,
                    phase=phase).set(getattr(report,
                                             f"{phase}_seconds"))
            for key in ("state_hits", "state_misses", "state_patches"):
                metrics.counter("view_" + key,
                                "Operator state served to this view",
                                view=name).set(getattr(report, key))
            metrics.counter("view_delta_tuples",
                            "Extent mutations fused by maintenance",
                            view=name).set(report.fusion.mutations)

    def metrics_snapshot(self) -> dict:
        """A structured snapshot of every engine metric (syncs first)."""
        return self.metrics.snapshot()

    def explain(self, name: str) -> str:
        """The view's algebra plan annotated with live operator counters
        (see :func:`repro.obs.explain.render_explain`)."""
        from ..obs.explain import render_explain

        view = self._views[name]
        return render_explain(
            name, view.pipeline.plan, policy=view.policy, cost=view.cost,
            stats=view.stats, report=view.report, store=self.state_store,
            extent_size=view.pipeline.extent_size(),
            pending_trees=view.pending_trees(),
            query_text=view.query_text, plan_cache=self.plan_cache)

    def add_trace_sink(self, sink) -> None:
        """Attach a :class:`repro.obs.TraceSink`; spans flow only while
        at least one sink is attached (and observability is enabled)."""
        self.tracer.add_sink(sink)

    def remove_trace_sink(self, sink) -> None:
        self.tracer.remove_sink(sink)

    def close(self) -> None:
        """Detach from the storage manager (idempotent).  A registry holds
        a mutation listener on its storage; call this when discarding a
        registry whose StorageManager outlives it.  Refresh listeners are
        dropped with it."""
        if self._closed:
            return
        self._closed = True
        self.storage.remove_listener(self._count_storage_op)
        if self.state_store is not None:
            self.state_store.close()
        self._refresh_listeners.clear()
        self._mutation_listeners = 0

    def __enter__(self) -> "ViewRegistry":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- refresh events ----------------------------------------------------------------

    def add_refresh_listener(self, listener,
                             deliver_mutations: bool = False) -> None:
        """Subscribe ``listener(event: RefreshEvent)`` to view refreshes —
        fired whenever maintenance changes a view's extent (delta
        propagation or full recomputation), whatever triggered the flush
        (stream dispatch, a read of a deferred view, or an explicit
        :meth:`flush`).

        ``deliver_mutations=True`` turns on visible-mutation capture in
        the Apply phase: every *propagate* refresh then carries the
        JSON-ready delta records on :attr:`RefreshEvent.mutations` (the
        push payload of the network server).  Capture runs while at
        least one such listener is registered and costs one list append
        per visible extent mutation."""
        self._refresh_listeners.append((listener, deliver_mutations))
        if deliver_mutations:
            self._mutation_listeners += 1

    def remove_refresh_listener(self, listener) -> None:
        """Unsubscribe (no-op when absent — discard semantics)."""
        for entry in self._refresh_listeners:
            if entry[0] is listener:
                self._refresh_listeners.remove(entry)
                if entry[1]:
                    self._mutation_listeners -= 1
                return

    def _notify_refresh(self, view: RegisteredView, reason: str,
                        trees: int, duration: float, delta_tuples: int,
                        mutations: Optional[tuple] = None) -> None:
        # The sequence advances whether or not anyone listens — a
        # subscriber joining late sees where the view's history stands.
        view.refresh_sequence += 1
        if not self._refresh_listeners:
            return
        event = RefreshEvent(view.name, reason, trees, duration,
                             delta_tuples, view.refresh_sequence,
                             mutations)
        for listener, _wants in list(self._refresh_listeners):
            # Fan-out is isolated: one failing subscriber must neither
            # abort the flush that produced the event nor starve the
            # listeners after it.  The error is counted (the
            # ``subscriber_errors`` metric family) and dropped — a
            # callback's contract is fire-and-forget.
            try:
                listener(event)
            except Exception:
                self._subscriber_errors += 1

    # -- registration ------------------------------------------------------------------

    def register(self, name: str, query: Union[str, XatOperator],
                 policy: Union[MaintenancePolicy, str, int] = "immediate",
                 cost_model: Optional[CostModel] = None,
                 materialize: bool = True) -> RegisteredView:
        """Register (and by default materialize) a view under ``name``."""
        if name in self._views:
            raise ValueError(f"view {name!r} already registered")
        plan = (translate_query(query) if isinstance(query, str)
                else query)
        view = RegisteredView(name,
                              ViewPipeline(self.engine, plan,
                                           state_store=self.state_store,
                                           compiled=self.compiled,
                                           plan_cache=self.plan_cache),
                              MaintenancePolicy.parse(policy),
                              cost_model if cost_model is not None
                              else CostModel())
        view.pipeline.tracer = self.tracer
        if isinstance(query, str):
            view.query_text = query
        elif self.wal is not None:
            raise ValueError(
                f"view {name!r}: a durable registry requires views "
                f"registered from query strings (raw plans cannot be "
                f"logged or checkpointed)")
        self._views[name] = view
        self.router.subscribe(name, view.pipeline.sapt)
        if materialize:
            self.materialize(name)
        if self.wal is not None:
            self.wal.log_create_view(name, view.query_text, view.policy,
                                     materialize=materialize)
        return view

    def unregister(self, name: str) -> None:
        """Drop a view; its queued deltas are discarded with it."""
        view = self._views.pop(name)
        self.router.unsubscribe(name)
        view.pending.clear()
        if self.wal is not None:
            self.wal.log_drop_view(name)

    def names(self) -> list[str]:
        return list(self._views)

    def view(self, name: str) -> RegisteredView:
        return self._views[name]

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def __len__(self) -> int:
        return len(self._views)

    # -- materialization and reads -----------------------------------------------------

    def materialize(self, name: Optional[str] = None,
                    profiler: Optional[Profiler] = None) -> None:
        """(Re)materialize one view, or every registered view.

        The observed full-computation time seeds the view's cost model —
        the recompute side of every later flush decision."""
        views = ([self._views[name]] if name is not None
                 else list(self._views.values()))
        for view in views:
            started = time.perf_counter()
            view.pipeline.materialize(profiler=profiler)
            view.cost.observe_recompute(time.perf_counter() - started)

    def query(self, name: str) -> str:
        """Read a view's XML, first flushing its pending deltas (the lazy
        flush point of the deferred policy)."""
        self.flush(name)
        return self._views[name].pipeline.to_xml()

    def to_xml(self, name: str) -> str:
        """The view's current extent *without* flushing (deferred views
        may be stale by design)."""
        return self._views[name].pipeline.to_xml()

    def recompute_xml(self, name: str) -> str:
        """Full recomputation oracle for one view (extent untouched)."""
        return self._views[name].pipeline.recompute_xml()

    # -- the shared update entry point -------------------------------------------------

    def apply_updates(self, updates: list[UpdateRequest],
                      profiler: Optional[Profiler] = None
                      ) -> MultiViewReport:
        """Route, batch and propagate one heterogeneous update sequence
        across every registered view."""
        if self.wal is not None:
            # Write-ahead: the whole batch is on disk before any of it
            # mutates storage, so a crash either replays it in full or
            # never saw it — mid-batch kills cannot leave a logged
            # half-batch (torn trailing records are discarded).
            self.wal.log_batch(updates)
        report = MultiViewReport()
        stats_before = (self.router.stats.classifications,
                        self.router.stats.routed,
                        self.router.stats.irrelevant_everywhere)
        ops_before = self._storage_ops
        self._profiler = profiler
        try:
            with self.tracer.span("registry.apply_updates",
                                  updates=len(updates),
                                  views=len(self._views)) as span:
                self._apply_queue(list(updates), RunBatcher(), report)
                span.set(routed=self.router.stats.routed
                         - stats_before[1])
        finally:
            self._profiler = None
        if _OBS.enabled:
            self.metrics.histogram(
                "apply_updates_size",
                "Requests per apply_updates call").observe(len(updates))

        report.classifications = (self.router.stats.classifications
                                  - stats_before[0])
        report.routed = self.router.stats.routed - stats_before[1]
        report.irrelevant_everywhere = (
            self.router.stats.irrelevant_everywhere - stats_before[2])
        report.storage_ops = self._storage_ops - ops_before
        report.views = {name: view.report
                        for name, view in self._views.items()}
        if self.wal is not None:
            self.wal.maybe_checkpoint(self)
        return report

    def _apply_queue(self, queue: list[UpdateRequest], batcher: RunBatcher,
                     report: MultiViewReport) -> None:
        """Validate, route and dispatch the queue; the caller owns
        profiler cleanup."""
        storage = self.storage
        for request in queue:
            report.updates += 1
            # A kind/document boundary closes the pending run before this
            # request's storage change applies (see RunBatcher.crosses).
            if batcher.crosses(request.document, request.kind):
                closed = batcher.close()
                if closed is not None:
                    self._dispatch(closed)
            started = time.perf_counter()
            if request.kind == INSERT:
                # Queued count-signed trees flush before the new node
                # enters storage (see _drain_overlapping: their flush
                # would absorb it and double-count).  Nested inserts of
                # the *same* run still batch — runs flush atomically.
                self._drain_overlapping(request.target, None, batcher,
                                        modifies_only=True,
                                        drain_signed=True)
                key = apply_insert(storage, request)
                result = self.router.route(storage, request.document, key)
                tree = RoutedTree(request.document, key, INSERT,
                                  views=result.views)
            elif request.kind == DELETE:
                result = self.router.route(storage, request.document,
                                           request.target)
                if not result.views:
                    storage.delete_subtree(request.target)
                    report.validate_seconds += (time.perf_counter()
                                                - started)
                    continue
                tree = RoutedTree(request.document, request.target, DELETE,
                                  views=result.views)
            else:  # MODIFY
                result = self.router.route(storage, request.document,
                                           request.target)
                if not result.views:
                    storage.replace_text(request.target, request.new_value)
                    report.validate_seconds += (time.perf_counter()
                                                - started)
                    continue
                hitters = self.router.predicate_hitters(
                    request.document, result.tags, result.views)
                # Drain conflicting queues BEFORE the text change lands:
                # a queued tree flushed after it would re-derive from
                # post-mutation storage and double-apply — the registry
                # analogue of the RunBatcher.crosses discipline in
                # run_maintenance.  A pair additionally conflicts with
                # every queued count-signed tree (output overlap through
                # shared group/join keys, regardless of input subtrees).
                self._drain_overlapping(request.target, result.views,
                                        batcher,
                                        drain_signed=bool(hitters))
                if hitters:
                    # First-class modify: the pair re-routes derivations
                    # in-flight for the views that need it; views that
                    # read the value as content get an equivalent
                    # retract/assert re-derivation.
                    old_value = direct_text(storage, request.target)
                    storage.replace_text(request.target, request.new_value)
                    tree = RoutedTree(request.document, request.target,
                                      MODIFY, old_value=old_value,
                                      new_value=request.new_value,
                                      views=result.views)
                else:
                    storage.replace_text(request.target, request.new_value)
                    tree = RoutedTree(request.document, request.target,
                                      MODIFY, views=result.views)
            report.validate_seconds += time.perf_counter() - started
            if request.kind == INSERT and not result.views:
                continue  # fragment stored; nothing propagates
            closed, accepted = batcher.push(tree)
            assert closed is None  # the boundary flush above closed it
            if accepted:
                for name in tree.views:
                    view = self._views.get(name)
                    if view is not None:
                        view.report.accepted += 1
                        view.stats.routed_trees += 1
        closed = batcher.close()
        if closed is not None:
            self._dispatch(closed)

    # -- dispatch and flushing ---------------------------------------------------------

    def _drain_overlapping(self, target, names, batcher: RunBatcher,
                           modifies_only: bool = False,
                           drain_signed: bool = False) -> None:
        """Flush every view whose pending queue conflicts with the
        storage change the caller is about to apply.

        Two conflict classes:

        * **input overlap** — a queued tree whose root shares a subtree
          with ``target``: it must flush before the subtree changes
          under it.  ``modifies_only`` restricts this to queued modify
          trees (insert-over-insert nesting stays queued — the pending
          insert covers it when it reads final storage).
        * **output overlap** — count-signed trees (inserts and modify
          pairs) re-derive against *final* storage when they flush, so
          a queued one absorbs any later count-signed change no matter
          how distant the input nodes are (a shared group or join key
          is enough); the newer tree then asserts the same derivation
          again and the counts are silently inflated — invisible in the
          XML until a retraction under-removes.  ``drain_signed``
          flushes every queued count-signed tree before the caller's
          own count-signed change enters storage — but only for views
          whose derivations are :func:`entangled <_derivations_
          entangled>` across source items; per-item linear views keep
          batching, as do count-neutral content refreshes everywhere —
          that is what the deferred policy amortizes.

        ``names`` limits the scan to the routed views (None scans all —
        inserts route only after the node exists).  The pending run is
        closed first so its trees flush in order.
        """
        views = ([self._views[name] for name in names
                  if name in self._views] if names is not None
                 else list(self._views.values()))

        def conflicts(t, signed: bool) -> bool:
            if signed and (t.kind == INSERT or t.has_pair):
                return True
            if modifies_only and t.kind != MODIFY:
                return False
            return (t.root == target or t.root.is_ancestor_of(target)
                    or target.is_ancestor_of(t.root))

        closed = False
        for view in views:
            if not view.pending:
                continue
            signed = drain_signed and view.entangled
            if not any(conflicts(t, signed)
                       for batch in view.pending for t in batch):
                continue
            if not closed:
                run = batcher.close()
                if run is not None:
                    self._dispatch(run)
                closed = True
            self._flush_view(view)

    def _dispatch(self, run: list[RoutedTree]) -> None:
        """Hand one closed run to every view it affects, honouring
        policies — except that delete runs are barriers (see module
        docstring)."""
        affected = [view for name, view in self._views.items()
                    if any(name in tree.views for tree in run)]
        if run[0].kind == DELETE:
            recompute_after = []
            for view in affected:
                self._enqueue(view, run)
                deferred_trees = self._flush_view(view, defer_recompute=True)
                if deferred_trees is not None:
                    recompute_after.append((view, deferred_trees))
            for tree in run:
                self.storage.delete_subtree(tree.root)
            for view, trees in recompute_after:
                self._recompute(view, trees=trees)
            return
        for view in affected:
            self._enqueue(view, run)
            policy = view.policy
            if policy.kind == IMMEDIATE_KIND or (
                    policy.kind == THRESHOLD_KIND
                    and view.pending_trees() >= policy.threshold):
                self._flush_view(view)

    def _enqueue(self, view: RegisteredView, run: list[RoutedTree]) -> None:
        if not view.pipeline.materialized:
            raise RuntimeError(
                f"materialize view {view.name!r} before updating it")
        subset = [tree for tree in run if view.name in tree.views]
        kept: list[RoutedTree] = []
        for tree in subset:
            pending = [t for batch in view.pending for t in batch]
            if tree.kind != DELETE and any(
                    t.kind == INSERT and (t.root == tree.root
                                          or t.root.is_ancestor_of(tree.root))
                    for t in pending):
                # A pending insert reads final storage when it flushes, so
                # it already covers this nested insert/modify; propagating
                # both would double-count.
                continue
            if any(t.root == tree.root or t.root.is_ancestor_of(tree.root)
                   or tree.root.is_ancestor_of(t.root) for t in pending):
                # Backstop for overlaps _drain_overlapping could not see
                # at validate time (the storage change of this run is
                # already applied, so this drain alone is not enough to
                # keep deferred pairs from double-propagating).
                self._flush_view(view)
            kept.append(tree)
        if kept:
            view.pending.append(kept)

    def flush(self, name: Optional[str] = None) -> None:
        """Propagate pending deltas of one view (or of all views) now."""
        views = ([self._views[name]] if name is not None
                 else list(self._views.values()))
        for view in views:
            self._flush_view(view)

    def _flush_view(self, view: RegisteredView,
                    defer_recompute: bool = False) -> Optional[int]:
        """Flush one view's queue; returns the pending tree count when
        the flush decided on recomputation but must wait for pending
        storage deletes (the caller recomputes after applying them,
        passing the count through to the refresh event), else None."""
        if not view.pending:
            return None
        view.stats.flushes += 1
        trees = view.pending_trees()
        recompute = view.cost.should_recompute(trees)
        predicted = view.cost.estimate_propagation(trees)
        if recompute:
            view.pending.clear()
            if defer_recompute:
                return trees
            self._recompute(view, trees=trees,
                            predicted_propagate=predicted)
            return None
        refreshes_before = len(view.report.fusion.aggregate_refreshes)
        mutations_before = view.report.fusion.mutations
        capture = self._mutation_listeners > 0
        if capture:
            view.report.fusion.delta_log = []
        with self.tracer.span(
                "view.flush", view=view.name, trees=trees,
                decision="propagate",
                predicted_propagate_seconds=predicted,
                predicted_recompute_seconds=view.cost.recompute_seconds
                ) as span:
            started = time.perf_counter()
            try:
                for batch in view.pending:
                    view.pipeline.propagate_run(batch, view.report,
                                                profiler=self._profiler)
            finally:
                captured = (tuple(view.report.fusion.delta_log)
                            if capture else None)
                view.report.fusion.delta_log = None
            elapsed = time.perf_counter() - started
            span.set(observed_seconds=elapsed)
        view.cost.observe_propagation(trees, elapsed)
        view.stats.propagated_trees += trees
        view.pending.clear()
        delta_tuples = view.report.fusion.mutations - mutations_before
        if _OBS.enabled:
            self.metrics.histogram(
                "flush_seconds", "Wall-clock cost of one flush",
                view=view.name, decision="propagate").observe(elapsed)
            self.metrics.histogram(
                "flush_trees", "Update trees consumed per flush",
                view=view.name).observe(trees)
        if len(view.report.fusion.aggregate_refreshes) > refreshes_before:
            # min/max eviction: fall back to recomputation (Section 7.6).
            if defer_recompute:
                return trees
            self._recompute(view, trees=trees)
            return None
        self._notify_refresh(view, "propagate", trees, elapsed,
                             delta_tuples, captured)
        return None

    def _recompute(self, view: RegisteredView, trees: int = 0,
                   predicted_propagate: Optional[float] = None) -> None:
        with self.tracer.span(
                "view.flush", view=view.name, trees=trees,
                decision="recompute",
                predicted_propagate_seconds=predicted_propagate,
                predicted_recompute_seconds=view.cost.recompute_seconds
                ) as span:
            started = time.perf_counter()
            view.pipeline.recompute()
            elapsed = time.perf_counter() - started
            span.set(observed_seconds=elapsed)
        view.cost.observe_recompute(elapsed)
        view.report.recomputed = True
        view.stats.recomputes += 1
        if _OBS.enabled:
            self.metrics.histogram(
                "flush_seconds", "Wall-clock cost of one flush",
                view=view.name, decision="recompute").observe(elapsed)
        self._notify_refresh(view, "recompute", trees, elapsed,
                             view.pipeline.extent_size())

    _profiler: Optional[Profiler] = None
